"""Memory planning with the TBD memory profiler — the paper's Observation 12
as a decision tool.

The paper finds that exhausting GPU memory with the largest mini-batch is
often inefficient: past the throughput saturation point, the extra memory
buys almost nothing, while the same gigabytes could hold a deeper model or
faster (workspace-hungrier) convolution algorithms.  This example maps the
trade-off for every suite model: memory footprint vs. throughput across the
batch sweep, the largest batch that fits, and the throughput cost of
stepping one batch size down.
"""

from repro.core.suite import standard_suite
from repro.hardware.memory import OutOfMemoryError
from repro.profiling.memory_profiler import MemoryProfiler


def main() -> None:
    suite = standard_suite()
    profiler = MemoryProfiler(gpu=suite.gpu)
    print(
        f"memory-vs-throughput planning on {suite.gpu.name} "
        f"({suite.gpu.memory_gb:.0f} GB)\n"
    )
    for spec, framework in suite.configurations():
        if len(spec.batch_sizes) < 2:
            continue
        rows = []
        for batch in spec.batch_sizes:
            try:
                memory = profiler.profile(spec.key, framework.key, batch)
                metrics = suite.run(spec.key, framework.key, batch)
            except OutOfMemoryError:
                rows.append((batch, None, None))
                continue
            rows.append((batch, memory.total_gib, metrics.throughput))
        print(f"{spec.display_name} ({framework.name})")
        for batch, gib, throughput in rows:
            if gib is None:
                print(f"  b={batch:<5d} does not fit")
                continue
            print(
                f"  b={batch:<5d} {gib:5.2f} GiB  "
                f"{throughput:9.1f} {spec.throughput_unit}"
            )
        fitting = [(b, g, t) for b, g, t in rows if g is not None]
        if len(fitting) >= 2:
            (b1, g1, t1), (b2, g2, t2) = fitting[-2], fitting[-1]
            saved = g2 - g1
            lost = (t2 - t1) / t2 * 100.0
            print(
                f"  -> stepping b={b2} down to b={b1} frees {saved:.2f} GiB "
                f"for {lost:.1f}% throughput (Obs. 12: spend it on depth or "
                f"workspace instead)"
            )
        print()


if __name__ == "__main__":
    main()
