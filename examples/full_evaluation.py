"""Regenerate the paper's entire evaluation section: every table and every
figure, printed in paper order.

Usage::

    python examples/full_evaluation.py            # everything (~10 s)
    python examples/full_evaluation.py fig4 fig9  # just the named exhibits
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS, table5_6

#: Paper order, with the renderer for each exhibit.
_ORDER = (
    "table1",
    "fig1_fig3",
    "table2_3",
    "fig2",
    "table4",
    "fig4",
    "fig5",
    "fig6",
    "table5_6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)


def render(name: str) -> str:
    module = ALL_EXPERIMENTS[name]
    if module is table5_6:
        return module.render_both()
    return module.render()


def main(argv) -> None:
    wanted = argv[1:] if len(argv) > 1 else list(_ORDER)
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown exhibit(s) {unknown}; choose from {sorted(ALL_EXPERIMENTS)}"
        )
    for name in wanted:
        start = time.perf_counter()
        text = render(name)
        elapsed = time.perf_counter() - start
        print("=" * 78)
        print(f"{name}  (regenerated in {elapsed:.2f} s)")
        print("=" * 78)
        print(text)
        print()


if __name__ == "__main__":
    main(sys.argv)
