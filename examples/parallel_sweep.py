"""The parallel sweep engine end to end: fan out, memoize, prove equality.

``tbd sweep --jobs/--cache-dir`` and ``tbd cache stats|clear`` drive the
same machinery from the shell; this example walks it programmatically:

1. run a reduced Figs. 4-6 grid serially (the reference result);
2. run the same grid through the engine with two worker processes and a
   cold content-addressed cache, then again warm — the warm pass computes
   nothing;
3. show all three agree field-by-field and export byte-identical JSONL;
4. print the cache's ``tbd cache stats`` report.
"""

import os

from repro.core.suite import standard_suite
from repro.engine import SweepEngine, grid_for, write_grid_jsonl

CACHE_DIR = os.path.join("artifacts", "sweep-cache")

#: A reduced panel set (two image models, one RNN) at small batch sizes.
PANELS = (
    ("resnet-50", ("tensorflow", "mxnet")),
    ("nmt", ("tensorflow",)),
)
BATCHES = (4, 8, 16)


def main() -> None:
    suite = standard_suite()
    grid = grid_for(PANELS, batch_sizes=BATCHES)
    print(f"== parallel sweep engine: {len(grid)} grid points ==")

    print("\n-- serial reference (plain TBDSuite.sweep) --")
    reference = []
    for spec in grid:
        reference.extend(suite.sweep(spec.model, spec.framework, (spec.batch_size,)))
    for point in reference[:3]:
        print(f"  {point.metrics.format_row()}")
    print(f"  ... {len(reference)} points")

    print("\n-- cold run: jobs=2, content-addressed cache --")
    cold = SweepEngine(jobs=2, cache=CACHE_DIR)
    cold_points = cold.run_grid(grid)
    stats = cold.stats
    print(f"  computed {stats.points_computed}, hits {stats.cache_hits}")

    print("\n-- warm run: same grid, nothing recomputed --")
    warm = SweepEngine(jobs=2, cache=CACHE_DIR)
    warm_points = warm.run_grid(grid)
    stats = warm.stats
    print(f"  computed {stats.points_computed}, hits {stats.cache_hits}")

    print("\n-- differential check --")
    print(f"  parallel == serial: {cold_points == reference}")
    print(f"  cached   == cold:   {warm_points == cold_points}")

    os.makedirs("artifacts", exist_ok=True)
    cold_path = os.path.join("artifacts", "sweep_cold.jsonl")
    warm_path = os.path.join("artifacts", "sweep_warm.jsonl")
    write_grid_jsonl(cold_path, grid, cold_points)
    write_grid_jsonl(warm_path, grid, warm_points)
    with open(cold_path, "rb") as a, open(warm_path, "rb") as b:
        identical = a.read() == b.read()
    print(f"  exported JSONL byte-identical: {identical}")

    print("\n-- tbd cache stats --")
    print(warm.cache.stats().format_report())


if __name__ == "__main__":
    main()
