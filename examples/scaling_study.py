"""Beyond Fig. 10: time-to-accuracy, not just throughput.

The paper measures distributed *throughput*; practitioners optimize
*time-to-accuracy*, which also depends on statistical efficiency — large
global batches need learning-rate scaling (Goyal et al., cited as [43])
and, past the critical batch size, more samples.  This example runs the
combined study over the Fig. 10 configurations and then pushes past them
to show where throughput scaling and time-to-accuracy scaling part ways.

It also sizes the input pipeline for the fastest configuration using the
discrete-event prefetch simulator: how many decode workers keep a 4-GPU
trainer fed?
"""

from repro.data.prefetch import PrefetchConfig, minimum_workers, simulate_prefetch
from repro.distributed.time_to_accuracy import (
    adjusted_samples_needed,
    scaling_study,
)
from repro.distributed.data_parallel import DataParallelTrainer
from repro.hardware.cluster import parse_configuration


def main() -> None:
    print("time-to-accuracy across the Fig. 10 configurations")
    print("(ResNet-50/MXNet, per-GPU batch 32, target: 95% of final top-1)\n")
    study = scaling_study("resnet-50", "mxnet", per_gpu_batch=32)
    baseline = next(p for p in study if p.configuration == "1M1G")
    for point in study:
        days = point.time_to_accuracy_s / 86400.0
        print(
            f"  {point.configuration:26s} global batch {point.global_batch:<5d} "
            f"lr {point.learning_rate:5.2f}  {point.throughput:7.1f} img/s  "
            f"-> {days:5.2f} days "
            f"({baseline.time_to_accuracy_s / point.time_to_accuracy_s:4.2f}x)"
        )
    print()

    print("where statistical efficiency bites (hypothetical larger clusters):")
    base_needed = adjusted_samples_needed("resnet-50", 32, 32)
    for workers in (4, 16, 64, 256, 1024):
        global_batch = 32 * workers
        needed = adjusted_samples_needed("resnet-50", global_batch, 32)
        penalty = needed / base_needed
        ideal_speedup = workers / penalty
        print(
            f"  {workers:5d} GPUs: global batch {global_batch:6d}, "
            f"{penalty:5.2f}x more samples needed, best-case speedup "
            f"{ideal_speedup:7.1f}x (vs {workers}x hardware)"
        )
    print()

    print("sizing the input pipeline for 1M4G:")
    cluster = parse_configuration("1M4G")
    profile = DataParallelTrainer("resnet-50", "mxnet", cluster).run_iteration(32)
    iteration = profile.iteration_time_s
    batch_decode = 128 * 0.016  # 4 GPUs x 32 images x 16 ms decode
    needed = minimum_workers(batch_decode, iteration)
    print(
        f"  iteration {iteration * 1e3:.0f} ms, batch decode {batch_decode * 1e3:.0f} ms "
        f"of CPU work -> capacity condition: >= {needed} workers"
    )
    for workers in (needed - 2, needed, needed + 4):
        if workers <= 0:
            continue
        config = PrefetchConfig(
            workers=workers,
            queue_depth=8,
            batch_decode_mean_s=batch_decode,  # each worker decodes whole batches
            batch_decode_cv=0.4,
        )
        result = simulate_prefetch(config, iteration, iterations=500)
        print(
            f"  {workers:2d} workers: steady-state stall "
            f"{result.steady_state_stall_fraction * 100:5.1f}% of wall time"
        )


if __name__ == "__main__":
    main()
