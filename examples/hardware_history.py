"""Six years of hardware, in the toolchain's own units (paper Section 2.2).

The paper opens its background with AlexNet: trained in six days on two
GTX 580s in 2012, "instead of months of training on CPUs".  With the
device catalog covering the GTX 580, the P4000 and the Titan Xp, the
simulator can replay that history: AlexNet and ResNet-50 across three GPU
generations, plus the memory wall that forced Krizhevsky's two-GPU model
split, plus estimated time-to-accuracy then and now.
"""

from repro.hardware.devices import GTX_580, QUADRO_P4000, TITAN_XP
from repro.hardware.memory import OutOfMemoryError
from repro.training.convergence import time_to_metric
from repro.training.session import TrainingSession

_DEVICES = (GTX_580, QUADRO_P4000, TITAN_XP)


def sweep_devices(model: str, batch: int) -> dict:
    throughputs = {}
    for device in _DEVICES:
        session = TrainingSession(model, "mxnet", gpu=device)
        try:
            throughputs[device.name] = session.run_iteration(batch).throughput
        except OutOfMemoryError:
            throughputs[device.name] = None
    return throughputs


def main() -> None:
    print("AlexNet (2012) across GPU generations, batch 128:")
    for name, value in sweep_devices("alexnet", 128).items():
        if value is None:
            print(f"  {name:16s} does not fit — the memory wall that forced the")
            print("                   original two-GPU model split (Section 2.2)")
        else:
            print(f"  {name:16s} {value:8.1f} images/s")
    print()

    print("AlexNet at batch 32 (fits everywhere):")
    base = None
    for name, value in sweep_devices("alexnet", 32).items():
        base = base or value
        print(f"  {name:16s} {value:8.1f} images/s ({value / base:4.1f}x the GTX 580)")
    print()

    print("ResNet-50 (2015) at batch 16 — a model the 580 era could not train:")
    for name, value in sweep_devices("resnet-50", 16).items():
        if value is None:
            print(f"  {name:16s} does not fit in memory")
        else:
            print(f"  {name:16s} {value:8.1f} images/s")
    print()

    print("estimated wall-clock to 70% top-1 on ImageNet (ResNet-50, b=32):")
    for device in (QUADRO_P4000, TITAN_XP):
        throughput = TrainingSession("resnet-50", "mxnet", gpu=device).run_iteration(
            32
        ).throughput
        seconds = time_to_metric("resnet-50", throughput, 70.0)
        print(f"  {device.name:16s} {seconds / 86400.0:5.1f} days")
    print()

    print("the power axis (Table 4's unmeasured tradeoff): AlexNet b=32")
    from repro.hardware.energy import perf_per_watt_comparison

    for energy in perf_per_watt_comparison("alexnet", "mxnet", 32, _DEVICES):
        print(
            f"  {energy.device:16s} {energy.gpu_power_watts:6.1f} W GPU, "
            f"{energy.samples_per_joule:5.2f} images/joule"
        )


if __name__ == "__main__":
    main()
