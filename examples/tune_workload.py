"""The cost-model-guided autotuner end to end.

``tbd tune`` drives the same machinery from the shell; this example walks
it programmatically:

1. parse and normalize a transform-pipeline spec (every token order
   shares one canonical spelling — the cache dimension);
2. search the pipeline space for an RNN workload: applicability-gated
   enumeration, makespan ranking under the analytic OOM boundary, and an
   interleaved A/B confirmation of the winner;
3. show the OOM boundary doing its job on a residual network, where the
   bare depth rewrites bust the GPU but offload+fp16 buy them back in;
4. persist the tuned config in the content-addressed cache and show the
   re-tune is a cache hit, then feed the cached config to the advisor,
   which cites the measured pipeline ahead of its heuristics.
"""

import os

from repro.bench import InterleavedRunner, NoiseModel
from repro.core.analysis import AnalysisPipeline
from repro.core.recommendations import advise
from repro.engine.cache import ResultCache
from repro.plan.pipeline import canonical_transform_spec, parse_transform_spec
from repro.tune import Autotuner

CACHE_DIR = os.path.join("artifacts", "tune-cache")
SEED = 7


def main() -> None:
    print("== the --transforms mini-language ==")
    spec = "fp16+offload:0.5+fused_rnn"
    print(f"  raw:       {spec}")
    print(f"  canonical: {canonical_transform_spec(spec)}")
    print(parse_transform_spec(spec).describe())

    print("\n== tune an RNN workload (nmt/tensorflow b=64) ==")
    runner = InterleavedRunner(noise=NoiseModel(seed=SEED))
    tuner = Autotuner("nmt", "tensorflow", batch_size=64)
    result = tuner.tune(cache=None, runner=runner, samples=30)
    print(result.format_report())
    assert result.winner is not None
    assert result.confirmation["verdict"] == "improvement"

    print("\n== the OOM boundary on a residual network (resnet-50 b=64) ==")
    ranked = Autotuner("resnet-50", "mxnet", batch_size=64).rank()
    print(ranked.format_report())
    assert ranked.pruned > 0

    print("\n== persistence: the second tune is a cache hit ==")
    cache = ResultCache(CACHE_DIR)
    tuner.tune(cache=cache, runner=runner, samples=30)
    cached = tuner.tune(cache=cache, runner=runner, samples=30)
    print(f"  cached={cached.cached} winner={cached.winner.spec}")
    assert cached.cached

    print("\n== the advisor cites the measured config ==")
    report = AnalysisPipeline("nmt", "tensorflow").run(64)
    first = advise(report, cache=cache)[0]
    print(f"  {first}")
    assert first.rule == "measured tuned config"


if __name__ == "__main__":
    main()
