"""Adaptive batch schedules end to end: grow the batch, finish sooner.

``tbd schedule show|compare`` and ``tbd sweep --schedule`` drive the same
machinery from the shell; this example walks it programmatically:

1. parse schedule specs and print the segment tiling a noise-driven
   (``gns``) schedule induces on resnet-50's convergence curve;
2. race adaptive against fixed batch 32 on the 2M1G/10GbE cluster —
   without faults, then replaying a crash+straggler ``FaultPlan`` — and
   print the time-to-accuracy deltas;
3. sweep a scheduled grid through the cached engine twice and prove the
   fixed spelling is byte-identical to no schedule at all, while the
   adaptive spelling is its own deterministic cache dimension.
"""

import os

from repro.engine import PointSpec, SweepEngine, write_grid_jsonl
from repro.faults import FaultPlan, StragglerFault, WorkerCrash
from repro.hardware.cluster import parse_configuration
from repro.schedule import (
    integrate_schedule,
    parse_schedule_spec,
    scheduled_time_to_accuracy,
)

MODEL, FRAMEWORK, BASE_BATCH = "resnet-50", "mxnet", 32
ADAPTIVE = "gns:ceiling=64,every=50"
CACHE_DIR = os.path.join("artifacts", "schedule-cache")


def main() -> None:
    print("== adaptive batch schedules as a sweep dimension ==\n")

    # 1. The mini-language and the segment tiling.
    for text in ("fixed", "geometric:factor=2", ADAPTIVE):
        schedule = parse_schedule_spec(text)
        canonical = "fixed" if schedule.is_fixed else schedule.canonical
        print(f"parse {text!r:<28} -> {canonical}")
    print()
    integration = integrate_schedule(MODEL, ADAPTIVE, BASE_BATCH)
    print(integration.describe())
    print()

    # 2. Adaptive vs fixed, clean and under faults.
    cluster = parse_configuration("2M1G", fabric="ethernet")
    plan = FaultPlan(
        events=(
            StragglerFault(worker=1, factor=1.5, start_step=10, end_step=40),
            WorkerCrash(step=30, machines=1),
        ),
        seed=0,
    )
    for label, fault_plan in (("no faults", None), ("crash+straggler", plan)):
        fixed = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BASE_BATCH, plan=fault_plan
        )
        adaptive = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BASE_BATCH, ADAPTIVE, plan=fault_plan
        )
        speedup = fixed.time_to_accuracy_s / adaptive.time_to_accuracy_s
        print(
            f"{label:<16} fixed b{BASE_BATCH}: "
            f"{fixed.time_to_accuracy_s / 3600.0:8.1f}h   "
            f"{ADAPTIVE}: {adaptive.time_to_accuracy_s / 3600.0:8.1f}h   "
            f"adaptive x{speedup:.3f} "
            f"({adaptive.segment_count} segments, final "
            f"b{adaptive.final_per_gpu_batch}, "
            f"{adaptive.final_machines} machine(s) left)"
        )
    print()

    # 3. The engine dimension: fixed is invisible, adaptive is cached.
    grid = [
        PointSpec(MODEL, FRAMEWORK, batch, schedule=spec)
        for spec in ("", "fixed", ADAPTIVE)
        for batch in (16, 32)
    ]
    cold = SweepEngine(jobs=1, cache=CACHE_DIR)
    cold_points = cold.run_grid(grid)
    warm = SweepEngine(jobs=1, cache=CACHE_DIR)
    warm_points = warm.run_grid(grid)
    plain, fixed_pts, scheduled = cold_points[:2], cold_points[2:4], cold_points[4:]
    print(f"fixed spelling == no schedule, point-for-point: {fixed_pts == plain}")
    print(
        f"adaptive points diverge from plain: "
        f"{all(a != p for a, p in zip(scheduled, plain))}"
    )
    print(
        f"warm rerun: computed {warm.stats.points_computed}, "
        f"hits {warm.stats.cache_hits}"
    )
    os.makedirs("artifacts", exist_ok=True)
    path = os.path.join("artifacts", "schedule_sweep.jsonl")
    write_grid_jsonl(path, grid, cold_points)
    warm_path = os.path.join("artifacts", "schedule_sweep_warm.jsonl")
    write_grid_jsonl(warm_path, grid, warm_points)
    with open(path, "rb") as a, open(warm_path, "rb") as b:
        identical = a.read() == b.read()
    print(f"exported JSONL byte-identical across cache temperature: {identical}")


if __name__ == "__main__":
    main()
