"""Distributed what-if analysis beyond the paper's Fig. 10.

The paper's Observation 13: network bandwidth is critical for scaling, and
"different techniques (in both software and hardware) should be applied to
either reduce the amount of data sent or increase the available bandwidth".
This example quantifies both levers on the simulated cluster:

- hardware: Ethernet (1G) vs. 10GbE vs. InfiniBand vs. NVLink fabrics;
- software: parameter-server vs. ring all-reduce exchange;
- data reduction: FP16 gradient compression (halved exchange volume).
"""

from repro.distributed.allreduce import RingAllReduceExchange
from repro.distributed.compression import HalfPrecisionGradients, TopKSparsification
from repro.distributed.data_parallel import DataParallelTrainer
from repro.distributed.parameter_server import ParameterServerExchange
from repro.hardware.cluster import parse_configuration

MODEL = "resnet-50"
FRAMEWORK = "mxnet"
BATCH = 32


def run(label: str, fabric: str, exchange) -> None:
    cluster = parse_configuration("2M1G", fabric=fabric)
    trainer = DataParallelTrainer(MODEL, FRAMEWORK, cluster, exchange=exchange)
    profile = trainer.run_iteration(BATCH)
    print(
        f"  {label:42s} {profile.throughput:8.1f} samples/s  "
        f"(scaling efficiency {profile.scaling_efficiency * 100:5.1f}%, "
        f"comm {profile.communication_fraction * 100:4.1f}% of iteration)"
    )


def main() -> None:
    single = DataParallelTrainer(
        MODEL, FRAMEWORK, parse_configuration("1M1G")
    ).run_iteration(BATCH)
    print(f"baseline 1M1G: {single.throughput:.1f} samples/s\n")

    print("two machines, fabric sweep (parameter server):")
    for fabric in ("1gbe", "10gbe", "infiniband", "nvlink"):
        run(fabric, fabric, ParameterServerExchange())
    print()

    print("two machines, software levers on 1GbE (the broken fabric):")
    run("parameter server", "1gbe", ParameterServerExchange())
    run("ring all-reduce", "1gbe", RingAllReduceExchange())
    run("parameter server + fp16 gradients", "1gbe",
        HalfPrecisionGradients(ParameterServerExchange()))
    run("ring all-reduce + fp16 gradients", "1gbe",
        HalfPrecisionGradients(RingAllReduceExchange()))
    run("parameter server + top-1% gradients", "1gbe",
        TopKSparsification(ParameterServerExchange(), 0.01))
    print()

    print("single machine, GPU-count sweep (PCIe 3.0):")
    for gpus in (1, 2, 4):
        cluster = parse_configuration(f"1M{gpus}G")
        profile = DataParallelTrainer(MODEL, FRAMEWORK, cluster).run_iteration(BATCH)
        print(
            f"  1M{gpus}G: {profile.throughput:8.1f} samples/s "
            f"({profile.throughput / single.throughput:.2f}x)"
        )


if __name__ == "__main__":
    main()
