"""Real training, end to end, with the repro autodiff engine.

The performance study simulates full-scale training; this example proves
the training loop itself is real: it trains miniature versions of four TBD
model families (image classifier, seq2seq translator, Wasserstein GAN,
actor-critic) on the synthetic datasets with genuine backpropagation and
prints loss/accuracy trajectories.
"""

import numpy as np

from repro.tensor import functional as F
from repro.tensor.minimodels import (
    TinyActorCritic,
    TinyCritic,
    TinyGenerator,
    TinyResNet,
    TinySeq2Seq,
)
from repro.tensor.optim import SGD, Adam
from repro.tensor.tensor import Tensor, no_grad


def train_image_classifier(steps: int = 80) -> None:
    print("== image classification (TinyResNet, conv+BN+residual) ==")
    rng = np.random.default_rng(0)
    model = TinyResNet(channels=8, classes=4)
    optimizer = SGD(model.parameters(), learning_rate=0.05, momentum=0.9)

    def batch(size):
        labels = rng.integers(0, 4, size=size)
        coords = np.linspace(0.0, np.pi, 10, dtype=np.float32)
        images = rng.normal(0.0, 0.3, size=(size, 3, 10, 10)).astype(np.float32)
        for index, label in enumerate(labels):
            images[index] += np.sin((1 + label) * coords)[None, :, None]
        return images, labels

    for step in range(steps):
        images, labels = batch(16)
        loss = F.cross_entropy(model(Tensor(images)), labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if step % 20 == 0 or step == steps - 1:
            images, labels = batch(64)
            with no_grad():
                accuracy = F.accuracy(model(Tensor(images)), labels)
            print(f"  step {step:3d}  loss {loss.item():.3f}  top-1 {accuracy:.2f}")
    print()


def train_translator(steps: int = 80) -> None:
    print("== machine translation (TinySeq2Seq, LSTM encoder-decoder) ==")
    rng = np.random.default_rng(0)
    model = TinySeq2Seq(vocab=12, embed=12, hidden=24)
    optimizer = Adam(model.parameters(), learning_rate=0.02)
    for step in range(steps):
        source = rng.integers(1, 12, size=(8, 4))
        target = (source[:, ::-1] + 1) % 12
        target_in = np.concatenate(
            [np.zeros((8, 1), dtype=np.int64), target[:, :-1]], axis=1
        )
        loss = model.loss(source, target_in, target)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if step % 20 == 0 or step == steps - 1:
            print(f"  step {step:3d}  token loss {loss.item():.3f}")
    print()


def train_wgan(steps: int = 60) -> None:
    print("== adversarial learning (tiny WGAN: critic separates real/fake) ==")
    rng = np.random.default_rng(0)
    generator = TinyGenerator(latent=4, image_elements=16)
    critic = TinyCritic(image_elements=16)
    critic_opt = Adam(critic.parameters(), learning_rate=0.01)
    generator_opt = Adam(generator.parameters(), learning_rate=0.005)

    def real_batch(size):
        return np.sign(rng.normal(0.5, 1.0, size=(size, 16))).astype(np.float32)

    for step in range(steps):
        # Critic update (the WGAN's n_critic inner loop, shortened to 1).
        real = Tensor(real_batch(32))
        with no_grad():
            z = Tensor(rng.normal(0, 1, size=(32, 4)).astype(np.float32))
            fake_data = generator(z).data
        critic_loss = critic(Tensor(fake_data)).mean() - critic(real).mean()
        critic_opt.zero_grad()
        critic_loss.backward()
        critic_opt.step()
        # Generator update.
        z = Tensor(rng.normal(0, 1, size=(32, 4)).astype(np.float32))
        generator_loss = -critic(generator(z)).mean()
        generator_opt.zero_grad()
        generator_loss.backward()
        generator_opt.step()
        if step % 20 == 0 or step == steps - 1:
            gap = -critic_loss.item()
            print(f"  step {step:3d}  wasserstein gap {gap:+.3f}")
    print()


def train_actor_critic(steps: int = 80) -> None:
    print("== deep RL (TinyActorCritic, policy + value heads) ==")
    rng = np.random.default_rng(0)
    model = TinyActorCritic(frame_stack=2, frame=12, actions=4)
    optimizer = Adam(model.parameters(), learning_rate=0.01)

    def batch(size):
        actions = rng.integers(0, 4, size=size)
        frames = rng.normal(0, 0.1, size=(size, 2, 12, 12)).astype(np.float32)
        for index, action in enumerate(actions):
            column = int(action) * 3
            frames[index, :, :, column : column + 2] += 1.0
        return frames, actions

    for step in range(steps):
        frames, actions = batch(16)
        policy_logits, value = model(Tensor(frames))
        loss = F.cross_entropy(policy_logits, actions) + 0.5 * F.mse(
            value, np.ones((16, 1), dtype=np.float32)
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if step % 20 == 0 or step == steps - 1:
            frames, actions = batch(64)
            with no_grad():
                policy_logits, _ = model(Tensor(frames))
            print(
                f"  step {step:3d}  loss {loss.item():.3f}  "
                f"policy accuracy {F.accuracy(policy_logits, actions):.2f}"
            )
    print()


if __name__ == "__main__":
    train_image_classifier()
    train_translator()
    train_wgan()
    train_actor_critic()
