"""Verify the paper's 13 numbered observations against the simulator.

Every finding in Section 4 of the paper is encoded as an executable check
(:mod:`repro.core.observations`); this example runs them all and prints a
pass/fail report with the measured evidence.
"""

from repro.core.observations import verify_all


def main() -> None:
    results = verify_all()
    passed = sum(1 for result in results if result.holds)
    print(f"TBD observation checks: {passed}/{len(results)} reproduce\n")
    for result in results:
        mark = "PASS" if result.holds else "FAIL"
        print(f"[{mark}] Observation {result.number:2d}: {result.title}")
        print(f"       {result.evidence}")
    if passed != len(results):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
