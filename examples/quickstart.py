"""Quickstart: run one TBD benchmark end to end and print every metric the
paper's toolchain reports.

Usage::

    python examples/quickstart.py [model] [framework] [batch]

e.g. ``python examples/quickstart.py resnet-50 mxnet 32``.
"""

import sys

from repro.core.analysis import AnalysisPipeline
from repro.core.suite import standard_suite


def main(argv) -> None:
    model = argv[1] if len(argv) > 1 else "resnet-50"
    framework = argv[2] if len(argv) > 2 else "mxnet"
    batch = int(argv[3]) if len(argv) > 3 else None

    suite = standard_suite()
    spec = suite.model(model)
    batch = batch if batch is not None else spec.reference_batch

    print(f"TBD quickstart: {spec.display_name} on {framework}, "
          f"mini-batch {batch}, {suite.gpu.name}")
    print(f"  application:    {spec.application}")
    print(f"  dataset:        {spec.dataset}")
    print(f"  dominant layer: {spec.dominant_layer}")
    print()

    # One-line metric access:
    metrics = suite.run(model, framework, batch)
    print("headline metrics")
    print(f"  throughput:       {metrics.throughput:9.1f} {metrics.throughput_unit}")
    print(f"  GPU utilization:  {metrics.gpu_utilization * 100:8.1f} %")
    print(f"  FP32 utilization: {metrics.fp32_utilization * 100:8.1f} %")
    print(f"  CPU utilization:  {metrics.cpu_utilization * 100:8.2f} %")
    print()

    # The full Fig. 3 analysis pipeline: comparability check, warm-up
    # exclusion, stable-phase sampling, kernel trace, CPU sample, memory.
    report = AnalysisPipeline(model, framework).run(batch)
    print(report.summary())
    print()

    print("memory breakdown (peak GiB per class)")
    for name, gib in report.memory.breakdown().items():
        print(f"  {name:16s} {gib:6.2f}")
    print()

    print("host CPU hotspots (core-seconds per iteration)")
    for name, seconds in report.cpu_sample.hotspots():
        if seconds > 0:
            print(f"  {name:24s} {seconds * 1e3:9.2f} ms")
    print()

    from repro.profiling.roofline_chart import roofline_for

    print(roofline_for(suite.session(model, framework), batch, top=6))


if __name__ == "__main__":
    main(sys.argv)
