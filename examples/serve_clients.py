"""Sweep-as-a-service: multi-tenant clients against the benchmark server.

Three tenants share one :class:`BenchmarkServer`: an interactive user
streaming per-point results, a batch tenant running a conformance-checked
sweep, and a duplicate submission that coalesces onto work already in
flight.  Afterwards the deterministic load generator replays the same
scheduler at 200 simulated clients and prints the per-class latency SLO
report — the numbers ``tbd bench gate serve`` gates on.

Run:  python examples/serve_clients.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.serve import (
    BenchmarkServer,
    JobRequest,
    LoadGenConfig,
    evaluate_slo,
    run_loadgen,
)


async def serve_session(cache_dir: str) -> None:
    async with BenchmarkServer(cache_dir=cache_dir, workers=2) as server:
        # Tenant "ada" wants per-point streaming for an interactive sweep.
        sweep = JobRequest(
            kind="sweep",
            model="resnet-50",
            framework="mxnet",
            batch_sizes=(4, 8, 16),
        )
        handle = await server.submit(sweep, tenant="ada", priority="interactive")
        print(f"[ada] job {handle.job_id} submitted (interactive)")
        # Tenant "bert" submits the same work while it is still in
        # flight: the server coalesces it onto ada's execution.
        duplicate = await server.submit(sweep, tenant="bert", priority="batch")
        async for event in handle.events():
            if event.kind == "point":
                record = event.data["record"]
                print(
                    f"[ada]   point {event.data['index'] + 1}/"
                    f"{event.data['total']}: batch {record['batch_size']} -> "
                    f"{record['metrics']['throughput']:.1f} samples/s"
                )
            elif event.terminal:
                print(f"[ada] terminal event: {event.kind}")

        # Bert also runs a conformance-checked job at batch priority.
        conf = await server.submit(
            JobRequest(
                kind="conformance",
                model="alexnet",
                framework="mxnet",
                batch_sizes=(8,),
            ),
            tenant="bert",
            priority="batch",
        )
        print(f"[bert] duplicate sweep coalesced: {duplicate.coalesced}")
        verdict = (await conf.result())["conformance"]
        print(
            f"[bert] conformance: {verdict['checked']} invariants checked, "
            f"ok={verdict['ok']}"
        )
        await duplicate.result()

        stats = server.cache.stats()
        print(
            f"cache: {stats['entries']} entries across {stats['shards']} "
            f"shards, {stats['hits']} hits / {stats['misses']} misses"
        )


def main() -> None:
    print("== sweep-as-a-service demo ==")
    with tempfile.TemporaryDirectory() as cache_dir:
        asyncio.run(serve_session(cache_dir))

    print("\n== deterministic load test (200 simulated clients) ==")
    report = run_loadgen(LoadGenConfig(clients=200, seed=7))
    print(report.format_report())
    breaches = evaluate_slo(report)
    print("SLO:", "all ceilings hold" if not breaches else "; ".join(breaches))


if __name__ == "__main__":
    main()
