"""From diagnosis to fix: the advisor plus the optimization what-ifs.

For each of three representative workloads this example (1) runs the full
analysis pipeline, (2) prints the advisor's ranked recommendations, and
(3) *quantifies* the recommended fixes with the what-if models:

- NMT: fuse RNN cells (repro.optimizations.fusion);
- Sockeye: offload feature maps to stretch the batch axis
  (repro.optimizations.offload) and store maps in FP16
  (repro.optimizations.precision);
- ResNet-50: reinvest freed memory in depth (repro.optimizations.depth).
"""

from repro.core.analysis import AnalysisPipeline
from repro.core.recommendations import advise
from repro.optimizations.depth import depth_for_batch_tradeoff
from repro.optimizations.fusion import evaluate_fusion
from repro.optimizations.offload import FeatureMapOffload
from repro.optimizations.precision import HalfPrecisionStorage
from repro.training.session import TrainingSession


def diagnose(model: str, framework: str, batch: int):
    report = AnalysisPipeline(model, framework).run(batch)
    print(f"--- {model} on {framework}, batch {batch} ---")
    print(
        f"throughput {report.metrics.throughput:.0f} "
        f"{report.metrics.throughput_unit}, GPU util "
        f"{report.metrics.gpu_utilization * 100:.0f}%, feature maps "
        f"{report.memory.feature_map_fraction * 100:.0f}% of "
        f"{report.memory.total_gib:.1f} GiB"
    )
    for recommendation in advise(report):
        print(f"  {recommendation}")
    print()
    return report


def main() -> None:
    # 1. NMT: the advisor says "fuse RNN cells"; how much does it buy?
    diagnose("nmt", "tensorflow", 128)
    fusion = evaluate_fusion(TrainingSession("nmt", "tensorflow"), 128)
    print(
        f"=> applying the fused-RNN rewrite: {fusion.baseline_throughput:.0f} "
        f"-> {fusion.fused_throughput:.0f} sentences/s ({fusion.speedup:.2f}x), "
        f"{fusion.baseline_kernel_count} -> {fusion.fused_kernel_count} kernels, "
        f"GPU util {fusion.baseline_gpu_utilization * 100:.0f}% -> "
        f"{fusion.fused_gpu_utilization * 100:.0f}%\n"
    )

    # 2. Sockeye: memory-bound at batch 64; stretch the axis two ways.
    diagnose("sockeye", "mxnet", 64)
    session = TrainingSession("sockeye", "mxnet")
    offload = FeatureMapOffload(session)
    plan = offload.plan(64, 0.6)
    new_max = offload.max_batch_with_offload((64, 128, 256), 0.6)
    print(
        f"=> offloading 60% of feature maps: frees {plan.memory_saved_gib:.1f} GiB "
        f"for {plan.throughput_cost_fraction * 100:.1f}% throughput; max batch "
        f"64 -> {new_max}"
    )
    half = HalfPrecisionStorage(session)
    print(
        f"=> FP16 map storage: footprint "
        f"{half.plan(64).fp32_total_bytes / 2**30:.1f} -> "
        f"{half.plan(64).fp16_total_bytes / 2**30:.1f} GiB; max batch "
        f"64 -> {half.max_batch((64, 128, 256))}\n"
    )

    # 3. ResNet-50: throughput saturates at batch 32; spend memory on depth.
    diagnose("resnet-50", "mxnet", 32)
    print("=> Obs. 12 reinvestment: deepest residual net that fits per batch")
    for plan in depth_for_batch_tradeoff(batches=(8, 16, 32, 64)):
        print(
            f"   b={plan.batch_size:<4d} {plan.name:12s} "
            f"({plan.layer_count} layers, {plan.total_gib:.1f} GiB, "
            f"{plan.throughput:.0f} img/s)"
        )


if __name__ == "__main__":
    main()
