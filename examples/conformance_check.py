"""The conformance harness end to end: laws, fuzzing, shrinking.

``tbd conformance run|list|shrink`` drives the same machinery from the
shell; this example walks it programmatically:

1. list the registered invariants and metamorphic relations;
2. run a reduced harness (two paper panels, a small fuzz budget, one
   scaling probe) and print the violation report;
3. rerun with the same seed against the warm cache and show the JSON
   report is byte-identical — the acceptance property CI relies on;
4. demonstrate the shrinker on a clean configuration.
"""

import os

from repro.conformance import (
    ConformanceRunner,
    invariant_registry,
    relation_registry,
)
from repro.engine import ResultCache
from repro.engine.executor import PointSpec

CACHE_DIR = os.path.join("artifacts", "conformance-cache")

#: A reduced panel set: one CNN across two frameworks, one RNN.
PANELS = (
    ("resnet-50", ("tensorflow", "mxnet")),
    ("nmt", ("tensorflow",)),
)


def main() -> None:
    print("== the registered laws ==")
    for inv in invariant_registry():
        print(f"  [{inv.scope:>7}] {inv.name}")
    for rel in relation_registry():
        print(f"  [relation] {rel.name}")

    print("\n== reduced conformance run (cold cache) ==")
    kwargs = dict(
        seed=7,
        budget=8,
        jobs=2,
        panels=PANELS,
        deep_limit=2,
        deep_every=4,
        scaling_probes=(("resnet-50", "mxnet"),),
    )
    runner = ConformanceRunner(cache=ResultCache(CACHE_DIR), **kwargs)
    report = runner.run()
    print(report.render())

    print("\n== same seed, warm cache: byte-identical report ==")
    rerun = ConformanceRunner(cache=ResultCache(CACHE_DIR), **kwargs).run()
    assert rerun.to_json() == report.to_json()
    print(f"  {len(report.to_json())} bytes, identical across runs")

    print("\n== the shrinker on a clean configuration ==")
    recheck = ConformanceRunner(jobs=1, cache=None, include_grid=False, budget=0)
    spec = PointSpec("a3c", "mxnet", 8, "")
    fires = recheck.violates("roofline-kernel-floor", spec, "p4000")
    print(f"  roofline-kernel-floor on a3c/mxnet b8: violated={fires}")
    print("  (inject a bug — see tests/test_conformance_mutants.py — and the")
    print("   shrinker walks any failure down to exactly this spec)")


if __name__ == "__main__":
    main()
