"""Export profiling artifacts: chrome traces and CSV summaries.

The paper's pipeline collects ``.nvvp`` files and merges them offline; this
example produces the modern equivalents for two contrasting workloads and
writes them under ``./artifacts``:

- ``resnet50_trace.json`` / ``nmt_trace.json`` — load in chrome://tracing
  or https://ui.perfetto.dev to *see* the difference between a saturated
  CNN timeline and an LSTM timeline full of host-sync gaps;
- ``*_kernels.csv`` — per-kernel aggregates (the Tables 5/6 raw data);
- ``suite_metrics.csv`` — headline metrics for every configuration.
"""

import os

from repro.core.metrics import IterationMetrics
from repro.core.suite import standard_suite
from repro.profiling.export import (
    kernel_stats_to_csv,
    metrics_to_csv,
    write_chrome_trace,
)
from repro.profiling.kernel_trace import trace_from_profile
from repro.profiling.timeline import timeline_for

OUTPUT_DIR = "artifacts"


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    suite = standard_suite()

    for label, model, framework, batch in (
        ("resnet50", "resnet-50", "mxnet", 32),
        ("nmt", "nmt", "tensorflow", 64),
    ):
        session = suite.session(model, framework)
        timeline = timeline_for(session, batch)
        trace_path = os.path.join(OUTPUT_DIR, f"{label}_trace.json")
        write_chrome_trace(timeline, trace_path, process_name=f"{model} ({framework})")
        profile = session.run_iteration(batch)
        csv_path = os.path.join(OUTPUT_DIR, f"{label}_kernels.csv")
        kernel_stats_to_csv(trace_from_profile(profile), csv_path)
        idle = timeline.idle_by_cause()
        print(
            f"{label}: {len(timeline.events)} kernels, GPU util "
            f"{timeline.gpu_utilization * 100:.0f}%, idle by cause "
            f"{ {k: round(v * 1e3, 1) for k, v in idle.items()} } ms"
        )
        print(f"  -> {trace_path}, {csv_path}")

    metrics = []
    for spec, framework in suite.configurations():
        profile = suite.session(spec.key, framework.key).run_iteration()
        metrics.append(
            IterationMetrics.from_profile(profile, spec.throughput_unit)
        )
    metrics_path = os.path.join(OUTPUT_DIR, "suite_metrics.csv")
    metrics_to_csv(metrics, metrics_path)
    print(f"suite metrics ({len(metrics)} configurations) -> {metrics_path}")


if __name__ == "__main__":
    main()
