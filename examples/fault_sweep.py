"""Fault injection end to end: break the cluster, watch it recover.

``tbd faults run|show|demo`` and ``tbd sweep --faults`` drive the same
machinery from the shell; this example walks it programmatically:

1. run the clean 4M1G data-parallel baseline;
2. replay it under a seeded ``FaultPlan`` — a straggler window, a
   transient allreduce timeout, and a machine crash — and print the
   recovery event log (backoff, bucket rebalance, checkpoint restart,
   elastic shrink 4 -> 3 machines);
3. trace the faulted run and show every fault/recovery span;
4. sweep a faulted scenario through the cached engine twice and prove
   the warm pass computes nothing and exports byte-identical JSONL.
"""

import os

from repro.engine import PointSpec, SweepEngine, write_grid_jsonl
from repro.faults import (
    AllReduceTimeout,
    FaultPlan,
    FaultTolerantTrainer,
    StragglerFault,
    WorkerCrash,
)
from repro.hardware.cluster import parse_configuration
from repro.observability import tracing

SCENARIO = "cluster=2M1G:infiniband; steps=25; straggler=0x1.5@5:15; crash=1@18"
CACHE_DIR = os.path.join("artifacts", "fault-cache")


def span_names(spans, out):
    """Collect the full span-name set from a tracer's forest."""
    for span in spans:
        out.add(span.name)
        span_names(span.children, out)
    return out


def main() -> None:
    cluster = parse_configuration("4M1G", fabric="infiniband")
    plan = FaultPlan(
        events=(
            StragglerFault(worker=1, factor=1.5, start_step=10, end_step=25),
            AllReduceTimeout(step=20, failures=2, timeout_s=0.5),
            WorkerCrash(step=30),
        ),
        seed=7,
    )

    print("== fault injection on the simulated cluster ==")
    print(f"cluster: {cluster.name}")
    print(plan.describe())

    print("\n-- clean baseline vs faulted run (50 steps) --")
    clean = FaultTolerantTrainer("resnet-50", "mxnet", cluster, 16).run(steps=50)
    with tracing() as tracer:
        faulted = FaultTolerantTrainer(
            "resnet-50", "mxnet", cluster, 16, plan=plan
        ).run(steps=50)
    print(f"  clean:   {clean.wall_clock_s:8.2f}s  {clean.throughput:8.1f} samples/s")
    print(
        f"  faulted: {faulted.wall_clock_s:8.2f}s  {faulted.throughput:8.1f} samples/s"
        f"  (x{faulted.slowdown:.2f} slower, lost {faulted.lost_s:.2f}s)"
    )
    print(f"  machines: {faulted.initial_machines} -> {faulted.final_machines}")
    print("\n-- recovery event log --")
    print(faulted.event_log())
    interesting = sorted(
        name
        for name in span_names(tracer.roots, set())
        if name.startswith(("fault.", "recovery."))
    )
    print("\n-- fault/recovery spans in the trace --")
    for name in interesting:
        print(f"  {name}")

    print("\n-- the faults dimension rides the cached sweep engine --")
    grid = [PointSpec("resnet-50", "mxnet", batch, SCENARIO) for batch in (8, 16, 32)]
    cold = SweepEngine(jobs=2, cache=CACHE_DIR)
    cold_points = cold.run_grid(grid)
    warm = SweepEngine(jobs=1, cache=CACHE_DIR)
    warm_points = warm.run_grid(grid)
    for spec, point in zip(grid, cold_points):
        print(f"  b/gpu {spec.batch_size:3d}: {point.metrics.throughput:8.1f} samples/s")
    print(f"  cold engine: {cold.stats}")
    print(f"  warm engine: {warm.stats}")

    cold_path = os.path.join("artifacts", "fault_sweep_cold.jsonl")
    warm_path = os.path.join("artifacts", "fault_sweep_warm.jsonl")
    write_grid_jsonl(cold_path, grid, cold_points)
    write_grid_jsonl(warm_path, grid, warm_points)
    with open(cold_path, "rb") as handle:
        cold_bytes = handle.read()
    with open(warm_path, "rb") as handle:
        warm_bytes = handle.read()
    identical = cold_bytes == warm_bytes
    print(f"  warm JSONL byte-identical to cold: {identical}")
    print(f"  computed {warm.stats.points_computed}, hits {warm.stats.cache_hits}")


if __name__ == "__main__":
    main()
