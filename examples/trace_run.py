"""The observability loop end to end: trace a run, inspect it, diff it.

``tbd trace`` / ``tbd runs`` drive the same machinery from the shell; this
example walks it programmatically:

1. run the full analysis pipeline under telemetry (``traced_run``) twice,
   archiving both runs under ``./artifacts/runs``;
2. print the span tree — pipeline stages as ancestors of the simulated
   kernel timelines — and a slice of the metrics registry;
3. show that the exported artifacts are deterministic (the two runs'
   ``spans.jsonl`` are byte-identical) and diff the archived manifests.
"""

import os

from repro.observability import RunArchive, traced_run

RUNS_DIR = os.path.join("artifacts", "runs")


def main() -> None:
    print("== tracing resnet-50/mxnet b=16 (twice) ==")
    first = traced_run("resnet-50", "mxnet", batch_size=16, archive_root=RUNS_DIR)
    second = traced_run("resnet-50", "mxnet", batch_size=16, archive_root=RUNS_DIR)

    print("\n== span tree (stage spans contain the kernel timelines) ==")
    print(first.tracer.render_tree())

    print("\n== selected metrics ==")
    snapshot = first.metrics.snapshot()
    for key in sorted(snapshot):
        if key.startswith(("kernels_", "gpu_", "dispatch_", "memory_peak_total")):
            print(f"  {key} = {snapshot[key]}")

    print("\n== archived runs ==")
    archive = RunArchive(RUNS_DIR)
    for run_id in archive.list():
        manifest = archive.load(run_id)
        print(
            f"  {run_id}: {manifest.metrics['throughput']:.1f} samples/s "
            f"on {manifest.device} (git {manifest.git})"
        )

    a, b = first.manifest.run_id, second.manifest.run_id
    identical = first.to_jsonl() == second.to_jsonl()
    print(f"\nspans.jsonl byte-identical across runs: {identical}")

    print(f"\n== tbd runs diff {a} {b} ==")
    print(archive.delta_table(a, b))
    drifts = archive.diff(a, b)
    if drifts:
        for drift in drifts:
            print(f"  DRIFT {drift}")
    else:
        print("all headline metrics within tolerance")


if __name__ == "__main__":
    main()
