"""Inspecting compiled execution plans.

Every simulated iteration now flows through one IR: the session *compiles*
a ``(model, framework, batch, gpu)`` point into a :class:`CompiledPlan`
(kernel stream, roofline timings, dispatch/execute timeline, allocation
trace), caches it, and executes it.  This example dumps a plan for the
launch-bound seq2seq LSTM, shows the cache absorbing a recompile, and
applies the fused-RNN rewrite as a :class:`PlanTransform` to compare the
two kernel streams.

Run:  PYTHONPATH=src python examples/plan_inspect.py
"""

from repro.plan.transform import FusedRNNTransform
from repro.training.session import TrainingSession


def main() -> None:
    session = TrainingSession("seq2seq", "tensorflow")
    batch = session.spec.reference_batch

    plan = session.compile(batch)
    print(plan.describe())
    print()

    # A second compile of the same point is a cache hit — the session never
    # rebuilds or re-lowers a point it already knows.
    again = session.compile(batch)
    stats = session.plan_cache.stats
    print(
        f"recompile is the same object: {again is plan}  "
        f"(cache: {stats.hits} hit(s), {stats.misses} miss(es))"
    )
    print()

    # Optimizations are plan-to-plan rewrites with explicit contracts: the
    # fused-RNN transform must preserve total FLOPs while collapsing the
    # per-timestep launch storm into a few large kernels.
    fused = FusedRNNTransform().apply(plan)
    print(
        f"fused-RNN transform: {len(plan.kernels)} kernels -> "
        f"{len(fused.kernels)}, total FLOPs preserved "
        f"({plan.total_flops:.3e} vs {fused.total_flops:.3e})"
    )
    print(
        f"makespan {plan.makespan_s * 1e3:.3f} ms -> "
        f"{fused.makespan_s * 1e3:.3f} ms  "
        f"(dispatch cpu {plan.dispatch_cpu_s * 1e3:.3f} ms -> "
        f"{fused.dispatch_cpu_s * 1e3:.3f} ms)"
    )


if __name__ == "__main__":
    main()
