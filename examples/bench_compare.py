"""Statistical differential benchmarking end to end.

``tbd bench run|compare|history|gate`` drives the same machinery from the
shell; this example walks it programmatically:

1. measure the fused-RNN transform against baseline with the interleaved
   A/B runner under a seeded noise model and read the verdict;
2. show the gate's two controls — a no-op A/B stays indistinguishable, a
   deterministic 5% kernel-time slowdown is caught with p < alpha;
3. record a suite run into a ``BENCH_<suite>.json`` trajectory, rerun at
   the same seed, and show the file is byte-identical — the acceptance
   property CI relies on.
"""

import os

from repro.bench import (
    BenchStore,
    InterleavedRunner,
    NoiseModel,
    evaluate_gate,
    get_suite,
    run_suite,
    subject_for,
)
from repro.bench.store import build_record

TRAJECTORY_DIR = os.path.join("artifacts", "bench-trajectory")
SEED = 7


def main() -> None:
    noise = NoiseModel(seed=SEED)
    runner = InterleavedRunner(noise=noise)

    print("== fused-RNN transform vs baseline (nmt/tensorflow b=64) ==")
    baseline = subject_for("baseline", "nmt", "tensorflow", 64)
    fused = subject_for("fused-rnn", "nmt", "tensorflow", 64)
    result = runner.run(baseline, fused)
    print(f"  {result.format_row()}")
    print(
        f"  medians {result.median_baseline_s * 1e3:.2f} -> "
        f"{result.median_treatment_s * 1e3:.2f} ms across "
        f"{result.samples_per_side} samples/side"
    )
    assert result.verdict == "improvement"

    print("\n== the gate's controls ==")
    noop = runner.run(
        subject_for("baseline", "nmt", "tensorflow", 64),
        subject_for("baseline", "nmt", "tensorflow", 64),
        name="noop-control",
    )
    print(f"  {noop.format_row()}")
    assert noop.verdict == "indistinguishable"

    slow = runner.run(
        subject_for("baseline", "nmt", "tensorflow", 64),
        subject_for("slowdown:5", "nmt", "tensorflow", 64),
        name="slowdown-control",
    )
    print(f"  {slow.format_row()}")
    assert slow.verdict == "regression" and slow.p_regression < 0.05

    print("\n== trajectory: suite run -> BENCH_*.json, byte-identical rerun ==")
    suite = get_suite("noop")
    store = BenchStore(TRAJECTORY_DIR)

    def record_once() -> bytes:
        results = run_suite(suite, noise=noise, samples=30)
        gate = evaluate_gate(suite, results)
        store.append(
            suite.name,
            build_record(suite.name, SEED, noise.to_doc(), results, gate.to_doc()),
        )
        assert gate.passed
        with open(store.path(suite.name), "rb") as handle:
            return handle.read()

    first = record_once()
    second = record_once()
    assert first == second
    print(
        f"  {store.path(suite.name)}: {len(first)} bytes, "
        "identical across same-seed runs"
    )
    print("\nbench compare done.")


if __name__ == "__main__":
    main()
