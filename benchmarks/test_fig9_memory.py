"""Benchmark: regenerate Fig. 9 (memory breakdown, five classes)."""

from conftest import run_once

from repro.experiments import fig9


def test_fig9_memory_breakdown(benchmark):
    profiles = run_once(benchmark, fig9.generate)
    print()
    print(fig9.render(profiles))
    largest = {}
    for profile in profiles:
        key = (profile.model, profile.framework)
        if key not in largest or profile.batch_size > largest[key].batch_size:
            largest[key] = profile
    fractions = [p.feature_map_fraction for p in largest.values()]
    benchmark.extra_info["feature_map_share_min"] = round(min(fractions), 3)
    benchmark.extra_info["feature_map_share_max"] = round(max(fractions), 3)

    # Observation 11: feature maps dominate (paper: 62%-89%).
    assert min(fractions) > 0.55
    assert max(fractions) < 0.95
    # Observation 12: footprint grows ~linearly with batch via feature maps.
    resnet = [p for p in profiles if p.model == "ResNet-50" and p.framework == "MXNet"]
    by_batch = {p.batch_size: p for p in resnet}
    fm8 = by_batch[8].breakdown()["feature maps"]
    fm32 = by_batch[32].breakdown()["feature maps"]
    assert 3.5 < fm32 / fm8 < 4.5
    # The "dynamic" class (momentum) appears only on MXNet.
    for profile in largest.values():
        if profile.framework == "MXNet":
            assert profile.breakdown()["dynamic"] > 0
        else:
            assert profile.breakdown()["dynamic"] == 0
