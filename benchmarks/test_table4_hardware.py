"""Benchmark: regenerate Table 4 (hardware specifications)."""

from conftest import run_once

from repro.experiments import table4


def test_table4_hardware_specs(benchmark):
    rows = run_once(benchmark, table4.generate)
    print()
    print(table4.render())
    assert any("Core Count" in str(row[0]) for row in rows)
