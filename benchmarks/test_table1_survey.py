"""Benchmark: regenerate Table 1 (the motivating literature survey)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_survey(benchmark):
    summary = run_once(benchmark, table1.generate)
    print()
    print(table1.render())
    benchmark.extra_info["training_papers"] = summary.training_papers
    benchmark.extra_info["inference_papers"] = summary.inference_papers
    assert summary.inference_papers > summary.training_papers
