"""Benchmark: regenerate Fig. 4 (throughput vs. mini-batch, all models)."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4_throughput_sweeps(benchmark, suite):
    data = run_once(benchmark, fig4.generate, suite)
    print()
    print(fig4.render(data))
    by_key = {(s.model, s.framework): s for s in data["sweeps"]}
    resnet = by_key[("resnet-50", "mxnet")].finite()
    nmt = by_key[("nmt", "tensorflow")].finite()
    benchmark.extra_info["resnet50_mxnet_b32"] = round(dict(resnet)[32], 1)
    benchmark.extra_info["nmt_tf_b128"] = round(dict(nmt)[128], 1)

    # Paper shapes: monotone growth; CNN saturation; RNN keeps scaling;
    # MXNet wins image classification, TF wins Seq2Seq (Obs. 1-3).
    for series in data["sweeps"]:
        values = [v for _, v in series.finite()]
        assert values == sorted(values)
    assert dict(resnet)[64] / dict(resnet)[32] < 1.10
    assert dict(nmt)[128] / dict(nmt)[64] > 1.4
    sockeye = dict(by_key[("sockeye", "mxnet")].finite())
    assert dict(nmt)[128] > sockeye[64]
    tf_resnet = dict(by_key[("resnet-50", "tensorflow")].finite())
    assert dict(resnet)[32] > tf_resnet[32]
    assert 1.5 < data["faster_rcnn"]["tensorflow"] < 4.0  # paper: 2.3
