"""Benchmark: regenerate Tables 2 and 3 (suite + dataset overviews)."""

from conftest import run_once

from repro.experiments import table2_3


def test_table2_and_3_suite_overview(benchmark):
    data = run_once(benchmark, table2_3.generate)
    print()
    print(table2_3.render())
    benchmark.extra_info["models"] = len(data["table2"])
    benchmark.extra_info["datasets"] = len(data["table3"])
    assert len(data["table2"]) == 9
    assert len(data["table3"]) == 6
