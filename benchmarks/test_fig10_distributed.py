"""Benchmark: regenerate Fig. 10 (multi-GPU / multi-machine scaling)."""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_distributed_scaling(benchmark):
    data = run_once(benchmark, fig10.generate)
    print()
    print(fig10.render(data))
    at32 = {label: profiles[-1].throughput for label, profiles in data.items()}
    benchmark.extra_info.update(
        {label: round(value, 1) for label, value in at32.items()}
    )

    # Observation 13's shape: Ethernet degrades below single-GPU; PCIe and
    # InfiniBand scale well.
    assert at32["2M1G (ethernet)"] < at32["1M1G"]
    assert at32["2M1G (infiniband)"] > 1.5 * at32["1M1G"]
    assert at32["1M2G"] > 1.5 * at32["1M1G"]
    assert at32["1M4G"] > 3.0 * at32["1M1G"]
    # Per-GPU batch growth helps every configuration.
    for profiles in data.values():
        throughputs = [p.throughput for p in profiles]
        assert throughputs == sorted(throughputs)
