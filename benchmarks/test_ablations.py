"""Ablation benchmarks: each mechanism DESIGN.md credits for a paper
phenomenon is switched off or swept, and the phenomenon must appear/vanish
accordingly.  This is the evidence that the reproduction's findings emerge
from modelled mechanisms, not from baked-in outputs.
"""

import dataclasses

import pytest
from conftest import run_once

from repro.frameworks.registry import MXNET, TENSORFLOW
from repro.hardware.devices import QUADRO_P4000, TITAN_XP
from repro.hardware.roofline import RooflineModel
from repro.kernels.gemm import gemm
from repro.optimizations.fusion import evaluate_fusion
from repro.training.session import TrainingSession


def _session_with_framework(model, framework):
    session = TrainingSession(model, framework.key if hasattr(framework, "key") else framework)
    session.framework = framework
    return session


class TestHostSyncAblation:
    """Mechanism behind Obs. 5: per-step host syncs cause the LSTM
    utilization gap.  Remove them (fused-RNN rewrite) and it must close."""

    def test_fusing_rnn_closes_the_utilization_gap(self, benchmark):
        session = TrainingSession("nmt", "tensorflow")
        result = run_once(benchmark, evaluate_fusion, session, 128)
        print(
            f"\nfused-RNN ablation (NMT b=128): throughput "
            f"{result.baseline_throughput:.0f} -> {result.fused_throughput:.0f} "
            f"({result.speedup:.2f}x), GPU util "
            f"{result.baseline_gpu_utilization * 100:.0f}% -> "
            f"{result.fused_gpu_utilization * 100:.0f}%, kernels "
            f"{result.baseline_kernel_count} -> {result.fused_kernel_count}"
        )
        benchmark.extra_info["speedup"] = round(result.speedup, 2)
        assert result.speedup > 1.3
        assert result.fused_gpu_utilization > result.baseline_gpu_utilization + 0.1

    def test_sync_latency_sweep(self, benchmark):
        """LSTM utilization degrades monotonically with sync latency."""

        def sweep():
            utilizations = []
            for latency in (0.0, 130e-6, 260e-6, 520e-6):
                framework = dataclasses.replace(TENSORFLOW, sync_latency_s=max(latency, 1e-9))
                session = _session_with_framework("nmt", framework)
                utilizations.append(session.run_iteration(128).gpu_utilization)
            return utilizations

        utilizations = run_once(benchmark, sweep)
        print(f"\nsync-latency sweep (NMT): {[round(u, 3) for u in utilizations]}")
        assert utilizations == sorted(utilizations, reverse=True)
        assert utilizations[0] - utilizations[-1] > 0.1


class TestGemmTileAblation:
    """Mechanism behind Obs. 7: narrow per-timestep GEMMs cannot fill SGEMM
    tiles.  The efficiency ceiling must fall sharply with the batch (m)
    dimension at fixed work shape."""

    def test_narrow_gemm_efficiency_cliff(self, benchmark):
        def sweep():
            model = RooflineModel(QUADRO_P4000)
            return [
                model.time_kernel(gemm(m, 2048, 1024)).fp32_utilization
                for m in (4, 16, 64, 256, 1024)
            ]

        utilizations = run_once(benchmark, sweep)
        print(f"\nGEMM m-sweep fp32: {[round(u, 3) for u in utilizations]}")
        assert utilizations == sorted(utilizations)
        assert utilizations[0] < 0.1 * utilizations[-1]


class TestOccupancyRampAblation:
    """Mechanism behind Obs. 10: the Titan Xp's wider occupancy ramp eats
    more of each kernel, so the same stream utilizes it less."""

    def test_ramp_scales_with_device_width(self, benchmark):
        def measure():
            p4 = RooflineModel(QUADRO_P4000)
            xp = RooflineModel(TITAN_XP)
            kernel = gemm(256, 256, 256)
            return (
                p4._ramp_s,
                xp._ramp_s,
                p4.time_kernel(kernel).fp32_utilization,
                xp.time_kernel(kernel).fp32_utilization,
            )

        p4_ramp, xp_ramp, p4_util, xp_util = run_once(benchmark, measure)
        print(
            f"\nramp P4000 {p4_ramp * 1e6:.1f}us vs Titan {xp_ramp * 1e6:.1f}us; "
            f"fp32 {p4_util * 100:.1f}% vs {xp_util * 100:.1f}%"
        )
        assert xp_ramp > p4_ramp
        assert xp_util < p4_util


class TestAllocatorAblation:
    """Mechanism behind the Seq2Seq memory story (Obs. 3): Sockeye's
    bucket over-allocation plus MXNet's pool slack cause its batch-64 limit.
    Remove either and batch 128 fits."""

    def test_bucketing_overallocation_drives_the_limit(self, benchmark):
        def measure():
            session = TrainingSession("sockeye", "mxnet")
            baseline_max = session.max_batch_size((32, 64, 128, 256))
            # Ablate the allocator slack: a hypothetical MXNet with
            # TensorFlow's tight BFC packing.
            tight = dataclasses.replace(MXNET, pool_overhead=1.0)
            ablated = _session_with_framework("sockeye", tight)
            ablated_max = ablated.max_batch_size((32, 64, 128, 256))
            return baseline_max, ablated_max

        baseline_max, ablated_max = run_once(benchmark, measure)
        print(f"\nSockeye max batch: pool=1.22 -> {baseline_max}; pool=1.00 -> {ablated_max}")
        assert baseline_max == 64
        assert ablated_max >= 128

    def test_gradient_map_factor_moves_cnn_limit(self, benchmark):
        import repro.training.session as session_module

        def measure():
            session = TrainingSession("resnet-50", "mxnet")
            baseline = session.max_batch_size((32, 64, 128))
            original = session_module.GRADIENT_MAP_FACTOR
            session_module.GRADIENT_MAP_FACTOR = 1.5
            try:
                inflated = session.max_batch_size((32, 64, 128))
            finally:
                session_module.GRADIENT_MAP_FACTOR = original
            return baseline, inflated

        baseline, inflated = run_once(benchmark, measure)
        print(f"\nResNet-50 max batch: grad-map 0.10 -> {baseline}; 1.5 -> {inflated}")
        assert inflated < baseline


class TestPipelineAblation:
    """Mechanism behind Fig. 7's CNTK bars: the pre-packed reader.  Give
    TensorFlow the same reader and its CPU utilization collapses too."""

    def test_packed_reader_collapses_cpu_utilization(self, benchmark):
        def measure():
            baseline = TrainingSession("resnet-50", "tensorflow").run_iteration(32)
            packed = dataclasses.replace(TENSORFLOW, pipeline_cost_factor=0.02)
            ablated = _session_with_framework("resnet-50", packed).run_iteration(32)
            return baseline.cpu_utilization, ablated.cpu_utilization

        baseline, ablated = run_once(benchmark, measure)
        print(f"\nTF CPU util: tf.data {baseline * 100:.2f}% -> packed {ablated * 100:.2f}%")
        assert ablated < 0.15 * baseline


class TestCalibrationSensitivity:
    """The reproduction's headline findings hold across wide ranges of the
    calibration constants (see repro.experiments.sensitivity)."""

    def test_all_findings_robust_across_constant_sweeps(self, benchmark):
        from repro.experiments import sensitivity

        results = run_once(benchmark, sensitivity.run_all)
        print()
        print(sensitivity.render(results))
        for result in results:
            assert result.robust, result.finding
        benchmark.extra_info["sweeps"] = len(results)
