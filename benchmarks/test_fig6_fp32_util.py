"""Benchmark: regenerate Fig. 6 (FP32 utilization vs. mini-batch)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_fp32_utilization(benchmark, suite):
    data = run_once(benchmark, fig6.generate, suite)
    print()
    print(fig6.render(data))
    by_key = {(s.model, s.framework): dict(s.finite()) for s in data["sweeps"]}
    benchmark.extra_info["resnet50_mxnet_b32"] = round(
        by_key[("resnet-50", "mxnet")][32], 3
    )
    benchmark.extra_info["sockeye_b64"] = round(by_key[("sockeye", "mxnet")][64], 3)

    # Observation 6: FP32 utilization grows with batch for every sweep.
    for series in data["sweeps"]:
        values = [v for _, v in series.finite()]
        assert values == sorted(values), series.model
    # Observation 7: RNN models far below CNNs even at max batch.
    cnn = by_key[("resnet-50", "mxnet")][32]
    assert by_key[("sockeye", "mxnet")][64] < 0.65 * cnn
    assert by_key[("deep-speech-2", "mxnet")][4] < 0.25 * cnn
