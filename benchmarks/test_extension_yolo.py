"""Benchmark: the suite-extension exhibit (YOLOv2 vs. Faster R-CNN) the
paper plans in Section 3.1.2."""

from conftest import run_once

from repro.experiments import extension_yolo


def test_extension_yolo_vs_faster_rcnn(benchmark):
    rows = run_once(benchmark, extension_yolo.generate)
    print()
    print(extension_yolo.render(rows))
    by_model = {row.model: row for row in rows}
    speedup = by_model["YOLOv2"].throughput / by_model["Faster R-CNN"].throughput
    benchmark.extra_info["yolo_speedup"] = round(speedup, 1)

    # The motivating claim: single-shot detection processes images much
    # faster than the two-network R-CNN iteration, on the same dataset.
    assert speedup > 5.0
    assert by_model["YOLOv2"].memory_gib < 8.0
