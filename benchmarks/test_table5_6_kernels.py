"""Benchmark: regenerate Tables 5 and 6 (longest low-FP32 kernels)."""

import pytest
from conftest import run_once

from repro.experiments import table5_6


@pytest.mark.parametrize("framework", ["tensorflow", "mxnet"])
def test_table5_6_low_utilization_kernels(benchmark, suite, framework):
    data = run_once(benchmark, table5_6.generate, framework, suite)
    print()
    print(table5_6.render(framework, data))
    rows = data["rows"]
    benchmark.extra_info["top_kernel"] = rows[0].kernel_name
    benchmark.extra_info["top_duration_share"] = round(rows[0].duration_share, 4)

    # Paper shape: 5 rows, all below the model-average FP32 utilization,
    # batch-normalization kernels leading, duration shares in the 2-10%
    # band Tables 5/6 report.
    assert len(rows) == 5
    assert all(r.fp32_utilization < data["average_fp32_utilization"] for r in rows)
    assert "bn_" in rows[0].kernel_name
    assert 0.02 < rows[0].duration_share < 0.15
