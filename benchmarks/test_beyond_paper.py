"""Benchmarks for the beyond-the-paper studies: time-to-accuracy scaling
and the optimization what-ifs, with their shapes asserted."""

from conftest import run_once

from repro.distributed.time_to_accuracy import scaling_study
from repro.optimizations.depth import depth_for_batch_tradeoff
from repro.optimizations.fusion import evaluate_fusion
from repro.optimizations.offload import FeatureMapOffload
from repro.training.session import TrainingSession


def test_time_to_accuracy_scaling(benchmark):
    points = run_once(benchmark, scaling_study, "resnet-50", "mxnet", 32)
    print()
    for point in points:
        print(
            f"  {point.configuration:26s} {point.throughput:7.1f} img/s  "
            f"{point.time_to_accuracy_s / 86400:5.2f} days to 95% of final"
        )
    by_label = {p.configuration: p for p in points}
    benchmark.extra_info["speedup_1m4g"] = round(
        by_label["1M1G"].time_to_accuracy_s / by_label["1M4G"].time_to_accuracy_s, 2
    )
    assert by_label["1M4G"].time_to_accuracy_s < by_label["1M1G"].time_to_accuracy_s
    slow = next(p for l, p in by_label.items() if "GbE" in l)
    assert slow.time_to_accuracy_s > by_label["1M1G"].time_to_accuracy_s


def test_fused_rnn_whatif(benchmark):
    result = run_once(
        benchmark, evaluate_fusion, TrainingSession("nmt", "tensorflow"), 128
    )
    print(
        f"\n  NMT b=128 fused-RNN: {result.speedup:.2f}x, kernels "
        f"{result.baseline_kernel_count} -> {result.fused_kernel_count}"
    )
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    assert result.speedup > 1.3


def test_offload_whatif(benchmark):
    offload = FeatureMapOffload(TrainingSession("sockeye", "mxnet"))

    def study():
        plan = offload.plan(64, 0.6)
        new_max = offload.max_batch_with_offload((64, 128, 256), 0.6)
        return plan, new_max

    plan, new_max = run_once(benchmark, study)
    print(
        f"\n  Sockeye offload 60%: frees {plan.memory_saved_gib:.1f} GiB for "
        f"{plan.throughput_cost_fraction * 100:.1f}% throughput; max batch "
        f"64 -> {new_max}"
    )
    benchmark.extra_info["new_max_batch"] = new_max
    assert new_max > 64
    assert plan.throughput_cost_fraction < 0.25


def test_depth_for_batch_tradeoff(benchmark):
    plans = run_once(benchmark, depth_for_batch_tradeoff, "mxnet", (8, 16, 32))
    print()
    for plan in plans:
        print(
            f"  b={plan.batch_size:<4d} deepest fit: {plan.name} "
            f"({plan.layer_count} layers, {plan.total_gib:.1f} GiB)"
        )
    depths = [plan.conv4_blocks for plan in plans]
    assert depths == sorted(depths, reverse=True)
    assert plans[-1].conv4_blocks >= 23  # >= ResNet-101 at batch 32
