"""Benchmark: regenerate Fig. 2 (model accuracy over training time)."""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_training_curves(benchmark, suite):
    curves = run_once(benchmark, fig2.generate, suite)
    print()
    print(fig2.render(curves))
    finals = {(c.model, c.framework): c.final_value for c in curves}
    benchmark.extra_info["resnet50_top1"] = round(finals[("resnet-50", "mxnet")], 1)
    benchmark.extra_info["nmt_bleu"] = round(finals[("nmt", "tensorflow")], 1)
    benchmark.extra_info["a3c_pong"] = round(finals[("a3c", "mxnet")], 1)
    # Section 3.3 literature end points.
    assert finals[("resnet-50", "mxnet")] > 70.0
    assert finals[("inception-v3", "mxnet")] > 73.0
    assert finals[("nmt", "tensorflow")] > 18.0
    assert finals[("a3c", "mxnet")] > 18.0
