"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, times the
generation, prints the paper-style rendering (run pytest with ``-s`` to see
it), and records headline numbers in ``benchmark.extra_info`` so the JSON
output carries the reproduced results alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.core.suite import standard_suite


@pytest.fixture(scope="session")
def suite():
    return standard_suite()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full regeneration (these are experiments, not microbenches)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
