"""Benchmark: regenerate Fig. 5 (GPU compute utilization vs. mini-batch)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_gpu_utilization(benchmark, suite):
    data = run_once(benchmark, fig5.generate, suite)
    print()
    print(fig5.render(data))
    by_key = {(s.model, s.framework): dict(s.finite()) for s in data["sweeps"]}
    benchmark.extra_info["resnet50_mxnet_b32"] = round(
        by_key[("resnet-50", "mxnet")][32], 3
    )
    benchmark.extra_info["nmt_tf_b128"] = round(by_key[("nmt", "tensorflow")][128], 3)

    # Observations 4 and 5: CNNs and DS2 ~95%+; LSTM models stay low.
    assert by_key[("resnet-50", "mxnet")][32] > 0.9
    assert by_key[("deep-speech-2", "mxnet")][4] > 0.9
    assert by_key[("transformer", "tensorflow")][2048] > 0.85
    assert by_key[("nmt", "tensorflow")][128] < 0.75
    assert by_key[("sockeye", "mxnet")][64] < 0.75
    # Faster R-CNN reaches ~90% (paper: 89.4% TF / 90.3% MXNet).
    assert data["faster_rcnn"]["mxnet"] > 0.85
