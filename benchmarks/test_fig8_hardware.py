"""Benchmark: regenerate Fig. 8 (Titan Xp vs. Quadro P4000)."""

from conftest import run_once

from repro.experiments import fig8


def test_fig8_hardware_sensitivity(benchmark, suite):
    data = run_once(benchmark, fig8.generate, suite)
    print()
    print(fig8.render(data))
    by_key = {(c.model, c.framework): c for c in data}
    benchmark.extra_info["resnet50_speedup"] = round(
        by_key[("resnet-50", "mxnet")].normalized_throughput, 2
    )
    benchmark.extra_info["sockeye_speedup"] = round(
        by_key[("sockeye", "mxnet")].normalized_throughput, 2
    )

    # Observation 10: Titan Xp throughput up, both utilizations down;
    # CNNs gain ~2x (paper: 2.07/2.03), RNNs much less (paper: 1.01-1.45).
    for comparison in data:
        assert comparison.titan_fp32_utilization < comparison.p4000_fp32_utilization
        assert comparison.titan_gpu_utilization < comparison.p4000_gpu_utilization
    assert by_key[("resnet-50", "mxnet")].normalized_throughput > 1.8
    assert by_key[("inception-v3", "mxnet")].normalized_throughput > 1.8
    assert by_key[("sockeye", "mxnet")].normalized_throughput < 1.5
