"""Benchmark: regenerate Fig. 7 (CPU utilization across the suite)."""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_cpu_utilization(benchmark, suite):
    data = run_once(benchmark, fig7.generate, suite)
    print()
    print(fig7.render(data))
    values = {label: measured for label, measured, _ in data}
    benchmark.extra_info["a3c_percent"] = round(values["A3C (MXNet)"], 2)
    benchmark.extra_info["cntk_resnet_percent"] = round(
        values["ResNet-50 (CNTK)"], 3
    )

    # Observation 9's shape: everything low; A3C the single outlier; CNTK
    # image pipelines nearly free.
    assert len(data) == 14
    assert values["A3C (MXNet)"] == max(values.values())
    assert sum(1 for v in values.values() if v > 15.0) == 1
    assert values["ResNet-50 (CNTK)"] < 0.5
    assert values["Faster R-CNN (TensorFlow)"] > values["Faster R-CNN (MXNet)"]
