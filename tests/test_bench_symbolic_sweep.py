"""The symbolic-sweep bench suite: compile-count guards and the
volatile-field trajectory semantics.

The suite's wall-clock numbers are machine noise; what CI must hold
invariant is the deterministic half: a 7-point sweep performs exactly one
symbolic compile per (model, framework, GPU), a warm sweep performs zero,
the symbolic path never calls the concrete compiler, and every
specialized plan is bit-identical to the concrete compiler's output.
"""

from __future__ import annotations

from repro.bench.store import BenchStore
from repro.bench.symbolic_sweep import (
    SUITE_NAME,
    SWEEP_CASES,
    build_sweep_record,
    gate_doc_for,
    run_symbolic_sweep,
)
from repro.plan.symbolic import shared_plan_sets_clear
from repro.training.session import TrainingSession


class TestSweepGuards:
    def test_every_case_compiles_once_and_matches_bit_for_bit(self):
        results = run_symbolic_sweep(repeats=1, cases=SWEEP_CASES[:2])
        for result in results:
            assert len(result.batches) == 7
            assert result.symbolic_compiles == 1, result.name
            assert result.warm_symbolic_compiles == 0, result.name
            assert result.concrete_compiles_on_symbolic_path == 0, result.name
            assert result.identical, result.name
            assert result.guards_ok
        gate = gate_doc_for(results)
        assert gate == {"passed": True, "failures": []}

    def test_session_sweep_traces_once_and_rides_warm_cache(self):
        """The engine-facing version of the guard: a 7-point sweep through
        a TrainingSession costs one traced compile, and a second session
        in the same process costs zero (the shared trace cache)."""
        shared_plan_sets_clear()
        model, framework, batches = SWEEP_CASES[0]
        session = TrainingSession(model, framework)
        for batch in batches:
            session.compile(batch)
        sset = session._symbolic_set()
        assert sset.compile_count == 1
        assert sset.specialize_count == len(batches)

        warm_session = TrainingSession(model, framework)
        for batch in batches:
            warm_session.compile(batch)
        warm_set = warm_session._symbolic_set()
        assert warm_set is sset  # process-wide shared trace
        assert warm_set.compile_count == 1  # zero new symbolic compiles

    def test_gate_reports_guard_failures_by_name(self):
        results = run_symbolic_sweep(repeats=1, cases=SWEEP_CASES[:1])
        broken = results[0].__class__(
            **{**results[0].__dict__, "symbolic_compiles": 2}
        )
        gate = gate_doc_for([broken])
        assert not gate["passed"]
        assert gate["failures"] == [broken.name]


class TestVolatileTrajectory:
    def test_measured_fields_do_not_fork_the_record(self, tmp_path):
        """Two runs whose wall-clock differs but whose guards agree must
        converge on ONE trajectory record (the volatile digest)."""
        results = run_symbolic_sweep(repeats=1, cases=SWEEP_CASES[:1])
        store = BenchStore(str(tmp_path))
        first = build_sweep_record(results, repeats=1)
        key_a = store.append(SUITE_NAME, first, volatile=("measured",))
        jittered = dict(first)
        jittered["measured"] = {
            name: {field: value * 1.37 for field, value in doc.items()}
            for name, doc in first["measured"].items()
        }
        key_b = store.append(SUITE_NAME, jittered, volatile=("measured",))
        assert key_a == key_b
        records = store.records(SUITE_NAME)
        assert len(records) == 1
        # The replace keeps the latest measurement.
        assert records[0]["measured"] == jittered["measured"]

    def test_guard_change_forks_the_record(self, tmp_path):
        results = run_symbolic_sweep(repeats=1, cases=SWEEP_CASES[:1])
        store = BenchStore(str(tmp_path))
        first = build_sweep_record(results, repeats=1)
        store.append(SUITE_NAME, first, volatile=("measured",))
        forked = dict(first)
        forked["results"] = [
            {**doc, "symbolic_compiles": 2} for doc in first["results"]
        ]
        store.append(SUITE_NAME, forked, volatile=("measured",))
        assert len(store.records(SUITE_NAME)) == 2
