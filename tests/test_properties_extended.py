"""Property-based tests over the execution-model layers added after the
core calibration: timelines, fusion, statistics composition, the energy
model, and session determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks.registry import MXNET, TENSORFLOW
from repro.hardware.devices import QUADRO_P4000
from repro.hardware.energy import energy_profile
from repro.hardware.roofline import RooflineModel
from repro.kernels.base import Kernel, KernelCategory
from repro.optimizations.fusion import fuse_recurrent_layers
from repro.profiling.timeline import build_timeline
from repro.training.session import TrainingSession

_roofline = RooflineModel(QUADRO_P4000)

_kernel_strategy = st.builds(
    Kernel,
    name=st.sampled_from(["k1", "k2", "k3"]),
    category=st.sampled_from(list(KernelCategory)),
    flops=st.floats(min_value=0.0, max_value=1e10),
    bytes_accessed=st.floats(min_value=1.0, max_value=1e9),
    max_compute_efficiency=st.floats(min_value=0.05, max_value=1.0),
    max_memory_efficiency=st.floats(min_value=0.05, max_value=1.0),
    host_sync=st.booleans(),
)


class TestTimelineProperties:
    @given(kernels=st.lists(_kernel_strategy, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_events_never_overlap_and_cover_busy_time(self, kernels):
        timings = _roofline.time_kernels(kernels)
        timeline = build_timeline(timings, TENSORFLOW)
        events = timeline.events
        for before, after in zip(events, events[1:]):
            assert after.start_s >= before.end_s - 1e-12
        assert timeline.busy_s == pytest.approx(
            sum(t.duration_s for t in timings)
        )
        assert timeline.makespan_s >= timeline.busy_s - 1e-12

    @given(kernels=st.lists(_kernel_strategy, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_timeline_agrees_with_session_executor(self, kernels):
        """The timeline facade and the plan executor's replay must produce
        identical makespans/busy times (they are one implementation)."""
        from repro.plan.executor import replay

        timings = _roofline.time_kernels(kernels)
        timeline = build_timeline(timings, MXNET)
        replayed = replay(timings, MXNET)
        assert timeline.makespan_s == replayed.makespan_s
        # busy_s sums per-event extents (bit-compatible with the historic
        # timeline builder) while gpu_busy_s sums raw durations
        # (bit-compatible with the historic session executor) — equal to
        # within float accumulation order.
        assert timeline.busy_s == pytest.approx(replayed.gpu_busy_s)

    @given(kernels=st.lists(_kernel_strategy, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_gaps_and_events_are_disjoint(self, kernels):
        timings = _roofline.time_kernels(kernels)
        timeline = build_timeline(timings, TENSORFLOW)
        intervals = [(e.start_s, e.end_s) for e in timeline.events] + [
            (g.start_s, g.end_s) for g in timeline.gaps
        ]
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-12


class TestFusionProperties:
    @given(
        batch=st.sampled_from((2, 4, 8)),
        seq=st.integers(min_value=1, max_value=12),
        hidden=st.sampled_from((8, 16, 32)),
        layers=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_fusion_preserves_flops_for_any_geometry(self, batch, seq, hidden, layers):
        from repro.models.seq2seq import build_seq2seq

        graph = build_seq2seq(
            batch,
            hidden=hidden,
            seq_len=seq,
            encoder_layers=layers,
            decoder_layers=1,
        )
        fused = fuse_recurrent_layers(graph)
        assert fused.iteration_flops() == pytest.approx(
            graph.iteration_flops(), rel=1e-9
        )
        assert not any(k.host_sync for k in fused.iteration_kernels())


class TestEnergyProperties:
    @given(batch=st.sampled_from((4, 8, 16, 32)))
    @settings(max_examples=8, deadline=None)
    def test_power_between_idle_and_tdp(self, batch):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration(batch)
        energy = energy_profile(profile, QUADRO_P4000)
        assert 0.12 * 105.0 <= energy.gpu_power_watts <= 105.0
        assert energy.energy_per_iteration_j == pytest.approx(
            energy.total_power_watts * profile.iteration_time_s
        )


class TestDeterminism:
    def test_sessions_are_deterministic(self):
        a = TrainingSession("sockeye", "mxnet").run_iteration(32)
        b = TrainingSession("sockeye", "mxnet").run_iteration(32)
        assert a.iteration_time_s == b.iteration_time_s
        assert a.gpu_flops == b.gpu_flops
        assert a.memory.peak_total == b.memory.peak_total

    def test_experiments_are_deterministic(self):
        from repro.experiments import fig10

        first = fig10.generate()
        second = fig10.generate()
        for label in first:
            assert [p.throughput for p in first[label]] == [
                p.throughput for p in second[label]
            ]
