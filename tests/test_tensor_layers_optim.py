"""Unit tests for layers, optimizers, and their interaction."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.layers import (
    BatchNorm1d,
    Conv2d,
    Dense,
    Dropout,
    Embedding,
    LSTMCell,
    Module,
    ReLU,
    Sequential,
)
from repro.tensor.optim import SGD, Adam, Optimizer
from repro.tensor.tensor import Tensor


def _input(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(0, 1, size=shape).astype(np.float32))


class TestModules:
    def test_dense_shapes_and_params(self):
        layer = Dense(8, 4)
        out = layer(_input((2, 8)))
        assert out.shape == (2, 4)
        assert layer.parameter_count() == 8 * 4 + 4

    def test_dense_without_bias(self):
        layer = Dense(8, 4, bias=False)
        assert layer.parameter_count() == 32

    def test_conv_shapes(self):
        layer = Conv2d(3, 6, 3, stride=2, padding=1)
        out = layer(_input((2, 3, 8, 8)))
        assert out.shape == (2, 6, 4, 4)

    def test_sequential_chains(self):
        model = Sequential(Dense(4, 8), ReLU(), Dense(8, 2))
        out = model(_input((3, 4)))
        assert out.shape == (3, 2)
        assert len(model.parameters()) == 4

    def test_parameters_deduplicated(self):
        shared = Dense(4, 4)
        model = Sequential(shared, ReLU(), shared)
        assert len(model.parameters()) == 2

    def test_train_eval_mode_propagates(self):
        model = Sequential(Dense(4, 4), Dropout(0.5))
        model.eval()
        assert not model.modules[1].training
        model.train()
        assert model.modules[1].training

    def test_dropout_module_eval_is_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = _input((100,))
        assert np.array_equal(layer(x).data, x.data)

    def test_batchnorm1d(self):
        layer = BatchNorm1d(4)
        out = layer(_input((32, 4)))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-4)

    def test_embedding_module(self):
        layer = Embedding(10, 4)
        out = layer(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lstm_cell_step(self):
        cell = LSTMCell(8, 16)
        h, c = cell.initial_state(4)
        h, c = cell(_input((4, 8)), (h, c))
        assert h.shape == (4, 16)
        assert c.shape == (4, 16)
        # Cell keeps bounded activations.
        assert np.abs(h.data).max() <= 1.0

    def test_zero_grad_clears_all(self):
        model = Dense(4, 4)
        out = model(_input((2, 4)))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_forward_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        target = np.array([3.0, -2.0], dtype=np.float32)
        parameter = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        optimizer = optimizer_cls([parameter], **kwargs)
        for _ in range(300):
            loss = F.mse(parameter * 1.0, target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return parameter.data, target

    def test_sgd_converges_on_quadratic(self):
        value, target = self._quadratic_step(SGD, learning_rate=0.1)
        assert np.allclose(value, target, atol=1e-2)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_step(SGD, learning_rate=0.05, momentum=0.9)
        assert np.allclose(value, target, atol=1e-2)

    def test_adam_converges(self):
        value, target = self._quadratic_step(Adam, learning_rate=0.1)
        assert np.allclose(value, target, atol=5e-2)

    def test_momentum_buffers_allocated_dynamically(self):
        """The paper's 'dynamic' memory class: optimizer state appears at the
        first step, not at construction."""
        parameter = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        optimizer = SGD([parameter], learning_rate=0.1, momentum=0.9)
        assert optimizer.allocation_log == []
        loss = (parameter * parameter).sum()
        loss.backward()
        optimizer.step()
        assert len(optimizer.allocation_log) == 1
        label, nbytes, phase = optimizer.allocation_log[0]
        assert phase == "dynamic"
        assert nbytes == parameter.data.nbytes

    def test_adam_allocates_two_moments(self):
        parameter = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        optimizer = Adam([parameter])
        (parameter * parameter).sum().backward()
        optimizer.step()
        assert optimizer.allocation_log[0][1] == 2 * parameter.data.nbytes

    def test_weight_decay_shrinks_weights(self):
        parameter = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(2, dtype=np.float32)
        optimizer.step()
        assert np.all(parameter.data < 1.0)

    def test_parameters_without_grad_skipped(self):
        parameter = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        optimizer = SGD([parameter], learning_rate=0.1)
        optimizer.step()  # no grad -> no change
        assert np.allclose(parameter.data, 1.0)

    def test_validation(self):
        parameter = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ValueError):
            SGD([parameter], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([parameter], learning_rate=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam([parameter], learning_rate=0.0)
        with pytest.raises(NotImplementedError):
            Optimizer([parameter])._update(parameter)
