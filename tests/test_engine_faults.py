"""Fault injection for the sweep engine: every failure mode must degrade
to recompute-with-warning — never a wrong result, never a crash.

Covered faults:

- cache entries that are truncated, garbage, schema-mismatched, or
  structurally valid but carrying a malformed point payload;
- a worker process that raises mid-chunk;
- a process pool that cannot be constructed at all;
- ``tbd cache clear`` racing a sweep that is mid-grid.
"""

import json
import multiprocessing
import os

import pytest

import repro.engine.executor as executor_module
from repro.engine import (
    CacheCorruptionWarning,
    EngineWorkerWarning,
    PointSpec,
    ResultCache,
    SweepEngine,
    point_key,
)
from repro.hardware.devices import GTX_580


@pytest.fixture
def cache_root(tmp_path):
    return str(tmp_path / "cache")


def _resnet_key(batch):
    return point_key("resnet-50", "mxnet", batch)


def _single_point_engine(cache_root, jobs=1):
    return SweepEngine(jobs=jobs, cache=cache_root)


class TestCorruptCacheEntries:
    @pytest.fixture
    def warmed(self, cache_root):
        """A cache holding one computed resnet point; returns (engine
        result, entry path)."""
        engine = _single_point_engine(cache_root)
        (point,) = engine.run_grid([PointSpec("resnet-50", "mxnet", 16)])
        return point, engine.cache.path_for(_resnet_key(16))

    @pytest.mark.parametrize(
        "damage",
        [
            b"",  # truncated to nothing
            b'{"schema": 1, "key": "abc", "point"',  # truncated mid-JSON
            b"not json at all \x00\xff",  # garbage bytes
            b'{"schema": 99, "key": "wrong", "point": {}}',  # wrong schema
            b'["a", "list", "not", "a", "dict"]',  # wrong shape
        ],
        ids=["empty", "truncated", "garbage", "wrong-schema", "wrong-shape"],
    )
    def test_damaged_entry_recomputes_with_warning(self, warmed, cache_root, damage):
        reference, path = warmed
        with open(path, "wb") as handle:
            handle.write(damage)
        fresh = _single_point_engine(cache_root)
        with pytest.warns(CacheCorruptionWarning):
            (point,) = fresh.run_grid([PointSpec("resnet-50", "mxnet", 16)])
        assert point == reference
        assert fresh.stats.points_computed == 1
        assert fresh.stats.corrupt_entries == 1

    def test_valid_entry_with_malformed_payload_recomputes(self, warmed, cache_root):
        reference, path = warmed
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["point"] = {"version": 1, "batch_size": 16}  # missing fields
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        fresh = _single_point_engine(cache_root)
        with pytest.warns(CacheCorruptionWarning):
            (point,) = fresh.run_grid([PointSpec("resnet-50", "mxnet", 16)])
        assert point == reference

    def test_damaged_entry_is_rewritten_after_recompute(self, warmed, cache_root):
        reference, path = warmed
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        with pytest.warns(CacheCorruptionWarning):
            _single_point_engine(cache_root).run_grid(
                [PointSpec("resnet-50", "mxnet", 16)]
            )
        # The recompute overwrote the damage: the next run is a clean hit.
        healed = _single_point_engine(cache_root)
        (point,) = healed.run_grid([PointSpec("resnet-50", "mxnet", 16)])
        assert point == reference
        assert healed.stats.cache_hits == 1
        assert healed.stats.points_computed == 0


class TestWorkerFailures:
    GRID = [
        PointSpec("resnet-50", "mxnet", 4),
        PointSpec("resnet-50", "mxnet", 8),
        PointSpec("resnet-50", "mxnet", 16),
        PointSpec("resnet-50", "mxnet", 32),
    ]

    @pytest.fixture
    def reference(self):
        return SweepEngine(jobs=1, cache=None).run_grid(self.GRID)

    def test_worker_exception_degrades_to_inline(self, reference, monkeypatch):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fault injection via inherited monkeypatch needs fork")
        parent_pid = os.getpid()
        original = executor_module._compute_payload

        def fails_in_workers(spec, gpu, cpu, check_memory, sessions=None, symbolic=True):
            if os.getpid() != parent_pid:
                raise RuntimeError("injected worker fault")
            return original(spec, gpu, cpu, check_memory, sessions, symbolic)

        monkeypatch.setattr(executor_module, "_compute_payload", fails_in_workers)
        engine = SweepEngine(jobs=2, cache=None)
        with pytest.warns(EngineWorkerWarning, match="injected worker fault"):
            points = engine.run_grid(self.GRID)
        assert points == reference
        assert engine.stats.worker_failures >= 1
        assert engine.stats.points_computed == len(self.GRID)

    def test_pool_unavailable_degrades_to_inline(self, reference, monkeypatch):
        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool in this environment")

        monkeypatch.setattr(
            executor_module.concurrent.futures, "ProcessPoolExecutor", NoPool
        )
        engine = SweepEngine(jobs=4, cache=None)
        with pytest.warns(EngineWorkerWarning, match="process pool unavailable"):
            points = engine.run_grid(self.GRID)
        assert points == reference
        assert engine.stats.worker_failures == 1

    def test_failed_chunk_results_still_cached(self, cache_root, monkeypatch):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fault injection via inherited monkeypatch needs fork")
        parent_pid = os.getpid()
        original = executor_module._compute_payload

        def fails_in_workers(spec, gpu, cpu, check_memory, sessions=None, symbolic=True):
            if os.getpid() != parent_pid:
                raise RuntimeError("injected worker fault")
            return original(spec, gpu, cpu, check_memory, sessions, symbolic)

        monkeypatch.setattr(executor_module, "_compute_payload", fails_in_workers)
        engine = SweepEngine(jobs=2, cache=cache_root)
        with pytest.warns(EngineWorkerWarning):
            points = engine.run_grid(self.GRID)
        warm = SweepEngine(jobs=1, cache=cache_root)
        assert warm.run_grid(self.GRID) == points
        assert warm.stats.points_computed == 0


class TestClearMidGrid:
    GRID = [PointSpec("resnet-50", "mxnet", batch) for batch in (4, 8, 16, 32)]

    class ClearingCache(ResultCache):
        """Simulates ``tbd cache clear`` landing while a sweep is between
        points: the whole store vanishes after the N-th lookup."""

        def __init__(self, root, clear_after: int):
            super().__init__(root)
            self._lookups = 0
            self._clear_after = clear_after

        def load(self, key):
            self._lookups += 1
            if self._lookups == self._clear_after:
                self.clear()
            return super().load(key)

    def test_clear_between_points_recomputes_silently(self, cache_root):
        reference = SweepEngine(jobs=1, cache=cache_root).run_grid(self.GRID)

        racing = SweepEngine(
            jobs=1, cache=self.ClearingCache(cache_root, clear_after=2)
        )
        points = racing.run_grid(self.GRID)
        assert points == reference
        # Lookups 2..4 found a cleared store and recomputed; the results
        # were re-stored, so the cache converges back toward warm.  Only
        # point 1 — hit before the clear wiped its entry — is still cold.
        assert racing.stats.points_computed == 3
        healed = SweepEngine(jobs=1, cache=cache_root)
        assert healed.run_grid(self.GRID) == reference
        assert healed.stats.points_computed == 1
        assert healed.stats.cache_hits == 3

    def test_store_survives_shard_removal_race(self, cache_root):
        cache = ResultCache(cache_root)
        key = _resnet_key(4)
        cache.store(key, {"version": 1, "batch_size": 4, "oom": True, "metrics": None})
        assert cache.clear() == 1
        # Shard directories are gone; a fresh store must recreate them.
        path = cache.store(
            key, {"version": 1, "batch_size": 4, "oom": True, "metrics": None}
        )
        assert os.path.exists(path)

    def test_clear_on_missing_root_is_harmless(self, tmp_path):
        cache = ResultCache(str(tmp_path / "never-created"))
        assert cache.clear() == 0
        assert cache.stats().entries == 0


class TestOOMPointsRoundTrip:
    def test_oom_points_cache_and_rehydrate(self, cache_root):
        cold = SweepEngine(jobs=2, cache=cache_root, gpu=GTX_580)
        cold_points = cold.sweep("resnet-50", "tensorflow")
        assert any(point.oom for point in cold_points)
        assert all(point.metrics is None for point in cold_points if point.oom)

        warm = SweepEngine(jobs=1, cache=cache_root, gpu=GTX_580)
        warm_points = warm.sweep("resnet-50", "tensorflow")
        assert warm_points == cold_points
        assert warm.stats.points_computed == 0, "OOM points must be memoized too"

    def test_oom_keys_are_device_specific(self, cache_root):
        """A GTX 580 OOM entry must never shadow a P4000 result."""
        SweepEngine(jobs=1, cache=cache_root, gpu=GTX_580).sweep(
            "resnet-50", "tensorflow", (64,)
        )
        p4000 = SweepEngine(jobs=1, cache=cache_root)
        (point,) = p4000.sweep("resnet-50", "tensorflow", (64,))
        assert not point.oom and point.metrics is not None
        assert p4000.stats.cache_hits == 0
