"""Behavioural edge coverage for the suite, sweeps and metric records —
the paths the headline tests don't reach."""

import pytest

from repro.core.metrics import IterationMetrics
from repro.core.suite import SweepPoint, TBDSuite, standard_suite
from repro.experiments.common import SWEEP_PANELS, SweepSeries, run_sweeps
from repro.hardware.devices import GTX_580, TITAN_XP
from repro.hardware.memory import OutOfMemoryError
from repro.training.session import TrainingSession


class TestSuiteEdges:
    def test_sweep_with_custom_batches(self, suite):
        points = suite.sweep("wgan", "tensorflow", batch_sizes=(8, 24))
        assert [p.batch_size for p in points] == [8, 24]
        assert all(not p.oom for p in points)

    def test_sweep_point_record(self):
        point = SweepPoint(batch_size=8, oom=True)
        assert point.metrics is None

    def test_sweep_point_rejects_oom_with_metrics(self, resnet_mxnet_32):
        metrics = IterationMetrics.from_profile(resnet_mxnet_32)
        with pytest.raises(ValueError, match="cannot carry metrics"):
            SweepPoint(batch_size=32, metrics=metrics, oom=True)

    def test_sweep_point_rejects_measured_without_metrics(self):
        with pytest.raises(ValueError, match="has no metrics"):
            SweepPoint(batch_size=32)

    def test_oom_sweep_points_are_explicit(self):
        """Regression: the OOM path must yield metrics-free, oom-flagged
        points (not half-populated records) and keep the sweep complete."""
        old = TBDSuite(gpu=GTX_580)
        points = old.sweep("resnet-50", "tensorflow")
        assert [p.batch_size for p in points] == [4, 8, 16, 32, 64]
        oom_points = [p for p in points if p.oom]
        assert oom_points, "expected GTX 580 to run out of memory in-sweep"
        assert all(p.metrics is None for p in oom_points)
        assert all(p.metrics is not None for p in points if not p.oom)

    def test_run_propagates_oom(self, suite):
        with pytest.raises(OutOfMemoryError):
            suite.run("deep-speech-2", "mxnet", 16)

    def test_unknown_framework_for_model(self, suite):
        with pytest.raises(ValueError, match="no CNTK implementation"):
            suite.run("nmt", "cntk")

    def test_model_accessor_uses_aliases(self, suite):
        assert suite.model("resnet").display_name == "ResNet-50"

    def test_gtx580_suite_hits_memory_walls_early(self):
        old = TBDSuite(gpu=GTX_580)
        points = old.sweep("resnet-50", "mxnet")
        assert any(point.oom for point in points)

    def test_throughput_scales_down_on_older_hardware(self, suite):
        old = TBDSuite(gpu=GTX_580)
        # WGAN at batch 4 fits even 1.5 GB.
        slow = old.run("wgan", "tensorflow", 4).throughput
        fast = suite.run("wgan", "tensorflow", 4).throughput
        assert fast > 1.5 * slow

    def test_compare_frameworks_returns_all_three_for_images(self, suite):
        results = suite.compare_frameworks("inception-v3", 16)
        throughputs = {key: m.throughput for key, m in results.items()}
        assert throughputs["mxnet"] > throughputs["tensorflow"]  # Obs. 3

    def test_titan_suite_sweeps(self):
        xp = TBDSuite(gpu=TITAN_XP)
        points = xp.sweep("resnet-50", "mxnet", (16, 32))
        values = [p.metrics.throughput for p in points]
        assert values == sorted(values)


class TestSweepHelpers:
    def test_panel_list_matches_figures(self):
        models = [model for model, _ in SWEEP_PANELS]
        assert models == [
            "resnet-50",
            "inception-v3",
            "nmt",
            "sockeye",
            "transformer",
            "wgan",
            "deep-speech-2",
            "a3c",
        ]

    def test_series_finite_filters_oom(self):
        series = SweepSeries(
            model="m",
            framework="f",
            batch_sizes=(8, 16, 32),
            values=(1.0, None, 3.0),
        )
        assert series.finite() == [(8, 1.0), (32, 3.0)]

    def test_run_sweeps_metric_selection(self, suite):
        series = run_sweeps("gpu_utilization", suite)
        for entry in series:
            for _, value in entry.finite():
                assert 0.0 < value <= 1.0

    def test_sockeye_sweep_has_no_oom_within_paper_range(self, suite):
        series = {
            (s.model, s.framework): s for s in run_sweeps("throughput", suite)
        }
        sockeye = series[("sockeye", "mxnet")]
        assert None not in sockeye.values  # the paper's sweep stops at 64


class TestMetricRecords:
    def test_format_row_contains_all_metrics(self):
        profile = TrainingSession("a3c", "mxnet").run_iteration(64)
        record = IterationMetrics.from_profile(profile, "samples/s")
        row = record.format_row()
        for fragment in ("A3C", "MXNet", "gpu=", "fp32=", "cpu="):
            assert fragment in row

    def test_units_preserved(self, suite):
        ds2 = suite.run("deep-speech-2", "mxnet", 2)
        assert ds2.throughput_unit == "audio seconds/s"
        transformer = suite.run("transformer", "tensorflow", 256)
        assert transformer.throughput_unit == "tokens/s"

    def test_iteration_time_consistency(self, suite):
        metrics = suite.run("wgan", "tensorflow", 16)
        assert metrics.throughput == pytest.approx(
            16.0 / metrics.iteration_time_s, rel=1e-6
        )


class TestSessionEdges:
    def test_simulate_graph_matches_run_iteration(self):
        session = TrainingSession("inception-v3", "cntk")
        graph = session.spec.build(16)
        direct = session.simulate_graph(graph)
        full = session.run_iteration(16)
        assert direct.iteration_time_s == pytest.approx(full.iteration_time_s)
        assert direct.memory is None and full.memory is not None

    def test_display_name_override(self):
        session = TrainingSession("resnet-50", "mxnet")
        graph = session.spec.build(8)
        profile = session.simulate_graph(graph, display_name="custom")
        assert profile.model == "custom"

    def test_kernel_stream_starts_with_h2d_copy(self):
        session = TrainingSession("resnet-50", "mxnet")
        kernels = session._iteration_kernels(session.spec.build(8))
        assert "HtoD" in kernels[0].name

    def test_update_kernels_one_per_weighted_layer(self):
        session = TrainingSession("a3c", "mxnet")
        graph = session.spec.build(8)
        kernels = session._iteration_kernels(graph)
        updates = [k for k in kernels if "sgd" in k.name]
        weighted = [l for l in graph.layers if l.weight_elements > 0]
        assert len(updates) == len(weighted)
