"""Tests binding the paper-metadata module to the rest of the repository."""

import pytest

from repro.core import paper
from repro.core.observations import ALL_OBSERVATIONS
from repro.experiments import ALL_EXPERIMENTS


class TestObservationTexts:
    def test_thirteen_observations_quoted(self):
        assert sorted(paper.OBSERVATIONS) == list(range(1, 14))

    def test_every_check_has_a_quote(self):
        assert len(ALL_OBSERVATIONS) == len(paper.OBSERVATIONS)

    def test_quotes_are_nonempty_and_sectioned(self):
        for record in paper.OBSERVATIONS.values():
            assert len(record.quote) > 20
            assert record.section.startswith("4")

    def test_lookup(self):
        assert "feature maps" in paper.observation(11).quote.lower()
        with pytest.raises(KeyError):
            paper.observation(14)


class TestExhibitAnchors:
    def test_every_experiment_has_an_anchor(self):
        assert set(paper.EXHIBITS) == set(ALL_EXPERIMENTS)

    def test_lookup(self):
        anchor = paper.exhibit("fig9")
        assert anchor.section == "4.4"
        with pytest.raises(KeyError):
            paper.exhibit("fig99")


class TestCitation:
    def test_citation_fields(self):
        text = paper.citation()
        assert "Zhu" in text
        assert "IISWC 2018" in text
        assert "1803.06905" in text
