"""Unit tests for NN ops: conv/pool/batchnorm/softmax/losses with numeric
gradient verification."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def _randn(shape, seed=0):
    return np.random.default_rng(seed).normal(0, 1, size=shape).astype(np.float32)


class TestConv2d:
    def test_matches_manual_convolution(self):
        x = Tensor(_randn((1, 1, 4, 4)))
        w = Tensor(_randn((1, 1, 3, 3), seed=1))
        out = F.conv2d(x, w, stride=1, padding=0)
        expected = np.zeros((2, 2), dtype=np.float32)
        for i in range(2):
            for j in range(2):
                expected[i, j] = (
                    x.data[0, 0, i : i + 3, j : j + 3] * w.data[0, 0]
                ).sum()
        assert np.allclose(out.data[0, 0], expected, atol=1e-5)

    def test_output_shape_with_stride_and_padding(self):
        x = Tensor(_randn((2, 3, 8, 8)))
        w = Tensor(_randn((5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_gradients_numerically(self):
        x = Tensor(_randn((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(_randn((3, 2, 3, 3), seed=1), requires_grad=True)
        b = Tensor(_randn((3,), seed=2), requires_grad=True)

        def loss():
            return float((F.conv2d(x, w, b, stride=1, padding=1).data ** 2).sum())

        out = F.conv2d(x, w, b, stride=1, padding=1)
        (out * out).sum().backward()
        eps = 1e-3
        for tensor, index in ((x, (0, 1, 2, 2)), (w, (1, 0, 1, 1)), (b, (2,))):
            original = tensor.data[index]
            tensor.data[index] = original + eps
            hi = loss()
            tensor.data[index] = original - eps
            lo = loss()
            tensor.data[index] = original
            numeric = (hi - lo) / (2 * eps)
            assert tensor.grad[index] == pytest.approx(numeric, rel=2e-2, abs=2e-2)

    def test_channel_mismatch_rejected(self):
        x = Tensor(_randn((1, 2, 4, 4)))
        w = Tensor(_randn((1, 3, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(x, w)

    def test_rectangular_kernel_rejected(self):
        x = Tensor(_randn((1, 1, 4, 4)))
        w = Tensor(_randn((1, 1, 1, 3)))
        with pytest.raises(ValueError, match="square"):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(data), kernel=2)
        assert np.array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_flows_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.array_equal(x.grad[0, 0], expected)

    def test_overlapping_windows_unsupported(self):
        with pytest.raises(NotImplementedError):
            F.max_pool2d(Tensor(_randn((1, 1, 4, 4))), kernel=3, stride=1)

    def test_global_average_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        out = F.avg_pool2d_global(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, 1.0)


class TestNormalization:
    def test_batch_norm_normalizes(self):
        x = Tensor(_randn((64, 8)) * 5.0 + 3.0)
        gamma = Tensor(np.ones(8, dtype=np.float32))
        beta = Tensor(np.zeros(8, dtype=np.float32))
        out = F.batch_norm(x, gamma, beta)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_batch_norm_gradients_flow(self):
        x = Tensor(_randn((8, 4)), requires_grad=True)
        gamma = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        (F.batch_norm(x, gamma, beta) ** 2.0).sum().backward()
        assert x.grad is not None
        assert gamma.grad is not None
        assert beta.grad is not None


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(_randn((5, 7)) * 10.0)
        probs = F.softmax(logits)
        assert np.allclose(probs.data.sum(axis=1), 1.0, atol=1e-5)

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0]], dtype=np.float32))
        out = F.log_softmax(logits)
        assert np.isfinite(out.data).all()

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[20.0, 0.0], [0.0, 20.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10.0), rel=1e-4)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Gradient pushes the target logit up (negative grad) and others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3))

    def test_mse(self):
        prediction = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        loss = F.mse(prediction, np.array([0.0, 0.0], dtype=np.float32))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(prediction.grad, [1.0, 2.0])

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        assert F.accuracy(logits, np.array([0, 1])) == 1.0
        assert F.accuracy(logits, np.array([1, 1])) == 0.5


class TestEmbeddingAndDropout:
    def test_embedding_gathers_rows(self):
        table = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = F.embedding(table, np.array([1, 3]))
        assert np.array_equal(out.data, table.data[[1, 3]])

    def test_embedding_scatter_add_gradient(self):
        table = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)
        assert np.allclose(table.grad[2], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_dropout_inverted_scaling(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < (out.data > 0).mean() < 0.65

    def test_dropout_identity_in_eval(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10, dtype=np.float32))
        assert F.dropout(x, 0.5, rng, training=False) is x

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, np.random.default_rng(0))
