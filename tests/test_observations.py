"""Integration: the paper's 13 observations all hold on the simulator.

This is the repository's headline correctness gate — every numbered finding
in Section 4 of the paper must emerge from the simulated system, not be
hard-coded into it.
"""

import pytest

from repro.core import observations as obs
from repro.core.suite import standard_suite


@pytest.fixture(scope="module")
def suite():
    return standard_suite()


@pytest.fixture(scope="module")
def results(suite):
    return {result.number: result for result in obs.verify_all(suite)}


def test_all_thirteen_observations_present(results):
    assert sorted(results) == list(range(1, 14))


@pytest.mark.parametrize("number", range(1, 14))
def test_observation_holds(results, number):
    result = results[number]
    assert result.holds, f"Observation {number} failed: {result.evidence}"


def test_observation_titles_are_descriptive(results):
    for result in results.values():
        assert len(result.title) > 10
        assert result.evidence


def test_observation_11_range_matches_paper(results):
    """The paper reports feature maps at 62-89% of footprint; our span must
    sit inside a slightly widened band."""
    evidence = results[11].evidence
    # evidence like "feature-map share spans 62%-89%"
    import re

    numbers = [int(n) for n in re.findall(r"(\d+)%", evidence)]
    low, high = min(numbers), max(numbers)
    assert 55 <= low <= 70
    assert 80 <= high <= 93
