"""Unit tests for the profiling toolchain (kernel traces, CPU sampler,
memory profiler, stable-phase sampling)."""

import numpy as np
import pytest

from repro.hardware.devices import QUADRO_P4000
from repro.hardware.memory import AllocationTag
from repro.profiling.cpu_sampler import CPUSampler
from repro.profiling.kernel_trace import KernelTrace, trace_from_profile
from repro.profiling.memory_profiler import MemoryProfiler
from repro.profiling.sampling import (
    IterationTimeline,
    SampleWindow,
    StablePhaseSampler,
)
from repro.training.session import TrainingSession


class TestKernelTrace:
    def test_totals(self, resnet_mxnet_32):
        trace = trace_from_profile(resnet_mxnet_32)
        assert trace.launch_count == len(resnet_mxnet_32.kernel_timings)
        assert trace.total_flops == pytest.approx(resnet_mxnet_32.gpu_flops)
        assert 0 < trace.average_fp32_utilization < 1

    def test_by_name_aggregates_launches(self, resnet_mxnet_32):
        stats = trace_from_profile(resnet_mxnet_32).by_name()
        bn = stats["cudnn::detail::bn_bw_1C11_kernel_new"]
        assert bn.launches > 40  # one per BN layer
        assert bn.mean_time_s > 0

    def test_table_5_6_query(self, resnet_mxnet_32):
        trace = trace_from_profile(resnet_mxnet_32)
        rows = trace.longest_low_utilization_kernels(5)
        assert len(rows) == 5
        average = trace.average_fp32_utilization
        assert all(row.fp32_utilization < average for row in rows)
        # Duration shares sorted descending.
        shares = [row.duration_share for row in rows]
        assert shares == sorted(shares, reverse=True)
        # Batch-normalization kernels lead the list (Obs. 8).
        assert any("bn_" in row.kernel_name for row in rows[:2])

    def test_by_category(self, resnet_mxnet_32):
        totals = trace_from_profile(resnet_mxnet_32).by_category()
        assert sum(totals.values()) == pytest.approx(
            trace_from_profile(resnet_mxnet_32).total_time_s
        )

    def test_memory_bound_fraction_in_range(self, resnet_mxnet_32):
        fraction = trace_from_profile(resnet_mxnet_32).memory_bound_time_fraction()
        assert 0.0 < fraction < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelTrace([], peak_fp32_flops=0.0)
        trace = KernelTrace([], peak_fp32_flops=1.0)
        assert trace.average_fp32_utilization == 0.0
        with pytest.raises(ValueError):
            trace.longest_low_utilization_kernels(0)


class TestCPUSampler:
    def test_sample_matches_session_utilization(self):
        session = TrainingSession("resnet-50", "mxnet")
        profile = session.run_iteration(32)
        sample = CPUSampler(session).sample(32)
        assert sample.utilization == pytest.approx(profile.cpu_utilization, rel=0.05)

    def test_hotspots_ranked(self):
        session = TrainingSession("a3c", "mxnet")
        sample = CPUSampler(session).sample(128)
        hotspots = sample.hotspots()
        assert hotspots[0][0] == "environment simulation"  # A3C's emulator
        values = [v for _, v in hotspots]
        assert values == sorted(values, reverse=True)

    def test_rnn_sync_time_visible(self):
        session = TrainingSession("nmt", "tensorflow")
        sample = CPUSampler(session).sample(64)
        assert sample.sync_s > 0

    def test_cnn_has_no_sync_time(self):
        session = TrainingSession("resnet-50", "tensorflow")
        sample = CPUSampler(session).sample(16)
        assert sample.sync_s == 0


class TestMemoryProfiler:
    def test_profile_fields(self):
        profile = MemoryProfiler().profile("resnet-50", "mxnet", 16)
        assert profile.model == "ResNet-50"
        assert profile.total_gib > 1.0
        assert 0.5 < profile.feature_map_fraction < 0.95

    def test_breakdown_keys(self):
        profile = MemoryProfiler().profile("resnet-50", "tensorflow", 16)
        breakdown = profile.breakdown()
        assert set(breakdown) == {
            "feature maps",
            "weights",
            "weight gradients",
            "dynamic",
            "workspace",
        }

    def test_sweep_stops_at_oom(self):
        profiles = MemoryProfiler().sweep("sockeye", "mxnet", (16, 32, 64, 128, 256))
        assert [p.batch_size for p in profiles] == [16, 32, 64]

    def test_format_row_mentions_model(self):
        profile = MemoryProfiler().profile("wgan", "tensorflow", 16)
        assert "WGAN" in profile.format_row()


class TestStablePhaseSampling:
    def test_timeline_shape(self):
        timeline = IterationTimeline(stable_iteration_s=0.1)
        durations = timeline.durations(400)
        # Warm-up is much slower than stable phase.
        assert durations[0] > 5 * durations[-1]
        # Auto-tuning decays toward stability.
        assert durations[10] > durations[150]

    def test_detect_stable_start_after_warmup(self):
        timeline = IterationTimeline(
            stable_iteration_s=0.1, warmup_iterations=3, autotune_iterations=100
        )
        sampler = StablePhaseSampler()
        start = sampler.detect_stable_start(timeline.durations(600))
        assert 30 <= start <= 200

    def test_unstable_series_rejected(self):
        rng = np.random.default_rng(0)
        noisy = rng.uniform(0.1, 10.0, size=300)
        with pytest.raises(ValueError, match="never reached"):
            StablePhaseSampler().detect_stable_start(noisy)

    def test_window_clamped_to_paper_range(self):
        timeline = IterationTimeline(stable_iteration_s=0.1)
        durations = timeline.durations(3000)
        window = StablePhaseSampler().choose_window(durations, sample_iterations=5000)
        assert window.length <= 1000
        small = StablePhaseSampler().choose_window(durations, sample_iterations=10)
        assert small.length >= 50

    def test_stable_throughput_close_to_truth(self):
        timeline = IterationTimeline(stable_iteration_s=0.1, jitter=0.01)
        durations = timeline.durations(1000)
        throughput = StablePhaseSampler().stable_throughput(durations, 32.0)
        assert throughput == pytest.approx(320.0, rel=0.05)

    def test_naive_average_overestimates_iteration_time(self):
        """Why warm-up exclusion matters: averaging the whole run
        underestimates throughput."""
        timeline = IterationTimeline(stable_iteration_s=0.1)
        durations = timeline.durations(500)
        naive = 32.0 / durations.mean()
        stable = StablePhaseSampler().stable_throughput(durations, 32.0)
        assert stable > 1.05 * naive

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            StablePhaseSampler(window=50).detect_stable_start(np.ones(60))

    def test_sample_window_validation(self):
        with pytest.raises(ValueError):
            SampleWindow(start_iteration=5, end_iteration=5)

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            StablePhaseSampler(window=1)
        with pytest.raises(ValueError):
            StablePhaseSampler(cv_threshold=0.0)
        with pytest.raises(ValueError):
            IterationTimeline(stable_iteration_s=0.1).durations(0)
