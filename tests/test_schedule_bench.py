"""The ``schedule`` bench suite and its CLI surfaces.

The suite is fully deterministic (no wall-clock anywhere), so its gate
holds the adaptive-vs-fixed *comparison* itself, and two runs must
digest-dedup onto one trajectory record.  The CLI half covers
``tbd schedule show|compare``, ``tbd sweep --schedule``, and
``tbd bench run|gate|history schedule``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.bench.schedule_suite import (
    ADAPTIVE_SPEC,
    SCHEDULE_CASES,
    SUITE_NAME,
    build_schedule_record,
    gate_doc_for,
    run_and_record,
    run_schedule_suite,
)
from repro.bench.store import BenchStore
from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestScheduleSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return run_schedule_suite()

    def test_covers_two_gpus_with_and_without_faults(self, results):
        cases = {(r.gpu, r.fault_label) for r in results}
        assert cases == {
            ("p4000", "none"),
            ("p4000", "crash+straggler"),
            ("titan xp", "none"),
            ("titan xp", "crash+straggler"),
        }

    def test_every_guard_holds_on_every_case(self, results):
        for result in results:
            assert result.adaptive_beats_fixed, result.name
            assert result.conservation_ok, result.name
            assert result.fixed_equals_elastic, result.name
            assert result.guards_ok
            assert result.speedup > 1.0
            assert result.final_batch == 64
        assert gate_doc_for(results) == {"passed": True, "failures": []}

    def test_faulted_cases_lose_a_machine_both_ways(self, results):
        for result in results:
            expected = 1 if result.fault_label == "crash+straggler" else 2
            assert result.fixed_final_machines == expected, result.name
            assert result.adaptive_final_machines == expected, result.name

    def test_gate_reports_guard_failures_by_name(self, results):
        broken = dataclasses.replace(results[0], adaptive_beats_fixed=False)
        gate = gate_doc_for([broken] + list(results[1:]))
        assert not gate["passed"]
        assert gate["failures"] == [broken.name]

    def test_two_runs_dedup_onto_one_trajectory_record(self, tmp_path):
        _, gate_a, path_a = run_and_record(str(tmp_path))
        _, gate_b, path_b = run_and_record(str(tmp_path))
        assert gate_a["passed"] and gate_b["passed"]
        assert path_a == path_b
        records = BenchStore(str(tmp_path)).records(SUITE_NAME)
        assert len(records) == 1
        record = records[0]
        assert record["suite"] == SUITE_NAME
        assert record["schedule"] == ADAPTIVE_SPEC
        assert len(record["results"]) == len(SCHEDULE_CASES)

    def test_record_round_trips_through_json(self):
        results = run_schedule_suite(cases=SCHEDULE_CASES[:1])
        record = build_schedule_record(results)
        assert json.loads(json.dumps(record)) == record


class TestScheduleCli:
    def test_show_prints_the_segment_tiling(self, capsys):
        code, out = run_cli(
            capsys, "schedule", "show", "gns:ceiling=64,every=50", "resnet-50"
        )
        assert code == 0
        assert "canonical: gns:ceiling=64,every=50" in out
        assert "seg 0: b=32" in out
        assert "seg 1: b=64" in out

    def test_show_rejects_bad_spec(self, capsys):
        code, out = run_cli(capsys, "schedule", "show", "bogus", "resnet-50")
        assert code == 2
        assert "bad schedule spec" in out

    def test_show_rejects_model_without_a_curve(self, capsys):
        code, out = run_cli(
            capsys, "schedule", "show", "gns:ceiling=64", "deep-speech-2"
        )
        assert code == 2
        assert "cannot integrate" in out

    def test_compare_prints_the_speedup(self, capsys):
        code, out = run_cli(
            capsys, "schedule", "compare", "gns:ceiling=64,every=50", "resnet-50"
        )
        assert code == 0
        assert "speedup vs fixed" in out

    def test_compare_with_faults(self, capsys):
        code, out = run_cli(
            capsys,
            "schedule",
            "compare",
            "gns:ceiling=64,every=50",
            "resnet-50",
            "--faults",
            "crash=1@30; straggler=0x1.5@10:40",
        )
        assert code == 0
        assert "speedup vs fixed" in out

    def test_compare_needs_an_adaptive_schedule(self, capsys):
        code, out = run_cli(capsys, "schedule", "compare", "fixed", "resnet-50")
        assert code == 2
        assert "adaptive" in out

    def test_sweep_accepts_a_schedule(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep",
            "resnet-50",
            "-f",
            "mxnet",
            "--schedule",
            "gns:ceiling=64,every=50",
        )
        assert code == 0
        assert "ResNet-50" in out

    def test_sweep_rejects_bad_schedule(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "resnet-50", "-f", "mxnet", "--schedule", "nope"
        )
        assert code == 2


class TestBenchCli:
    def test_bench_run_and_gate_and_history(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench", "run", SUITE_NAME, "--dir", str(tmp_path)
        )
        assert code == 0
        assert "resnet-50/p4000/faults=none" in out
        assert "x1." in out

        code, out = run_cli(
            capsys, "bench", "gate", SUITE_NAME, "--dir", str(tmp_path)
        )
        assert code == 0

        code, out = run_cli(
            capsys, "bench", "history", SUITE_NAME, "--dir", str(tmp_path)
        )
        assert code == 0
        assert "adaptive" in out

    def test_bench_list_mentions_the_suite(self, capsys):
        code, out = run_cli(capsys, "bench", "history", "--list")
        assert code == 0
        assert SUITE_NAME in out
