"""API-quality gates: every public item documented, catalogs consistent,
the public surface importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.core",
    "repro.hardware",
    "repro.kernels",
    "repro.graph",
    "repro.frameworks",
    "repro.models",
    "repro.data",
    "repro.training",
    "repro.distributed",
    "repro.profiling",
    "repro.optimizations",
    "repro.experiments",
    "repro.tensor",
]


def _all_modules():
    modules = []
    for package_name in _PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                modules.append(
                    importlib.import_module(f"{package_name}.{info.name}")
                )
    return {module.__name__: module for module in modules}.values()


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__ for module in _all_modules() if not module.__doc__
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        undocumented = []
        for module in _all_modules():
            for class_name, cls in vars(module).items():
                if class_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if getattr(cls, "__module__", None) != module.__name__:
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        undocumented.append(
                            f"{module.__name__}.{class_name}.{method_name}"
                        )
        assert not undocumented, f"undocumented methods: {undocumented}"


class TestPublicSurface:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_package_all_lists_resolve(self):
        for package_name in _PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", ()):
                assert hasattr(package, name), f"{package_name}.{name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestCatalogConsistency:
    def test_model_frameworks_all_resolvable(self):
        from repro.frameworks.registry import get_framework
        from repro.models.registry import extension_catalog, model_catalog

        for spec in list(model_catalog().values()) + list(extension_catalog().values()):
            for key in spec.frameworks:
                get_framework(key)

    def test_model_datasets_all_resolvable(self):
        from repro.data.registry import get_dataset
        from repro.models.registry import extension_catalog, model_catalog

        for spec in list(model_catalog().values()) + list(extension_catalog().values()):
            get_dataset(spec.dataset)

    def test_fig2_models_exist_in_registry(self):
        from repro.models.registry import get_model
        from repro.training.convergence import FIG2_MODELS

        for key in FIG2_MODELS:
            get_model(key)

    def test_hyperparameter_defaults_cover_the_suite(self):
        from repro.models.registry import model_keys
        from repro.training.hyperparams import defaults_for

        for key in model_keys():
            defaults_for(key)
