"""Unit tests for layer -> kernel lowering."""

import pytest

from repro.graph import lowering
from repro.kernels.base import KernelCategory
from repro.kernels.conv import ConvShape


class TestConvLayer:
    def test_training_has_three_conv_kernels(self):
        shape = ConvShape(2, 8, 16, 14, 14, 3, 3, padding=1)
        layer = lowering.conv_layer("c", shape)
        assert len(layer.forward_kernels) == 1
        assert len(layer.backward_kernels) == 2  # wgrad + dgrad

    def test_first_layer_skips_dgrad(self):
        shape = ConvShape(2, 3, 16, 14, 14, 3, 3, padding=1)
        layer = lowering.conv_layer("c", shape, first_layer=True)
        assert len(layer.backward_kernels) == 1

    def test_bias_adds_kernels_and_weights(self):
        shape = ConvShape(2, 8, 16, 14, 14, 1, 1)
        plain = lowering.conv_layer("a", shape)
        biased = lowering.conv_layer("b", shape, bias=True)
        assert biased.weight_elements == plain.weight_elements + 16
        assert biased.kernel_count == plain.kernel_count + 2

    def test_workspace_recorded(self):
        shape = ConvShape(2, 8, 16, 14, 14, 3, 3, padding=1)
        assert lowering.conv_layer("c", shape).workspace_bytes > 0


class TestSimpleLayers:
    def test_batchnorm_has_two_params_per_channel(self):
        layer = lowering.batchnorm_layer("bn", 1000, 16)
        assert layer.weight_elements == 32

    def test_activation_is_inplace(self):
        assert lowering.activation_layer("r", 100).inplace

    def test_residual_add_is_inplace(self):
        assert lowering.residual_add_layer("add", 100).inplace

    def test_dropout_stashes_mask(self):
        layer = lowering.dropout_layer("d", 100)
        assert layer.output_elements == 200

    def test_dense_layer_kernels(self):
        layer = lowering.dense_layer("fc", 8, 128, 10)
        assert layer.weight_elements == 128 * 10 + 10
        assert len(layer.backward_kernels) == 2

    def test_embedding_weights(self):
        layer = lowering.embedding_layer("emb", 100, 1000, 64)
        assert layer.weight_elements == 64000
        assert layer.output_elements == 6400


class TestRecurrentLayers:
    def test_lstm_kernel_count_scales_with_sequence(self):
        layer = lowering.lstm_layer("l", batch=4, seq_len=10, input_size=32, hidden=32)
        # 2 forward kernels and 3 backward kernels per step.
        assert len(layer.forward_kernels) == 20
        assert len(layer.backward_kernels) == 30

    def test_bidirectional_doubles_everything(self):
        uni = lowering.lstm_layer("u", 4, 10, 32, 32)
        bi = lowering.lstm_layer("b", 4, 10, 32, 32, bidirectional=True)
        assert len(bi.forward_kernels) == 2 * len(uni.forward_kernels)
        assert bi.weight_elements == 2 * uni.weight_elements

    def test_lstm_weight_count(self):
        layer = lowering.lstm_layer("l", 1, 1, 32, 64)
        assert layer.weight_elements == (32 + 64) * 4 * 64 + 4 * 64

    def test_lstm_steps_host_sync(self):
        layer = lowering.lstm_layer("l", 4, 5, 32, 32)
        fw_syncs = sum(1 for k in layer.forward_kernels if k.host_sync)
        bw_syncs = sum(1 for k in layer.backward_kernels if k.host_sync)
        assert fw_syncs == 5
        assert bw_syncs == 5

    def test_vanilla_rnn_has_no_host_sync(self):
        layer = lowering.vanilla_rnn_layer("r", 4, 5, 32, 32)
        assert not any(k.host_sync for k in layer.forward_kernels)

    def test_gru_cheaper_than_lstm(self):
        lstm = lowering.lstm_layer("l", 4, 10, 32, 32)
        gru = lowering.gru_layer("g", 4, 10, 32, 32)
        assert gru.flops < lstm.flops

    def test_zero_sequence_rejected(self):
        with pytest.raises(ValueError):
            lowering.lstm_layer("l", 4, 0, 32, 32)


class TestAttentionAndFFN:
    def test_attention_layer_weights(self):
        layer = lowering.attention_layer("a", batch=2, heads=8, seq_q=10, seq_k=10, model_dim=64)
        assert layer.weight_elements == 4 * 64 * 64

    def test_attention_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            lowering.attention_layer("a", 2, 7, 10, 10, 64)

    def test_attention_kind_not_rnn(self):
        layer = lowering.attention_layer("a", 2, 8, 10, 10, 64)
        assert layer.kind == "attention"
        assert not any(k.host_sync for k in layer.forward_kernels)

    def test_feedforward_layer(self):
        layer = lowering.feedforward_layer("f", tokens=100, model_dim=64, inner_dim=256)
        assert layer.weight_elements == 2 * 64 * 256 + 64 + 256
        assert len(layer.forward_kernels) == 3


class TestLossKernels:
    def test_cross_entropy_pair(self):
        kernels = lowering.softmax_cross_entropy_kernels(32, 1000)
        assert len(kernels) == 2
        assert all(k.category is KernelCategory.LOSS for k in kernels)

    def test_ctc_pair(self):
        kernels = lowering.ctc_loss_kernels(4, 600, 180, 29)
        assert len(kernels) == 2
