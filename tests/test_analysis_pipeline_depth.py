"""Deeper coverage of the Fig. 3 analysis pipeline: warm-up handling per
model class, device overrides, and the merged report's internal
consistency."""

import pytest

from repro.core.analysis import AnalysisPipeline
from repro.hardware.devices import TITAN_XP
from repro.profiling.sampling import IterationTimeline, StablePhaseSampler


class TestWarmupHandling:
    def test_faster_rcnn_needs_thousands_of_iterations(self):
        """Section 3.4.2: Faster R-CNN's throughput stabilizes only after a
        few thousand iterations; the pipeline must not sample before that."""
        report = AnalysisPipeline("faster-rcnn", "mxnet").run(1)
        assert report.stable_start_iteration > 1000

    def test_ordinary_models_stabilize_within_hundreds(self):
        report = AnalysisPipeline("wgan", "tensorflow").run(16)
        assert report.stable_start_iteration < 500

    def test_sampler_never_selects_warmup(self):
        timeline = IterationTimeline(
            stable_iteration_s=0.2, warmup_iterations=5, autotune_iterations=300
        )
        durations = timeline.durations(1200)
        sampler = StablePhaseSampler()
        window = sampler.choose_window(durations)
        warmup_mean = durations[:5].mean()
        sampled_mean = durations[window.start_iteration : window.end_iteration].mean()
        assert sampled_mean < 0.2 * warmup_mean


class TestReportConsistency:
    @pytest.fixture(scope="class")
    def report(self):
        return AnalysisPipeline("sockeye", "mxnet", sample_iterations=100).run(32)

    def test_trace_and_metrics_agree_on_fp32(self, report):
        assert report.kernel_trace.average_fp32_utilization == pytest.approx(
            report.metrics.fp32_utilization, rel=1e-6
        )

    def test_cpu_sample_and_metrics_agree(self, report):
        assert report.cpu_sample.utilization == pytest.approx(
            report.metrics.cpu_utilization, rel=0.05
        )

    def test_memory_profile_binds_to_the_configuration(self, report):
        assert report.memory.model == "Sockeye"
        assert report.memory.batch_size == 32

    def test_stable_throughput_near_point_estimate(self, report):
        assert report.stable_throughput == pytest.approx(
            report.metrics.throughput, rel=0.10
        )

    def test_sampled_iterations_in_paper_range(self, report):
        assert 50 <= report.sampled_iterations <= 1000

    def test_summary_lists_five_kernel_rows(self, report):
        text = report.summary()
        assert text.count("%") >= 10  # metrics + five kernel rows


class TestPipelineConfiguration:
    def test_device_override(self):
        report = AnalysisPipeline("resnet-50", "mxnet", gpu=TITAN_XP).run(32)
        assert report.metrics.device == "TITAN Xp"

    def test_default_batch_is_reference(self):
        report = AnalysisPipeline("a3c", "mxnet").run()
        assert report.metrics.batch_size == 128

    def test_sample_size_request_honored_within_limits(self):
        small = AnalysisPipeline("wgan", "tensorflow", sample_iterations=60).run(8)
        assert small.sampled_iterations >= 50

    def test_comparability_gate_runs(self):
        """The pipeline checks hyper-parameters before profiling; a model
        with registered defaults always passes, but the call must happen
        (smoke: patched mismatch raises)."""
        import repro.core.analysis as analysis_module

        original = analysis_module.assert_comparable
        calls = []

        def spy(model_key, *sets):
            calls.append(model_key)
            return original(model_key, *sets)

        analysis_module.assert_comparable = spy
        try:
            AnalysisPipeline("wgan", "tensorflow").run(8)
        finally:
            analysis_module.assert_comparable = original
        assert calls == ["wgan"]
