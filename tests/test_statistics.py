"""Tests for measurement statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.profiling.statistics import (
    bootstrap_ci,
    compare,
    required_sample_count,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_ci_narrows_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(100, 5, 20))
        large = summarize(rng.normal(100, 5, 2000))
        assert large.ci_half_width_fraction < small.ci_half_width_fraction

    def test_ci_covers_truth_usually(self):
        rng = np.random.default_rng(1)
        covered = 0
        for trial in range(100):
            summary = summarize(rng.normal(50.0, 4.0, 60))
            if summary.ci_low <= 50.0 <= summary.ci_high:
                covered += 1
        assert covered >= 88  # ~95% nominal coverage

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([1.0])
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=0.5)

    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, values):
        summary = summarize(values)
        eps = 1e-9 * max(1.0, abs(summary.mean))
        assert summary.minimum - eps <= summary.mean <= summary.maximum + eps
        assert summary.ci_low - eps <= summary.mean <= summary.ci_high + eps


class TestBootstrap:
    def test_agrees_with_normal_theory_on_gaussian_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(100, 5, 400)
        summary = summarize(data)
        low, high = bootstrap_ci(data, seed=1)
        assert low == pytest.approx(summary.ci_low, abs=0.5)
        assert high == pytest.approx(summary.ci_high, abs=0.5)

    def test_deterministic_by_seed(self):
        data = np.arange(50, dtype=float)
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=0)


class TestRequiredSamples:
    def test_tighter_precision_needs_more_samples(self):
        rng = np.random.default_rng(0)
        pilot = rng.normal(100, 10, 50)
        loose = required_sample_count(pilot, relative_precision=0.05)
        tight = required_sample_count(pilot, relative_precision=0.01)
        assert tight > 20 * loose * 0.9  # ~(5x)^2

    def test_noisier_measurements_need_more_samples(self):
        rng = np.random.default_rng(0)
        quiet = required_sample_count(rng.normal(100, 1, 50))
        noisy = required_sample_count(rng.normal(100, 10, 50))
        assert noisy > quiet

    def test_paper_rule_of_thumb_is_justified(self):
        """With the stable phase's ~2% iteration jitter, the paper's
        50-1000 sample window achieves ~1% reporting precision."""
        timeline = IterationTimeline(stable_iteration_s=0.1, jitter=0.02)
        durations = timeline.durations(1500)
        sampler = StablePhaseSampler()
        window = sampler.choose_window(durations, 500)
        stable = durations[window.start_iteration : window.end_iteration]
        needed = required_sample_count(stable, relative_precision=0.01)
        assert needed <= 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_count([1.0, 2.0], relative_precision=0.0)


class TestCompare:
    def test_clear_winner(self):
        rng = np.random.default_rng(0)
        result = compare(
            rng.normal(110, 5, 200), rng.normal(100, 5, 200), ("mxnet", "tf")
        )
        assert result.significant
        assert result.faster == "mxnet"
        assert result.ci_low > 0

    def test_indistinguishable(self):
        rng = np.random.default_rng(0)
        result = compare(rng.normal(100, 20, 10), rng.normal(100, 20, 10))
        assert not result.significant
        assert result.faster == "indistinguishable"

    def test_direction(self):
        rng = np.random.default_rng(0)
        result = compare(
            rng.normal(90, 2, 100), rng.normal(100, 2, 100), ("a", "b")
        )
        assert result.faster == "b"
        assert result.mean_difference < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            compare([1.0], [1.0, 2.0])
