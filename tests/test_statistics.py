"""Tests for measurement statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.profiling.statistics import (
    bootstrap_ci,
    compare,
    required_sample_count,
    summarize,
    welch_p_value,
    welch_statistic,
)


class TestSummarize:
    def test_basic_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_ci_narrows_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(100, 5, 20))
        large = summarize(rng.normal(100, 5, 2000))
        assert large.ci_half_width_fraction < small.ci_half_width_fraction

    def test_ci_covers_truth_usually(self):
        rng = np.random.default_rng(1)
        covered = 0
        for trial in range(100):
            summary = summarize(rng.normal(50.0, 4.0, 60))
            if summary.ci_low <= 50.0 <= summary.ci_high:
                covered += 1
        assert covered >= 88  # ~95% nominal coverage

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=0.5)
        with pytest.raises(ValueError):
            summarize([1.0], confidence=0.5)

    def test_single_sample_is_a_defined_zero_width_interval(self):
        summary = summarize([3.5])
        assert summary.count == 1
        assert summary.mean == 3.5
        assert summary.std == 0.0
        assert (summary.ci_low, summary.ci_high) == (3.5, 3.5)
        assert summary.ci_half_width_fraction == 0.0

    def test_zero_variance_series(self):
        summary = summarize([2.0] * 10)
        assert (summary.ci_low, summary.ci_high) == (2.0, 2.0)
        assert summary.coefficient_of_variation == 0.0
        assert summary.ci_half_width_fraction == 0.0

    def test_zero_mean_degenerate_fractions(self):
        assert summarize([0.0, 0.0]).coefficient_of_variation == 0.0
        spread = summarize([-1.0, 1.0])
        assert spread.coefficient_of_variation == float("inf")
        assert spread.ci_half_width_fraction == float("inf")

    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, values):
        summary = summarize(values)
        eps = 1e-9 * max(1.0, abs(summary.mean))
        assert summary.minimum - eps <= summary.mean <= summary.maximum + eps
        assert summary.ci_low - eps <= summary.mean <= summary.ci_high + eps


class TestBootstrap:
    def test_agrees_with_normal_theory_on_gaussian_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(100, 5, 400)
        summary = summarize(data)
        low, high = bootstrap_ci(data, seed=1)
        assert low == pytest.approx(summary.ci_low, abs=0.5)
        assert high == pytest.approx(summary.ci_high, abs=0.5)

    def test_deterministic_by_seed(self):
        data = np.arange(50, dtype=float)
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_degenerate_inputs_give_zero_width_intervals(self):
        assert bootstrap_ci([4.0]) == (4.0, 4.0)
        assert bootstrap_ci([7.0] * 25) == (7.0, 7.0)


class TestRequiredSamples:
    def test_tighter_precision_needs_more_samples(self):
        rng = np.random.default_rng(0)
        pilot = rng.normal(100, 10, 50)
        loose = required_sample_count(pilot, relative_precision=0.05)
        tight = required_sample_count(pilot, relative_precision=0.01)
        assert tight > 20 * loose * 0.9  # ~(5x)^2

    def test_noisier_measurements_need_more_samples(self):
        rng = np.random.default_rng(0)
        quiet = required_sample_count(rng.normal(100, 1, 50))
        noisy = required_sample_count(rng.normal(100, 10, 50))
        assert noisy > quiet

    def test_paper_rule_of_thumb_is_justified(self):
        """With the stable phase's ~2% iteration jitter, the paper's
        50-1000 sample window achieves ~1% reporting precision."""
        timeline = IterationTimeline(stable_iteration_s=0.1, jitter=0.02)
        durations = timeline.durations(1500)
        sampler = StablePhaseSampler()
        window = sampler.choose_window(durations, 500)
        stable = durations[window.start_iteration : window.end_iteration]
        needed = required_sample_count(stable, relative_precision=0.01)
        assert needed <= 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_count([1.0, 2.0], relative_precision=0.0)


class TestCompare:
    def test_clear_winner(self):
        rng = np.random.default_rng(0)
        result = compare(
            rng.normal(110, 5, 200), rng.normal(100, 5, 200), ("mxnet", "tf")
        )
        assert result.significant
        assert result.faster == "mxnet"
        assert result.ci_low > 0

    def test_indistinguishable(self):
        rng = np.random.default_rng(0)
        result = compare(rng.normal(100, 20, 10), rng.normal(100, 20, 10))
        assert not result.significant
        assert result.faster == "indistinguishable"

    def test_direction(self):
        rng = np.random.default_rng(0)
        result = compare(
            rng.normal(90, 2, 100), rng.normal(100, 2, 100), ("a", "b")
        )
        assert result.faster == "b"
        assert result.mean_difference < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            compare([1.0], [1.0, 2.0])

    def test_carries_two_sided_p_value(self):
        rng = np.random.default_rng(0)
        clear = compare(rng.normal(110, 5, 200), rng.normal(100, 5, 200))
        null = compare(rng.normal(100, 20, 10), rng.normal(100, 20, 10))
        assert clear.p_value < 0.001
        assert null.p_value > 0.05
        assert clear.significant == (clear.p_value < 0.05)


class TestWelch:
    def test_statistic_signs(self):
        rng = np.random.default_rng(0)
        high = rng.normal(110, 5, 100)
        low = rng.normal(100, 5, 100)
        assert welch_statistic(high, low) > 0
        assert welch_statistic(low, high) < 0

    def test_zero_variance_sides_are_exact(self):
        assert welch_statistic([1.0, 1.0], [1.0, 1.0]) == 0.0
        assert welch_statistic([2.0, 2.0], [1.0, 1.0]) == float("inf")
        assert welch_p_value([2.0, 2.0], [1.0, 1.0], "greater") == 0.0
        assert welch_p_value([2.0, 2.0], [1.0, 1.0], "less") == 1.0

    def test_one_sided_pair_sums_to_one(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(100, 5, 50), rng.normal(101, 5, 50)
        greater = welch_p_value(a, b, "greater")
        less = welch_p_value(a, b, "less")
        assert greater + less == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_statistic([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            welch_p_value([1.0, 2.0], [1.0, 2.0], "sideways")

    def test_p_values_uniform_under_null(self):
        """Seeded property: with no real difference, p-values must be
        ~Uniform(0,1) — the false-positive rate at any alpha equals alpha.
        Checked at three cut points over 400 null comparisons."""
        rng = np.random.default_rng(7)
        p_values = np.array(
            [
                welch_p_value(rng.normal(100, 5, 40), rng.normal(100, 5, 40))
                for _ in range(400)
            ]
        )
        for cut in (0.1, 0.5, 0.9):
            observed = float((p_values <= cut).mean())
            # Binomial(400, cut) three-sigma band.
            band = 3.0 * math.sqrt(cut * (1.0 - cut) / p_values.size)
            assert abs(observed - cut) <= band, (cut, observed)

    def test_detects_5pct_slowdown_with_power(self):
        """Seeded property: at the sample count `required_sample_count`
        chooses from a pilot, a one-sided Welch test at alpha=0.05 detects
        a 5% mean slowdown in >= 90% of trials."""
        rng = np.random.default_rng(11)
        pilot = rng.normal(1.0, 0.02, 50)
        n = required_sample_count(pilot, relative_precision=0.005)
        detected = 0
        trials = 100
        for _ in range(trials):
            baseline = rng.normal(1.0, 0.02, n)
            slowed = rng.normal(1.05, 0.02 * 1.05, n)
            if welch_p_value(slowed, baseline, "greater") < 0.05:
                detected += 1
        assert detected >= 0.9 * trials, f"power {detected}/{trials} at n={n}"
