"""The instrumentation lint must pass on the real tree and actually catch
de-instrumented entry points."""

import os
import subprocess
import sys
import textwrap

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "tools"))

from check_instrumentation import (  # noqa: E402
    REQUIRED,
    check_instrumentation,
)


def test_every_entry_point_is_instrumented():
    assert check_instrumentation() == []


def test_lint_covers_all_instrumented_layers():
    modules = {relative for relative, _cls, _fn in REQUIRED}
    assert "repro/training/session.py" in modules
    assert "repro/core/analysis.py" in modules
    assert "repro/distributed/allreduce.py" in modules
    assert "repro/distributed/parameter_server.py" in modules
    assert "repro/data/pipeline.py" in modules


def test_lint_fails_when_instrumentation_removed(tmp_path, monkeypatch):
    """Recreate one required entry point without its trace_span call and
    point the lint at the doctored tree."""
    doctored = tmp_path / "repro" / "training"
    doctored.mkdir(parents=True)
    (doctored / "session.py").write_text(
        textwrap.dedent(
            """
            class TrainingSession:
                def run_iteration(self, batch_size=None):
                    return None

                def simulate_graph(self, graph):
                    return None

                def profile_memory(self, batch_size):
                    return None
            """
        )
    )
    problems = check_instrumentation(str(tmp_path))
    assert any(
        "session.py::TrainingSession.run_iteration" in problem
        and "no trace_span" in problem
        for problem in problems
    )
    # Missing modules are reported too, not silently skipped.
    assert any("cannot parse module" in problem for problem in problems)


def test_lint_reports_missing_entry_point(tmp_path):
    doctored = tmp_path / "repro" / "training"
    doctored.mkdir(parents=True)
    (doctored / "session.py").write_text("class TrainingSession:\n    pass\n")
    problems = check_instrumentation(str(tmp_path))
    assert any("entry point not found" in problem for problem in problems)


def test_cli_exit_codes():
    result = subprocess.run(
        [sys.executable, os.path.join(_REPO, "tools", "check_instrumentation.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "instrumentation lint OK" in result.stdout
