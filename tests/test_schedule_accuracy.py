"""``scheduled_time_to_accuracy``: segment pricing, faults, elasticity.

The fixed path must delegate *exactly* to ``elastic_time_to_accuracy``
(the ``schedule-fixed-equivalence`` invariant's unit-level twin), the
adaptive path must beat fixed on the bench cluster, elastic shrinks must
carry across segment boundaries, and ``FaultPlan.window`` — the plumbing
that threads one plan through per-segment trainers — gets its own unit
battery here.
"""

from __future__ import annotations

import pytest

from repro.distributed.time_to_accuracy import elastic_time_to_accuracy
from repro.faults import (
    AllReduceTimeout,
    FaultPlan,
    LinkFault,
    StragglerFault,
    WorkerCrash,
)
from repro.hardware.cluster import parse_configuration
from repro.schedule import scheduled_time_to_accuracy

MODEL, FRAMEWORK, BATCH = "resnet-50", "mxnet", 32
ADAPTIVE = "gns:ceiling=64,every=50"

CRASH_PLAN = FaultPlan(
    events=(
        StragglerFault(worker=1, factor=1.5, start_step=10, end_step=40),
        WorkerCrash(step=30, machines=1),
    ),
    seed=0,
)


@pytest.fixture(scope="module")
def cluster():
    return parse_configuration("2M1G", fabric="ethernet")


class TestFixedDelegation:
    """schedule=fixed (or absent) must be the elastic path, number for
    number."""

    @pytest.mark.parametrize("plan", [None, CRASH_PLAN])
    @pytest.mark.parametrize("spelling", [None, "", "fixed", "constant"])
    def test_fixed_equals_elastic_exactly(self, cluster, spelling, plan):
        elastic = elastic_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, plan=plan
        )
        scheduled = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, spelling, plan=plan
        )
        assert scheduled.schedule == ""
        assert scheduled.time_to_accuracy_s == elastic.time_to_accuracy_s
        assert scheduled.baseline_time_s == elastic.baseline_time_s
        assert scheduled.samples_needed == elastic.samples_needed
        assert scheduled.global_batch == elastic.global_batch
        assert scheduled.final_machines == elastic.final_machines
        assert scheduled.segment_count == 1
        assert scheduled.final_per_gpu_batch == BATCH

    def test_fixed_overhead_matches_elastic(self, cluster):
        scheduled = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, "fixed", plan=CRASH_PLAN
        )
        assert scheduled.overhead == pytest.approx(
            scheduled.time_to_accuracy_s / scheduled.baseline_time_s
        )


class TestAdaptiveRuns:
    def test_adaptive_beats_fixed_on_the_bench_cluster(self, cluster):
        fixed = scheduled_time_to_accuracy(MODEL, FRAMEWORK, cluster, BATCH)
        adaptive = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, ADAPTIVE
        )
        assert adaptive.schedule == ADAPTIVE
        assert adaptive.segment_count == 2
        assert adaptive.final_per_gpu_batch == 64
        assert adaptive.time_to_accuracy_s < fixed.time_to_accuracy_s

    def test_segments_are_priced_at_their_own_global_batch(self, cluster):
        adaptive = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, ADAPTIVE
        )
        first, last = adaptive.segment_runs[0], adaptive.segment_runs[-1]
        assert first.per_gpu_batch == BATCH
        assert last.per_gpu_batch == 64
        assert last.global_batch > first.global_batch
        # The growing batch pays a statistical penalty: real samples in
        # the grown segment exceed its curve-axis samples.
        assert last.samples_needed > last.curve_samples
        assert adaptive.samples_needed == pytest.approx(
            sum(run.samples_needed for run in adaptive.segment_runs)
        )
        assert adaptive.time_to_accuracy_s == pytest.approx(
            sum(run.wall_clock_s for run in adaptive.segment_runs)
        )

    def test_elastic_shrink_carries_across_segments(self, cluster):
        adaptive = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, ADAPTIVE, plan=CRASH_PLAN
        )
        first, last = adaptive.segment_runs[0], adaptive.segment_runs[-1]
        # The crash at step 30 lands in segment 0; segment 1 must start on
        # the shrunk cluster, not the full one.
        assert first.machines_before == cluster.machine_count == 2
        assert first.machines_after == 1
        assert last.machines_before == 1
        assert adaptive.final_machines == 1
        # And the shrunk segment's global batch reflects the lost machine.
        assert last.global_batch == 64 * 1

    def test_faulted_run_never_beats_its_own_clean_run(self, cluster):
        clean = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, ADAPTIVE
        )
        faulted = scheduled_time_to_accuracy(
            MODEL, FRAMEWORK, cluster, BATCH, ADAPTIVE, plan=CRASH_PLAN
        )
        # This plan costs time on this cluster, and replaying faults can
        # only inflate a run relative to its own per-segment baseline
        # (which is priced on the same, possibly shrunk, cluster path).
        assert faulted.time_to_accuracy_s > clean.time_to_accuracy_s
        assert faulted.overhead > 1.0
        assert clean.overhead == pytest.approx(1.0)

    def test_oom_ceiling_is_reported_not_crashed(self, cluster):
        from repro.hardware.memory import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            scheduled_time_to_accuracy(
                MODEL, FRAMEWORK, cluster, BATCH, "gns:ceiling=512"
            )


class TestFaultPlanWindow:
    def test_empty_plan_windows_to_itself(self):
        windowed = FaultPlan.none().window(100, 200)
        assert windowed.is_empty

    def test_point_events_kept_iff_inside_and_rebased(self):
        plan = FaultPlan(
            events=(
                WorkerCrash(step=5),
                WorkerCrash(step=30, machines=1),
                AllReduceTimeout(step=45),
            ),
            seed=3,
        )
        windowed = plan.window(10, 40)
        assert [type(e).__name__ for e in windowed.events] == ["WorkerCrash"]
        assert windowed.events[0].step == 20
        assert windowed.seed == 3

    def test_interval_events_are_clipped_and_rebased(self):
        plan = FaultPlan(
            events=(
                StragglerFault(worker=0, factor=2.0, start_step=5, end_step=50),
                LinkFault(bandwidth_factor=0.5, start_step=0, end_step=8),
            )
        )
        windowed = plan.window(10, 30)
        [straggler] = windowed.events  # the link fault closed before 10
        assert isinstance(straggler, StragglerFault)
        assert (straggler.start_step, straggler.end_step) == (0, 20)

    def test_open_ended_intervals_stay_open_without_an_end(self):
        plan = FaultPlan(
            events=(StragglerFault(worker=0, factor=2.0, start_step=0),)
        )
        windowed = plan.window(100)
        assert windowed.events[0].start_step == 0
        assert windowed.events[0].end_step is None

    def test_window_end_closes_open_intervals(self):
        plan = FaultPlan(
            events=(StragglerFault(worker=0, factor=2.0, start_step=0),)
        )
        windowed = plan.window(0, 25)
        assert windowed.events[0].end_step == 25

    def test_window_validation(self):
        with pytest.raises(ValueError, match="before step 0"):
            FaultPlan.none().window(-1)
        with pytest.raises(ValueError, match="before it starts"):
            FaultPlan.none().window(10, 5)

    def test_consecutive_windows_partition_the_events(self):
        # The schedule path's exact usage: windows [0, k) and [k, None)
        # must split the plan without losing or duplicating an event.
        plan = CRASH_PLAN
        cut = 20
        head = plan.window(0, cut)
        tail = plan.window(cut)
        point_events = [e for e in plan.events if isinstance(e, WorkerCrash)]
        head_points = [e for e in head.events if isinstance(e, WorkerCrash)]
        tail_points = [e for e in tail.events if isinstance(e, WorkerCrash)]
        assert len(head_points) + len(tail_points) == len(point_events)
        rebased = [e.step for e in head_points] + [
            e.step + cut for e in tail_points
        ]
        assert sorted(rebased) == sorted(e.step for e in point_events)
