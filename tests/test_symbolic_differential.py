"""Differential proof for the symbolic plan layer.

``SymbolicPlanSet.specialize(batch)`` must reproduce the concrete
compiler's :class:`~repro.plan.compiled.CompiledPlan` *bit for bit* —
kernel streams, roofline timings, execution replay, allocation traces,
every float compared by ``repr``, not by tolerance.  This module is the
harness that proves it:

- every (model, framework, batch) point of the paper grid,
- ≥50 seeded fuzzed specs across both GPUs and random batch sizes,
- the analytic OOM boundary against the searched boundary for every
  paper-grid configuration,
- byte-identical engine JSONL exports with symbolic on/off and with a
  cold/warm result cache,
- exact fallback semantics for the one model whose builder escapes the
  trace (faster-rcnn formats a symbolic value into an error message).
"""

from __future__ import annotations

import filecmp
import random

import pytest

from repro.engine.executor import SweepEngine, grid_for
from repro.engine.merge import write_grid_jsonl
from repro.frameworks import get_framework
from repro.hardware.devices import QUADRO_P4000, TITAN_XP
from repro.models.registry import get_model, model_catalog
from repro.plan import compiler as plan_compiler
from repro.plan.symbolic import (
    SymbolicPlanSet,
    TraceEscape,
    plan_difference,
    plan_fingerprint,
    shared_plan_set,
)
from repro.training.session import TrainingSession

#: Every (model, framework) implementation the paper evaluates.
PAPER_PAIRS = [
    (spec.key, framework)
    for spec in model_catalog().values()
    for framework in spec.frameworks
]

#: Models whose builder cannot be traced (validated against TraceEscape
#: separately); every other model must trace.
ESCAPING_MODELS = {"faster-rcnn"}

FUZZ_SEED = 20260807
FUZZ_SPECS = 56


def _traceable_pairs():
    return [(m, f) for m, f in PAPER_PAIRS if m not in ESCAPING_MODELS]


class TestPaperGridBitIdentity:
    @pytest.mark.parametrize("model,framework", _traceable_pairs())
    def test_specialize_matches_concrete_across_ladder(self, model, framework):
        spec = get_model(model)
        fw = get_framework(framework)
        sset = shared_plan_set(spec, fw, QUADRO_P4000)
        for batch in spec.batch_sizes:
            symbolic = sset.specialize(batch)
            concrete = plan_compiler.compile_graph(
                spec.build(batch), fw, QUADRO_P4000
            )
            difference = plan_difference(symbolic, concrete)
            assert difference is None, f"{model}/{framework} b={batch}: {difference}"

    def test_fingerprint_covers_kernels_timings_and_allocations(self):
        """The comparator itself must see every plan facet — a fingerprint
        missing the kernel stream or the allocation trace would let a
        divergent specialization pass the whole harness."""
        spec = get_model("resnet-50")
        fw = get_framework("mxnet")
        plan = plan_compiler.compile_graph(spec.build(16), fw, QUADRO_P4000)
        fingerprint = plan_fingerprint(plan)
        flat = repr(sorted(fingerprint))
        for facet in ("kernel", "timing", "allocation", "execution"):
            assert facet in flat, f"fingerprint misses the {facet} facet"

    def test_escaping_model_raises_and_falls_back_identically(self):
        """faster-rcnn traces at its only valid batch (1); any other batch
        makes the builder format the symbolic batch into an error message,
        which escapes the trace — and the session's fallback must surface
        the *concrete* compiler's error, byte for byte."""
        spec = get_model("faster-rcnn")
        framework_key = spec.frameworks[0]
        fw = get_framework(framework_key)
        sset = SymbolicPlanSet(spec, fw, QUADRO_P4000)
        concrete = plan_compiler.compile_graph(spec.build(1), fw, QUADRO_P4000)
        assert plan_difference(sset.specialize(1), concrete) is None

        with pytest.raises(TraceEscape):
            SymbolicPlanSet(spec, fw, QUADRO_P4000).specialize(2)

        with pytest.raises(Exception) as concrete_error:
            plan_compiler.compile_graph(spec.build(2), fw, QUADRO_P4000)
        session = TrainingSession("faster-rcnn", framework_key)
        with pytest.raises(type(concrete_error.value)) as session_error:
            session.compile(2)
        assert str(session_error.value) == str(concrete_error.value)


class TestSeededFuzzBitIdentity:
    def test_fuzzed_specs_specialize_bit_identically(self):
        rng = random.Random(FUZZ_SEED)
        pairs = _traceable_pairs()
        gpus = (QUADRO_P4000, TITAN_XP)
        checked = 0
        for _ in range(FUZZ_SPECS):
            model, framework = rng.choice(pairs)
            spec = get_model(model)
            fw = get_framework(framework)
            gpu = rng.choice(gpus)
            batch = rng.randint(1, 2 * max(spec.batch_sizes))
            sset = shared_plan_set(spec, fw, gpu)
            symbolic = sset.specialize(batch)
            concrete = plan_compiler.compile_graph(spec.build(batch), fw, gpu)
            difference = plan_difference(symbolic, concrete)
            assert difference is None, (
                f"{model}/{framework}@{gpu.name} b={batch}: {difference}"
            )
            checked += 1
        assert checked >= 50


class TestAnalyticOOMBoundary:
    @pytest.mark.parametrize("model,framework", PAPER_PAIRS)
    def test_analytic_max_batch_equals_searched(self, model, framework):
        analytic = TrainingSession(model, framework).max_batch_size()
        searched = TrainingSession(model, framework, symbolic=False).max_batch_size(
            search=True
        )
        assert analytic == searched

    @pytest.mark.parametrize("gpu", [QUADRO_P4000, TITAN_XP], ids=lambda g: g.name)
    def test_exact_oom_boundary_matches_bisected_replay(self, gpu):
        """``oom_boundary`` (polynomial seed + allocator confirm) equals a
        dumb linear scan over the allocator replay near the boundary."""
        spec = get_model("resnet-50")
        fw = get_framework("mxnet")
        sset = shared_plan_set(spec, fw, gpu)
        boundary = sset.oom_boundary(gpu.memory_bytes)
        assert boundary >= 1
        assert sset.fits(boundary, gpu.memory_bytes)
        assert not sset.fits(boundary + 1, gpu.memory_bytes)


class TestExportByteIdentity:
    PANELS = (("resnet-50", ("mxnet",)), ("nmt", ("tensorflow",)))

    def _export(self, path, cache, symbolic: bool) -> None:
        grid = grid_for(self.PANELS, batch_sizes=(4, 8, 16))
        engine = SweepEngine(jobs=1, cache=cache, symbolic=symbolic)
        points = engine.run_grid(grid)
        write_grid_jsonl(str(path), grid, points)

    def test_symbolic_and_concrete_exports_are_byte_identical(self, tmp_path):
        self._export(tmp_path / "symbolic.jsonl", cache=None, symbolic=True)
        self._export(tmp_path / "concrete.jsonl", cache=None, symbolic=False)
        assert filecmp.cmp(
            tmp_path / "symbolic.jsonl", tmp_path / "concrete.jsonl", shallow=False
        )

    def test_cold_and_warm_cache_exports_are_byte_identical(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        self._export(tmp_path / "cold.jsonl", cache=cache_root, symbolic=True)
        warm_engine = SweepEngine(jobs=1, cache=cache_root, symbolic=True)
        grid = grid_for(self.PANELS, batch_sizes=(4, 8, 16))
        warm_points = warm_engine.run_grid(grid)
        write_grid_jsonl(str(tmp_path / "warm.jsonl"), grid, warm_points)
        assert warm_engine.stats.cache_hits == len(grid)
        assert warm_engine.stats.points_computed == 0
        assert filecmp.cmp(
            tmp_path / "cold.jsonl", tmp_path / "warm.jsonl", shallow=False
        )
