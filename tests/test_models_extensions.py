"""Tests for the extension models (YOLOv2, AlexNet) and their registry."""

import pytest

from repro.hardware.devices import GTX_580
from repro.hardware.memory import OutOfMemoryError
from repro.models.alexnet import build_alexnet
from repro.models.registry import extension_catalog, get_model, model_catalog
from repro.models.yolo import build_yolo_v2
from repro.training.session import TrainingSession


class TestRegistrySeparation:
    def test_extensions_not_in_paper_catalog(self):
        assert "yolo-v2" not in model_catalog()
        assert "alexnet" not in model_catalog()
        assert set(extension_catalog()) == {"yolo-v2", "alexnet"}

    def test_extensions_resolve_through_get_model(self):
        assert get_model("yolo").key == "yolo-v2"
        assert get_model("yolo9000").key == "yolo-v2"
        assert get_model("alexnet").key == "alexnet"


class TestYOLOv2:
    def test_darknet19_conv_count(self):
        graph = build_yolo_v2(4)
        convs = [l for l in graph.layers if l.kind == "conv"]
        # Darknet-19's 18 trunk convs (its 19th is the classification head,
        # replaced for detection) + 3 head convs + the 1x1 detector.
        assert len(convs) == 22

    def test_parameter_count_close_to_published(self):
        graph = build_yolo_v2(1)
        # YOLOv2 on VOC: ~50M parameters.
        assert 40e6 < graph.total_weight_elements < 75e6

    def test_single_shot_trains_with_real_batches(self):
        """The motivation for adding YOLO: unlike Faster R-CNN (one image
        per iteration), it batches normally and trains much faster per
        image."""
        yolo = TrainingSession("yolo-v2", "mxnet").run_iteration(16)
        frcnn = TrainingSession("faster-rcnn", "mxnet").run_iteration(1)
        assert yolo.throughput > 5 * frcnn.throughput

    def test_fits_8gb_at_batch_16(self):
        profile = TrainingSession("yolo-v2", "mxnet").run_iteration(16)
        assert profile.memory.peak_total < 8 * 1024**3

    def test_conv_dominant(self):
        assert build_yolo_v2(2).dominant_layer_kind() == "conv"


class TestAlexNet:
    def test_parameter_count_close_to_published(self):
        graph = build_alexnet(1)
        # Published AlexNet: ~61M parameters (FC-heavy).
        assert graph.total_weight_elements == pytest.approx(61e6, rel=0.08)

    def test_fc_layers_hold_most_weights(self):
        graph = build_alexnet(1)
        fc = sum(l.weight_elements for l in graph.layers if l.kind == "dense")
        assert fc > 0.9 * graph.total_weight_elements

    def test_much_faster_than_resnet(self):
        alexnet = TrainingSession("alexnet", "mxnet").run_iteration(128)
        resnet = TrainingSession("resnet-50", "mxnet").run_iteration(32)
        assert alexnet.throughput > 3 * resnet.throughput

    def test_historical_gtx580_memory_wall(self):
        """Section 2.2's anecdote quantified: AlexNet's training footprint
        exceeds one GTX 580's 1.5 GB — the reason Krizhevsky split the model
        across two cards."""
        session = TrainingSession("alexnet", "mxnet", gpu=GTX_580)
        with pytest.raises(OutOfMemoryError):
            session.run_iteration(128)

    def test_gtx580_fits_small_batches(self):
        session = TrainingSession("alexnet", "mxnet", gpu=GTX_580)
        profile = session.run_iteration(16)
        assert profile.throughput > 0

    def test_p4000_vs_gtx580_speedup(self):
        """Six years of hardware: the P4000 runs AlexNet several times
        faster than the GTX 580."""
        p4000 = TrainingSession("alexnet", "mxnet").run_iteration(64)
        gtx = TrainingSession("alexnet", "mxnet", gpu=GTX_580).run_iteration(64)
        assert p4000.throughput > 2.5 * gtx.throughput
