"""Pytest bridge for the conformance harness.

Runs the full invariant/relation registries over the paper grid plus a
fixed-seed fuzz budget, proves the JSON report is byte-deterministic
across a cache-warm rerun, and exercises the CLI surface.  Everything is
seeded and engine-cached, so the module stays deterministic and fast.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.conformance import (
    ConformanceRunner,
    generate_cases,
    get_invariant,
    get_relation,
    invariant_registry,
    relation_registry,
)
from repro.conformance.generator import simplicity_order
from repro.conformance.relations import (
    has_fault_events,
    strip_fault_events,
)
from repro.engine.cache import ResultCache
from repro.engine.executor import PointSpec, grid_for
from repro.experiments.common import SWEEP_PANELS
from repro.models.registry import get_model, model_catalog

_RUNNER_KWARGS = dict(
    seed=7,
    budget=12,
    jobs=1,
    include_grid=True,
    deep_limit=4,
    deep_every=4,
    scaling_probes=(("resnet-50", "mxnet"),),
)


@pytest.fixture(scope="module")
def conformance_run(tmp_path_factory):
    """One full harness run over the paper grid + fuzz budget, with its
    result cache kept for the determinism rerun."""
    cache_dir = str(tmp_path_factory.mktemp("conformance-cache"))
    runner = ConformanceRunner(cache=ResultCache(cache_dir), **_RUNNER_KWARGS)
    report = runner.run()
    return report, cache_dir


class TestRegistries:
    def test_at_least_fifteen_invariants(self):
        registry = invariant_registry()
        assert len(registry) >= 15
        assert len({inv.name for inv in registry}) == len(registry)
        assert {inv.scope for inv in registry} == {
            "point",
            "sweep",
            "scaling",
            "serve",
        }

    def test_every_invariant_documented_and_resolvable(self):
        for inv in invariant_registry():
            assert inv.description
            assert get_invariant(inv.name) is inv

    def test_relations_registered(self):
        names = {rel.name for rel in relation_registry()}
        assert {
            "double-batch",
            "swap-gpu-more-memory",
            "drop-fault-events",
            "replay-determinism",
        } <= names

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            get_invariant("no-such-law")
        with pytest.raises(KeyError):
            get_relation("no-such-relation")

    def test_simplicity_order_covers_catalog(self):
        order = simplicity_order()
        assert sorted(order) == sorted(model_catalog())
        counts = [model_catalog()[key].paper_layer_count for key in order]
        assert counts == sorted(counts)


class TestGenerator:
    def test_cases_deterministic_in_seed(self):
        assert generate_cases(7, 25) == generate_cases(7, 25)
        assert generate_cases(7, 25) != generate_cases(8, 25)

    def test_generated_cases_are_valid(self):
        for case in generate_cases(3, 40):
            entry = get_model(case.spec.model)
            assert entry.supports(case.spec.framework)
            assert case.spec.batch_size in entry.batch_sizes
            relation = get_relation(case.relation)
            assert relation.applies(case.spec, case.gpu)

    def test_fault_event_stripping(self):
        text = "cluster=2M1G:1gbe; steps=9; seed=4; straggler=0x1.5@2:6"
        assert has_fault_events(text)
        stripped = strip_fault_events(text)
        assert stripped == "cluster=2M1G:1gbe; steps=9; seed=4"
        assert not has_fault_events(stripped)


@pytest.mark.slow
class TestFullHarness:
    def test_zero_violations_on_grid_and_fuzz(self, conformance_run):
        report, _ = conformance_run
        assert report.ok, report.render()
        assert report.grid_points == len(grid_for(SWEEP_PANELS))
        assert report.deep_points == 4
        assert report.fuzz_cases == 12

    def test_every_check_exercised(self, conformance_run):
        report, _ = conformance_run
        for inv in invariant_registry():
            assert report.checks[inv.name]["checked"] > 0, inv.name
        exercised_relations = [
            rel.name
            for rel in relation_registry()
            if report.checks[rel.name]["checked"] > 0
        ]
        assert exercised_relations  # the budget hit at least one relation

    def test_report_json_round_trips(self, conformance_run):
        report, _ = conformance_run
        doc = json.loads(report.to_json())
        assert doc["schema"] == 1
        assert doc["violations"] == []
        assert doc["checks"]["roofline-kernel-floor"]["violations"] == 0

    def test_cache_warm_rerun_is_byte_identical(self, conformance_run):
        report, cache_dir = conformance_run
        rerun = ConformanceRunner(
            cache=ResultCache(cache_dir), **_RUNNER_KWARGS
        ).run()
        assert rerun.to_json() == report.to_json()


class TestRecheck:
    def test_clean_spec_has_no_point_violations(self):
        runner = ConformanceRunner(jobs=1, cache=None, include_grid=False, budget=0)
        spec = PointSpec("a3c", "mxnet", 8, "")
        for name in ("roofline-kernel-floor", "memory-breakdown-additivity"):
            assert not runner.violates(name, spec, "p4000")

    def test_relation_recheck_skips_inapplicable(self):
        runner = ConformanceRunner(jobs=1, cache=None, include_grid=False, budget=0)
        # swap-gpu only perturbs off the default GPU
        spec = PointSpec("a3c", "mxnet", 8, "")
        assert not runner.violates("swap-gpu-more-memory", spec, "titan xp")


class TestConformanceCLI:
    def test_list_prints_registries(self, capsys):
        assert main(["conformance", "list"]) == 0
        out = capsys.readouterr().out
        assert "roofline-kernel-floor" in out
        assert "metamorphic relations:" in out
        assert "double-batch" in out

    def test_run_fuzz_only_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "violations.json"
        code = main(
            [
                "conformance",
                "run",
                "--no-grid",
                "--budget",
                "3",
                "--seed",
                "11",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zero violations" in out
        doc = json.loads(report_path.read_text())
        assert doc["fuzz_cases"] == 3
        assert doc["include_grid"] is False

    def test_shrink_reports_clean_configuration(self, capsys):
        code = main(
            ["conformance", "shrink", "roofline-kernel-floor", "a3c", "mxnet", "8"]
        )
        assert code == 0
        assert "nothing to shrink" in capsys.readouterr().out
