"""Differential tests for the faults dimension of the sweep engine.

Two byte-identity guarantees:

- adding the dimension changed **nothing** for the paper grid — a
  fault-free grid run through the engine exports byte-identical JSONL to
  the plain serial suite path, and empty-``faults`` cache keys are the
  keys the pre-fault engine produced (no "faults" field in records);
- the faulted grid is itself deterministic — the same specs produce
  byte-identical JSONL across ``jobs=1/2/4`` and across a warm re-run
  from cache, and the cache key moves if (and only if) the fault
  scenario text moves.
"""

import json

import pytest

from repro.engine import (
    PointSpec,
    SweepEngine,
    grid_record,
    point_key,
    write_grid_jsonl,
)
from repro.models.registry import get_model

#: A reduced paper grid (fault-free) used for the no-perturbation check.
PLAIN_PANELS = (("resnet-50", ("mxnet",)), ("a3c", ("mxnet",)))

#: Faulted grid: two models x two scenarios x two batch sizes.
FAULT_SPECS = (
    "cluster=2M1G:infiniband; steps=12; straggler=0x1.5@2:8",
    "cluster=2M1G:infiniband; steps=12; degrade=bw0.5+loss0.05@3:9; crash=1@5",
)


def _faulted_grid():
    return [
        PointSpec(model, "mxnet", batch, faults)
        for model in ("resnet-50", "inception-v3")
        for faults in FAULT_SPECS
        for batch in (8, 16)
    ]


def _export(tmp_path, name, grid, points):
    path = tmp_path / f"{name}.jsonl"
    write_grid_jsonl(str(path), grid, points)
    return path.read_bytes()


class TestFaultFreeGridUnperturbed:
    """``faults=""`` must be bitwise invisible to the paper grid."""

    def test_engine_sweep_matches_suite_sweep(self, suite, tmp_path):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        for model, frameworks in PLAIN_PANELS:
            for framework in frameworks:
                assert engine.sweep(model, framework) == suite.sweep(model, framework)

    def test_empty_faults_spec_key_is_the_pre_fault_key(self):
        spec = get_model("resnet-50")
        with_dimension = point_key(spec, "mxnet", 16, faults="")
        without_dimension = point_key(spec, "mxnet", 16)
        assert with_dimension == without_dimension

    def test_fault_free_records_carry_no_faults_field(self, suite):
        spec = PointSpec("resnet-50", "mxnet", 16)
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        record = grid_record(spec, point)
        assert "faults" not in record

    def test_faulted_records_carry_the_scenario_text(self):
        spec = PointSpec("resnet-50", "mxnet", 16, FAULT_SPECS[0])
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        record = grid_record(spec, point)
        assert record["faults"] == FAULT_SPECS[0]

    def test_fault_text_moves_the_cache_key(self):
        spec = get_model("resnet-50")
        clean = point_key(spec, "mxnet", 16)
        faulted = point_key(spec, "mxnet", 16, faults=FAULT_SPECS[0])
        other = point_key(spec, "mxnet", 16, faults=FAULT_SPECS[1])
        assert len({clean, faulted, other}) == 3


class TestFaultedGridDeterministic:
    """Same specs, same bytes — whatever the job count or cache state."""

    @pytest.fixture(scope="class")
    def grid(self):
        return _faulted_grid()

    @pytest.fixture(scope="class")
    def reference_bytes(self, grid, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("faults-serial")
        points = SweepEngine(jobs=1, cache=None).run_grid(grid)
        return _export(tmp, "serial", grid, points)

    def test_jobs2_and_jobs4_are_byte_identical(
        self, grid, reference_bytes, tmp_path
    ):
        for jobs in (2, 4):
            engine = SweepEngine(jobs=jobs, cache=None)
            points = engine.run_grid(grid)
            assert _export(tmp_path, f"jobs{jobs}", grid, points) == reference_bytes

    def test_warm_cache_is_byte_identical_and_computes_nothing(
        self, grid, reference_bytes, tmp_path
    ):
        cache = str(tmp_path / "cache")
        cold = SweepEngine(jobs=2, cache=cache)
        cold_points = cold.run_grid(grid)
        assert cold.stats.points_computed == len(grid)
        warm = SweepEngine(jobs=1, cache=cache)
        warm_points = warm.run_grid(grid)
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)
        assert _export(tmp_path, "cold", grid, cold_points) == reference_bytes
        assert _export(tmp_path, "warm", grid, warm_points) == reference_bytes

    def test_exported_rows_are_valid_json_with_fault_metadata(self, reference_bytes):
        rows = [
            json.loads(line)
            for line in reference_bytes.decode().splitlines()
        ]
        assert len(rows) == len(_faulted_grid())
        for row in rows:
            assert row["faults"] in FAULT_SPECS
            assert row["oom"] is False
            assert row["metrics"]["throughput"] > 0

    def test_faulted_points_actually_differ_from_clean_points(self, grid):
        # Same cluster, same steps, zero fault events: the event-free
        # scenario is the apples-to-apples baseline for the faulted runs.
        event_free = "cluster=2M1G:infiniband; steps=12"
        clean_grid = [
            PointSpec(s.model, s.framework, s.batch_size, event_free) for s in grid
        ]
        engine = SweepEngine(jobs=1, cache=None)
        clean = {
            (spec.model, spec.batch_size): point
            for spec, point in zip(clean_grid, engine.run_grid(clean_grid))
        }
        faulted = engine.run_grid(grid)
        for spec, point in zip(grid, faulted):
            reference = clean[(spec.model, spec.batch_size)]
            assert point.metrics.throughput < reference.metrics.throughput


class TestFaultValidation:
    def test_run_grid_rejects_malformed_spec_before_computing(self):
        from repro.faults.spec import FaultSpecError

        engine = SweepEngine(jobs=1, cache=None)
        bad = PointSpec("resnet-50", "mxnet", 16, "straggler=banana")
        with pytest.raises(FaultSpecError):
            engine.run_grid([bad])
        assert engine.stats.points_computed == 0
