"""Tests for training-loop utilities: schedules, clipping, Trainer,
checkpoints."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.layers import Dense, Sequential, ReLU
from repro.tensor.optim import SGD
from repro.tensor.tensor import Tensor
from repro.tensor.train import (
    ConstantSchedule,
    InverseSqrtSchedule,
    StepDecaySchedule,
    Trainer,
    clip_gradients,
    global_gradient_norm,
    load_checkpoint,
    load_state_dict,
    make_schedule,
    save_checkpoint,
    state_dict,
)


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule().multiplier(0) == 1.0
        assert ConstantSchedule().multiplier(10**6) == 1.0

    def test_step_decay(self):
        schedule = StepDecaySchedule(period=100, gamma=0.1)
        assert schedule.multiplier(0) == 1.0
        assert schedule.multiplier(99) == 1.0
        assert schedule.multiplier(100) == pytest.approx(0.1)
        assert schedule.multiplier(250) == pytest.approx(0.01)

    def test_inverse_sqrt_warms_up_then_decays(self):
        schedule = InverseSqrtSchedule(warmup_steps=100)
        ramp = [schedule.multiplier(s) for s in (1, 50, 100)]
        assert ramp == sorted(ramp)
        assert schedule.multiplier(100) > schedule.multiplier(400)

    def test_factory(self):
        assert isinstance(make_schedule("constant"), ConstantSchedule)
        assert isinstance(make_schedule("step", period=10), StepDecaySchedule)
        assert isinstance(make_schedule("inverse_sqrt"), InverseSqrtSchedule)
        with pytest.raises(KeyError):
            make_schedule("cyclic")

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(period=0)
        with pytest.raises(ValueError):
            InverseSqrtSchedule(warmup_steps=0)

    def test_apply_sets_optimizer_rate(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        optimizer = SGD([parameter], learning_rate=1.0)
        StepDecaySchedule(period=10).apply(optimizer, 1.0, step=25)
        assert optimizer.learning_rate == pytest.approx(0.01)


class TestGradientClipping:
    def test_norm_computation(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.array([3.0, 4.0, 0.0, 0.0], dtype=np.float32)
        assert global_gradient_norm([parameter]) == pytest.approx(5.0)

    def test_clipping_scales_down(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        parameter.grad = np.array([30.0, 40.0], dtype=np.float32)
        norm = clip_gradients([parameter], max_norm=5.0)
        assert norm == pytest.approx(50.0)
        assert global_gradient_norm([parameter]) == pytest.approx(5.0, rel=1e-4)

    def test_small_gradients_untouched(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        parameter.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_gradients([parameter], max_norm=5.0)
        assert global_gradient_norm([parameter]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


def _regression_setup(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential(Dense(4, 16, rng=rng), ReLU(), Dense(16, 1, rng=rng))
    optimizer = SGD(model.parameters(), learning_rate=0.05, momentum=0.9)
    true_w = rng.normal(0, 1, size=(4, 1)).astype(np.float32)

    def batch_source(step):
        x = rng.normal(0, 1, size=(16, 4)).astype(np.float32)
        return x, x @ true_w

    def loss_fn(m, batch):
        x, y = batch
        return F.mse(m(Tensor(x)), y)

    return model, optimizer, loss_fn, batch_source


class TestTrainer:
    def test_fit_reduces_loss(self):
        model, optimizer, loss_fn, batches = _regression_setup()
        trainer = Trainer(model, optimizer, loss_fn, clip_norm=10.0)
        history = trainer.fit(batches, steps=80)
        assert history.steps == 80
        assert history.smoothed_loss() < 0.5 * np.mean(history.losses[:5])

    def test_history_records_everything(self):
        model, optimizer, loss_fn, batches = _regression_setup()
        trainer = Trainer(
            model, optimizer, loss_fn, schedule=StepDecaySchedule(period=20)
        )
        trainer.fit(batches, steps=45)
        assert len(trainer.history.learning_rates) == 45
        assert trainer.history.learning_rates[0] == pytest.approx(0.05)
        assert trainer.history.learning_rates[-1] == pytest.approx(0.0005)
        assert all(n >= 0 for n in trainer.history.gradient_norms)

    def test_early_stopping(self):
        model, optimizer, loss_fn, batches = _regression_setup()
        trainer = Trainer(model, optimizer, loss_fn)
        history = trainer.fit(batches, steps=2000, patience=15)
        assert history.steps < 2000

    def test_loss_fn_must_return_tensor(self):
        model, optimizer, _, batches = _regression_setup()
        trainer = Trainer(model, optimizer, lambda m, b: 1.0)
        with pytest.raises(TypeError):
            trainer.step(batches(0))

    def test_fit_validation(self):
        model, optimizer, loss_fn, batches = _regression_setup()
        with pytest.raises(ValueError):
            Trainer(model, optimizer, loss_fn).fit(batches, steps=0)

    def test_smoothed_loss_requires_steps(self):
        model, optimizer, loss_fn, _ = _regression_setup()
        trainer = Trainer(model, optimizer, loss_fn)
        with pytest.raises(ValueError):
            trainer.history.smoothed_loss()


class TestCheckpointing:
    def test_state_roundtrip_in_memory(self):
        model, *_ = _regression_setup()
        saved = state_dict(model)
        for parameter in model.parameters():
            parameter.data += 1.0
        load_state_dict(model, saved)
        restored = state_dict(model)
        for key in saved:
            assert np.array_equal(saved[key], restored[key])

    def test_checkpoint_file_roundtrip(self, tmp_path):
        model, optimizer, loss_fn, batches = _regression_setup()
        Trainer(model, optimizer, loss_fn).fit(batches, steps=10)
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        reference = model(Tensor(np.ones((2, 4), dtype=np.float32))).data.copy()
        for parameter in model.parameters():
            parameter.data *= 0.0
        load_checkpoint(model, path)
        restored = model(Tensor(np.ones((2, 4), dtype=np.float32))).data
        assert np.allclose(reference, restored)

    def test_mismatched_checkpoint_rejected(self):
        model, *_ = _regression_setup()
        other = Sequential(Dense(4, 3))
        with pytest.raises(ValueError, match="tensors"):
            load_state_dict(other, state_dict(model))

    def test_shape_mismatch_rejected(self):
        a = Sequential(Dense(4, 3))
        b = Sequential(Dense(4, 5))
        with pytest.raises(ValueError, match="shape"):
            load_state_dict(b, state_dict(a))
