"""Unit tests for the tagged GPU memory allocator."""

import pytest

from repro.hardware.memory import (
    AllocationTag,
    GPUMemoryAllocator,
    OutOfMemoryError,
)

_MIB = 1024**2


@pytest.fixture
def allocator():
    return GPUMemoryAllocator(capacity_bytes=100 * _MIB)


class TestAllocation:
    def test_allocate_and_free_roundtrip(self, allocator):
        handle = allocator.allocate(10 * _MIB, AllocationTag.WEIGHTS)
        assert allocator.allocated_bytes == 10 * _MIB
        allocator.free(handle)
        assert allocator.allocated_bytes == 0

    def test_capacity_enforced(self, allocator):
        allocator.allocate(90 * _MIB, AllocationTag.FEATURE_MAPS)
        with pytest.raises(OutOfMemoryError, match="exceeds capacity"):
            allocator.allocate(20 * _MIB, AllocationTag.FEATURE_MAPS)

    def test_oom_message_names_tag_and_label(self, allocator):
        with pytest.raises(OutOfMemoryError, match="feature maps: conv1"):
            allocator.allocate(200 * _MIB, AllocationTag.FEATURE_MAPS, "conv1")

    def test_double_free_raises(self, allocator):
        handle = allocator.allocate(_MIB, AllocationTag.WORKSPACE)
        allocator.free(handle)
        with pytest.raises(KeyError):
            allocator.free(handle)

    def test_negative_allocation_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.allocate(-1, AllocationTag.WEIGHTS)

    def test_zero_byte_allocation_allowed(self, allocator):
        handle = allocator.allocate(0, AllocationTag.DYNAMIC)
        assert handle > 0

    def test_free_bytes(self, allocator):
        allocator.allocate(30 * _MIB, AllocationTag.WEIGHTS)
        assert allocator.free_bytes == 70 * _MIB


class TestPoolOverhead:
    def test_overhead_charged_against_capacity(self):
        allocator = GPUMemoryAllocator(100 * _MIB, pool_overhead=1.25)
        allocator.allocate(40 * _MIB, AllocationTag.WEIGHTS)
        assert allocator.allocated_bytes == pytest.approx(50 * _MIB)

    def test_overhead_can_cause_oom(self):
        tight = GPUMemoryAllocator(100 * _MIB, pool_overhead=1.25)
        with pytest.raises(OutOfMemoryError):
            tight.allocate(90 * _MIB, AllocationTag.FEATURE_MAPS)
        exact = GPUMemoryAllocator(100 * _MIB, pool_overhead=1.0)
        exact.allocate(90 * _MIB, AllocationTag.FEATURE_MAPS)

    def test_overhead_below_one_rejected(self):
        with pytest.raises(ValueError):
            GPUMemoryAllocator(_MIB, pool_overhead=0.9)


class TestPeakTracking:
    def test_peak_survives_frees(self, allocator):
        handle = allocator.allocate(50 * _MIB, AllocationTag.FEATURE_MAPS)
        allocator.free(handle)
        allocator.allocate(10 * _MIB, AllocationTag.FEATURE_MAPS)
        snapshot = allocator.snapshot()
        assert snapshot.peak_by_tag[AllocationTag.FEATURE_MAPS] == 50 * _MIB

    def test_peak_is_per_tag(self, allocator):
        allocator.allocate(10 * _MIB, AllocationTag.WEIGHTS)
        allocator.allocate(30 * _MIB, AllocationTag.FEATURE_MAPS)
        snapshot = allocator.snapshot()
        assert snapshot.peak_by_tag[AllocationTag.WEIGHTS] == 10 * _MIB
        assert snapshot.peak_by_tag[AllocationTag.FEATURE_MAPS] == 30 * _MIB

    def test_peak_total_tracks_simultaneous_maximum(self, allocator):
        first = allocator.allocate(40 * _MIB, AllocationTag.WEIGHTS)
        allocator.free(first)
        allocator.allocate(30 * _MIB, AllocationTag.WORKSPACE)
        assert allocator.snapshot().peak_total == 40 * _MIB

    def test_reset_peaks(self, allocator):
        handle = allocator.allocate(50 * _MIB, AllocationTag.FEATURE_MAPS)
        allocator.free(handle)
        allocator.reset_peaks()
        assert allocator.snapshot().peak_total == 0

    def test_feature_map_fraction(self, allocator):
        allocator.allocate(75 * _MIB, AllocationTag.FEATURE_MAPS)
        allocator.allocate(25 * _MIB, AllocationTag.WEIGHTS)
        snapshot = allocator.snapshot()
        assert snapshot.feature_map_fraction == pytest.approx(0.75)
        assert snapshot.fraction(AllocationTag.WEIGHTS) == pytest.approx(0.25)

    def test_fraction_of_empty_snapshot_is_zero(self, allocator):
        assert allocator.snapshot().feature_map_fraction == 0.0


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GPUMemoryAllocator(0)
