"""Unit tests for the device catalog (paper Table 4)."""

import pytest

from repro.hardware.devices import (
    GPUSpec,
    GTX_580,
    QUADRO_P4000,
    TITAN_XP,
    XEON_E5_2680,
    cpu_catalog,
    get_cpu,
    get_gpu,
    gpu_catalog,
)


class TestTable4Values:
    def test_p4000_matches_table4(self):
        assert QUADRO_P4000.multiprocessors == 14
        assert QUADRO_P4000.core_count == 1792
        assert QUADRO_P4000.max_clock_mhz == 1480.0
        assert QUADRO_P4000.memory_gb == 8.0
        assert QUADRO_P4000.llc_mb == 2.0
        assert QUADRO_P4000.memory_bus == "GDDR5"
        assert QUADRO_P4000.memory_bandwidth_gbs == 243.0
        assert QUADRO_P4000.bus_interface == "PCIe 3.0"
        assert QUADRO_P4000.memory_speed_mhz == 3802.0

    def test_titan_xp_matches_table4(self):
        assert TITAN_XP.multiprocessors == 30
        assert TITAN_XP.core_count == 3840
        assert TITAN_XP.max_clock_mhz == 1582.0
        assert TITAN_XP.memory_gb == 12.0
        assert TITAN_XP.memory_bus == "GDDR5X"
        assert TITAN_XP.memory_bandwidth_gbs == 547.6

    def test_xeon_matches_table4(self):
        assert XEON_E5_2680.core_count == 28
        assert XEON_E5_2680.max_clock_mhz == 2900.0
        assert XEON_E5_2680.memory_gb == 128.0
        assert XEON_E5_2680.llc_mb == 35.0
        assert XEON_E5_2680.memory_bandwidth_gbs == 76.8


class TestDerivedQuantities:
    def test_peak_flops_is_cores_times_clock_times_two(self):
        expected = 1792 * 1480.0e6 * 2.0
        assert QUADRO_P4000.peak_fp32_flops == pytest.approx(expected)

    def test_titan_xp_peak_exceeds_p4000(self):
        assert TITAN_XP.peak_fp32_flops > 2.2 * QUADRO_P4000.peak_fp32_flops

    def test_memory_bytes(self):
        assert QUADRO_P4000.memory_bytes == 8 * 1024**3

    def test_memory_bandwidth_bytes(self):
        assert QUADRO_P4000.memory_bandwidth_bytes == pytest.approx(243e9)

    def test_cpu_peak_flops(self):
        assert XEON_E5_2680.peak_flops == pytest.approx(
            28 * XEON_E5_2680.flops_per_core
        )


class TestCatalogLookups:
    def test_get_gpu_case_insensitive(self):
        assert get_gpu("P4000") is QUADRO_P4000
        assert get_gpu("Titan Xp") is TITAN_XP
        assert get_gpu("gtx580") is GTX_580

    def test_get_gpu_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            get_gpu("V100")

    def test_get_cpu(self):
        assert get_cpu("xeon") is XEON_E5_2680
        with pytest.raises(KeyError):
            get_cpu("epyc")

    def test_catalogs_keyed_by_name(self):
        assert gpu_catalog()["Quadro P4000"] is QUADRO_P4000
        assert cpu_catalog()["Intel Xeon E5-2680"] is XEON_E5_2680

    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            QUADRO_P4000.core_count = 1

    def test_custom_spec(self):
        gpu = GPUSpec(
            name="toy",
            multiprocessors=1,
            core_count=64,
            max_clock_mhz=1000.0,
            memory_gb=1.0,
            llc_mb=0.5,
            memory_bus="DDR",
            memory_bandwidth_gbs=10.0,
            bus_interface="PCIe",
            memory_speed_mhz=1000.0,
        )
        assert gpu.peak_fp32_flops == pytest.approx(64 * 1e9 * 2)
