"""Integration tests: every table/figure generator runs and its output has
the paper's shape."""

import pytest

from repro.core.suite import standard_suite
from repro.experiments import (
    ALL_EXPERIMENTS,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2_3,
    table4,
    table5_6,
)


@pytest.fixture(scope="module")
def suite():
    return standard_suite()


class TestRegistryOfExperiments:
    def test_all_exhibits_registered(self):
        # 12 evaluation exhibits + the two schematic figures (1 & 3).
        assert len(ALL_EXPERIMENTS) == 13

    def test_every_module_has_generate_and_render(self):
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "generate")
            assert hasattr(module, "render")


class TestTable1:
    def test_counts_match_table_cells(self):
        summary = table1.generate()
        assert summary.training_papers == 16
        assert summary.inference_papers == 25
        assert summary.inference_over_training > 1.5
        assert summary.broader_papers == 11
        assert summary.image_only_over_broader > 2.0

    def test_render_includes_caption(self):
        text = table1.render()
        assert "Training" in text and "Inference" in text
        assert "inference-only 25" in text


class TestTables2And3:
    def test_table2_has_nine_rows(self):
        rows = table2_3.generate_table2()
        assert len(rows) == 9  # 8 models, Seq2Seq as two implementations

    def test_table2_applications(self):
        applications = {row[0] for row in table2_3.generate_table2()}
        assert applications == {
            "Image classification",
            "Machine translation",
            "Object detection",
            "Speech recognition",
            "Adversarial learning",
            "Deep reinforcement learning",
        }

    def test_table3_has_six_rows(self):
        assert len(table2_3.generate_table3()) == 6

    def test_render(self):
        text = table2_3.render()
        assert "ResNet-50" in text and "LibriSpeech" in text


class TestTable4:
    def test_rows_and_render(self):
        rows = table4.generate()
        by_name = {row[0]: row for row in rows}
        assert by_name["Core Count"][1:] == (3840, 1792, 28)
        assert "GDDR5X" in table4.render()


class TestFig2:
    def test_curves(self, suite):
        curves = fig2.generate(suite, points=16)
        assert len(curves) == 10
        for curve in curves:
            values = curve.values
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        by_model = {(c.model, c.framework): c for c in curves}
        # Literature end points (Section 3.3).
        assert by_model[("resnet-50", "mxnet")].final_value > 70.0
        assert by_model[("nmt", "tensorflow")].final_value > 18.0
        assert by_model[("a3c", "mxnet")].final_value > 18.0

    def test_render(self, suite):
        assert "game score" in fig2.render(fig2.generate(suite, points=32))


class TestFigs4To6:
    @pytest.fixture(scope="class")
    def sweep_engine(self, suite, tmp_path_factory):
        """Figs. 4-6 share one batch-sweep grid; a cached engine computes
        it once and the other two generators replay it."""
        from repro.engine.cache import ResultCache

        cache = ResultCache(str(tmp_path_factory.mktemp("figs4-6-cache")))
        return suite.engine(cache=cache)

    @pytest.fixture(scope="class")
    def data4(self, suite, sweep_engine):
        return fig4.generate(suite, engine=sweep_engine)

    @pytest.fixture(scope="class")
    def data5(self, suite, sweep_engine):
        return fig5.generate(suite, engine=sweep_engine)

    @pytest.fixture(scope="class")
    def data6(self, suite, sweep_engine):
        return fig6.generate(suite, engine=sweep_engine)

    def test_fig4_throughput_monotone(self, data4):
        for series in data4["sweeps"]:
            finite = [v for _, v in series.finite()]
            assert finite == sorted(finite), series.model

    def test_fig4_faster_rcnn_rate(self, data4):
        for framework, value in data4["faster_rcnn"].items():
            assert 1.5 < value < 4.0  # paper: 2.3 images/s

    def test_fig5_cnn_high_lstm_low(self, data5):
        by_key = {(s.model, s.framework): s for s in data5["sweeps"]}
        resnet = by_key[("resnet-50", "mxnet")].finite()[-1][1]
        nmt = by_key[("nmt", "tensorflow")].finite()[-1][1]
        assert resnet > 0.9
        assert nmt < 0.75

    def test_fig6_rnn_lowest(self, data6):
        by_key = {(s.model, s.framework): s for s in data6["sweeps"]}
        ds2 = by_key[("deep-speech-2", "mxnet")].finite()[-1][1]
        resnet = by_key[("resnet-50", "mxnet")].finite()[-1][1]
        assert ds2 < 0.25 * resnet

    def test_renders(self, data4, data5, data6):
        assert "Fig. 4" in fig4.render(data4)
        assert "%" in fig5.render(data5)
        assert "%" in fig6.render(data6)


class TestTables5And6:
    @pytest.mark.parametrize("framework", ["tensorflow", "mxnet"])
    def test_five_rows_below_average(self, suite, framework):
        data = table5_6.generate(framework, suite)
        rows = data["rows"]
        assert len(rows) == 5
        assert all(
            row.fp32_utilization < data["average_fp32_utilization"] for row in rows
        )

    def test_bn_kernels_lead_both_tables(self, suite):
        for framework in ("tensorflow", "mxnet"):
            rows = table5_6.generate(framework, suite)["rows"]
            assert "bn_" in rows[0].kernel_name

    def test_framework_specific_elementwise_kernels_appear(self, suite):
        tf_names = " ".join(
            r.kernel_name for r in table5_6.generate("tensorflow", suite)["rows"]
        )
        mx_names = " ".join(
            r.kernel_name for r in table5_6.generate("mxnet", suite)["rows"]
        )
        assert "Eigen" in tf_names
        assert "mxnet" in mx_names

    def test_render_both(self):
        text = table5_6.render_both()
        assert "Table 5" in text and "Table 6" in text


class TestFig7:
    def test_fourteen_bars(self, suite):
        data = fig7.generate(suite)
        assert len(data) == 14

    def test_shape_matches_paper(self, suite):
        data = fig7.generate(suite)
        values = {label: measured for label, measured, _ in data}
        # All but A3C below 15%; A3C the maximum; CNTK image models ~0.
        a3c = values["A3C (MXNet)"]
        assert a3c == max(values.values())
        assert a3c > 15.0
        others = [v for k, v in values.items() if k != "A3C (MXNet)"]
        assert all(v < 15.0 for v in others)
        assert values["ResNet-50 (CNTK)"] < 0.5

    def test_within_factor_two_of_paper(self, suite):
        for label, measured, paper in fig7.generate(suite):
            assert measured < 3 * paper + 1.0, label
            assert measured > paper / 4 - 1.0, label


class TestFig8:
    def test_six_configurations(self, suite):
        assert len(fig8.generate(suite)) == 6

    def test_observation_10_shape(self, suite):
        for comparison in fig8.generate(suite):
            assert comparison.titan_throughput > comparison.p4000_throughput * 0.95
            assert comparison.titan_fp32_utilization < comparison.p4000_fp32_utilization
            assert comparison.titan_gpu_utilization < comparison.p4000_gpu_utilization

    def test_cnn_gains_more_than_rnn(self, suite):
        data = {(c.model, c.framework): c for c in fig8.generate(suite)}
        cnn = data[("resnet-50", "mxnet")].normalized_throughput
        rnn = data[("sockeye", "mxnet")].normalized_throughput
        assert cnn > 1.8  # paper: ~2.07x
        assert rnn < 1.5  # paper: ~1.01x
        assert rnn < cnn


class TestFig9:
    @pytest.fixture(scope="class")
    def profiles(self):
        return fig9.generate()

    def test_every_panel_produced(self, profiles):
        models = {p.model for p in profiles}
        assert len(models) == 9

    @staticmethod
    def _largest_batch_profiles(profiles):
        best = {}
        for profile in profiles:
            key = (profile.model, profile.framework)
            if key not in best or profile.batch_size > best[key].batch_size:
                best[key] = profile
        return best.values()

    def test_feature_maps_dominate_at_reference_batches(self, profiles):
        """Obs. 11 is about realistic (large) batches; at tiny batches the
        constant weight terms weigh more, exactly as the paper's bars show."""
        for profile in self._largest_batch_profiles(profiles):
            assert profile.feature_map_fraction > 0.5, profile.model
            largest_class = max(profile.breakdown().items(), key=lambda kv: kv[1])
            assert largest_class[0] == "feature maps", profile.model

    def test_feature_map_span_matches_observation_11(self, profiles):
        fractions = [
            p.feature_map_fraction for p in self._largest_batch_profiles(profiles)
        ]
        assert min(fractions) > 0.55
        assert max(fractions) < 0.95

    def test_dynamic_only_on_mxnet(self, profiles):
        for profile in profiles:
            dynamic = profile.breakdown()["dynamic"]
            if profile.framework == "MXNet":
                assert dynamic > 0
            else:
                assert dynamic == 0

    def test_render(self, profiles):
        assert "Fig. 9" in fig9.render(profiles)


class TestFig10:
    @pytest.fixture(scope="class")
    def data(self):
        return fig10.generate()

    def test_five_configurations_three_batches(self, data):
        assert len(data) == 5
        for profiles in data.values():
            assert [p.per_gpu_batch for p in profiles] == [8, 16, 32]

    def test_observation_13_shape(self, data):
        at32 = {label: profiles[-1].throughput for label, profiles in data.items()}
        assert at32["2M1G (ethernet)"] < at32["1M1G"]
        assert at32["2M1G (infiniband)"] > 1.5 * at32["1M1G"]
        assert at32["1M4G"] > 3.0 * at32["1M1G"]

    def test_render(self, data):
        assert "Fig. 10" in fig10.render(data)


class TestSchematicFigures:
    def test_fig1_renders_from_live_graph(self):
        from repro.experiments import fig1_fig3

        text = fig1_fig3.render_fig1()
        assert "feed-forward" in text
        assert "weights=" in text
        assert "gradient maps" in text

    def test_fig3_stages_cover_the_toolchain(self):
        from repro.experiments import fig1_fig3

        stages = fig1_fig3.generate_fig3()
        modules = " ".join(module for _, module in stages)
        assert "kernel_trace" in modules
        assert "cpu_sampler" in modules
        assert "memory_profiler" in modules
        assert "assert_comparable" in modules

    def test_combined_render(self):
        from repro.experiments import fig1_fig3

        text = fig1_fig3.render()
        assert "Fig. 1" in text and "Fig. 3" in text
