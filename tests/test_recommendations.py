"""Tests for the optimization advisor."""

import pytest

from repro.core.analysis import AnalysisPipeline
from repro.core.recommendations import advise
from repro.distributed import DataParallelTrainer
from repro.distributed.topology import configuration


@pytest.fixture(scope="module")
def lstm_report():
    return AnalysisPipeline("nmt", "tensorflow").run(64)


@pytest.fixture(scope="module")
def cnn_report():
    return AnalysisPipeline("resnet-50", "mxnet").run(32)


class TestAdvise:
    def test_lstm_gets_fusion_advice_first(self, lstm_report):
        recommendations = advise(lstm_report)
        assert recommendations
        assert recommendations[0].rule == "launch-bound recurrence"
        assert "fuse" in recommendations[0].advice

    def test_every_recommendation_carries_evidence(self, lstm_report):
        for recommendation in advise(lstm_report):
            assert recommendation.evidence
            assert recommendation.priority >= 1

    def test_cnn_gets_memory_advice_not_fusion(self, cnn_report):
        recommendations = advise(cnn_report)
        rules = [r.rule for r in recommendations]
        assert "launch-bound recurrence" not in rules
        assert "feature-map-dominated footprint" in rules

    def test_priorities_sorted(self, lstm_report):
        recommendations = advise(lstm_report)
        priorities = [r.priority for r in recommendations]
        assert priorities == sorted(priorities)

    def test_a3c_gets_environment_advice(self):
        report = AnalysisPipeline("a3c", "mxnet").run(128)
        rules = [r.rule for r in advise(report)]
        assert "environment-bound training" in rules

    def test_communication_bound_cluster_flagged(self, cnn_report):
        trainer = DataParallelTrainer(
            "resnet-50", "mxnet", configuration("2M1G (ethernet)")
        )
        profile = trainer.run_iteration(32)
        recommendations = advise(cnn_report, distributed_profile=profile)
        rules = [r.rule for r in recommendations]
        assert "communication-bound scaling" in rules
        top = recommendations[0]
        assert top.priority == 1

    def test_fast_fabric_not_flagged(self, cnn_report):
        trainer = DataParallelTrainer("resnet-50", "mxnet", configuration("1M2G"))
        profile = trainer.run_iteration(32)
        rules = [r.rule for r in advise(cnn_report, distributed_profile=profile)]
        assert "communication-bound scaling" not in rules

    def test_str_rendering(self, lstm_report):
        text = str(advise(lstm_report)[0])
        assert text.startswith("[P1]")
