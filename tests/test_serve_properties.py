"""Property-based tests for serve admission control.

A seeded generator produces random operation sequences (admits across
random tenants/priorities, interleaved picks); a checker replays each
sequence against :class:`FairScheduler` and asserts the admission
invariants that the load generator and the server both lean on:

- **depth bounds**: the global queue never exceeds ``max_depth`` and no
  tenant exceeds ``tenant_depth`` — every overflow surfaces as a typed
  rejection instead;
- **conservation**: admits - picks == final depth, and every admitted
  job is picked exactly once when drained;
- **no starvation**: while a class stays non-empty it is picked at
  least once per ``total_weight`` consecutive picks (the smooth-WRR
  service guarantee);
- **tenant FIFO**: within one (class, tenant) lane, jobs come out in
  submission order.

When a property fails the harness *shrinks* the operation sequence —
greedily dropping chunks, then single ops, while the failure reproduces
— and reports the minimal counterexample.  The shrinker itself is
exercised against a deliberately broken scheduler subclass.
"""

from __future__ import annotations

import random

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionError,
    FairScheduler,
    QueuedJob,
)

SEED = 20260807
CASES = 40
TENANTS = ("acme", "beta", "corp", "dune")


def _gen_ops(rng: random.Random, length: int):
    """One random op sequence: ('admit', tenant, priority) | ('pick',)."""
    ops = []
    classes = tuple(name for name, _ in AdmissionConfig().weights)
    for i in range(length):
        if rng.random() < 0.65:
            ops.append(
                ("admit", rng.choice(TENANTS), rng.choice(classes), f"j{i}")
            )
        else:
            ops.append(("pick",))
    return ops


def _gen_config(rng: random.Random) -> AdmissionConfig:
    tenant_depth = rng.randrange(1, 6)
    return AdmissionConfig(
        max_depth=rng.randrange(tenant_depth, 13),
        tenant_depth=tenant_depth,
    )


def check_admission_invariants(config, ops, scheduler_cls=FairScheduler):
    """Replay ``ops``; return None if every invariant holds, else a
    human-readable violation string."""
    scheduler = scheduler_cls(config)
    total_weight = sum(weight for _, weight in config.weights)
    admitted, picked = [], []
    picks_since_service = {name: 0 for name, _ in config.weights}
    for op in ops:
        if op[0] == "admit":
            _, tenant, priority, job_id = op
            before = len(scheduler)
            tenant_before = scheduler.depth_of(tenant)
            try:
                scheduler.admit(
                    QueuedJob(job_id=job_id, tenant=tenant, priority=priority)
                )
            except AdmissionError as exc:
                if exc.code == "queue-full" and before < config.max_depth:
                    return f"spurious queue-full at depth {before}"
                if (
                    exc.code == "tenant-quota"
                    and tenant_before < config.tenant_depth
                ):
                    return (
                        f"spurious tenant-quota for {tenant} "
                        f"at depth {tenant_before}"
                    )
                continue
            admitted.append((job_id, tenant, priority))
        else:
            job = scheduler.pick()
            if job is None:
                if len(scheduler) != 0:
                    return f"pick returned None at depth {len(scheduler)}"
                continue
            picked.append((job.job_id, job.tenant, job.priority))
            # Starvation check: every backlogged class must be served
            # within total_weight consecutive picks.
            depths = scheduler.class_depths()
            for name, count in picks_since_service.items():
                if depths.get(name, 0) > 0 and name != job.priority:
                    picks_since_service[name] = count + 1
                    if picks_since_service[name] > total_weight:
                        return f"class {name} starved for {count + 1} picks"
            picks_since_service[job.priority] = 0
        if len(scheduler) > config.max_depth:
            return f"depth {len(scheduler)} exceeds bound {config.max_depth}"
        for tenant in TENANTS:
            if scheduler.depth_of(tenant) > config.tenant_depth:
                return (
                    f"tenant {tenant} depth {scheduler.depth_of(tenant)} "
                    f"exceeds bound {config.tenant_depth}"
                )
    # Drain and prove conservation + per-lane FIFO.
    while (job := scheduler.pick()) is not None:
        picked.append((job.job_id, job.tenant, job.priority))
    if sorted(picked) != sorted(admitted):
        return (
            f"conservation broken: admitted {len(admitted)}, "
            f"picked {len(picked)}"
        )
    lanes: dict = {}
    for job_id, tenant, priority in picked:
        lanes.setdefault((priority, tenant), []).append(job_id)
    expected: dict = {}
    for job_id, tenant, priority in admitted:
        expected.setdefault((priority, tenant), []).append(job_id)
    for lane, order in lanes.items():
        if order != expected[lane]:
            return f"lane {lane} out of FIFO order: {order}"
    return None


def shrink_ops(config, ops, check, scheduler_cls=FairScheduler):
    """Greedy delta-debug: drop halves, then quarters, ... then single
    ops, keeping any reduction that still fails ``check``."""
    current = list(ops)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i, reduced = 0, False
        while i < len(current):
            candidate = current[:i] + current[i + chunk:]
            if candidate and check(config, candidate, scheduler_cls):
                current = candidate
                reduced = True
            else:
                i += chunk
        chunk = chunk // 2 if not reduced else chunk
    return current


class TestAdmissionProperties:
    def test_invariants_hold_over_seeded_sequences(self):
        rng = random.Random(SEED)
        for case in range(CASES):
            config = _gen_config(rng)
            ops = _gen_ops(rng, rng.randrange(10, 120))
            violation = check_admission_invariants(config, ops)
            if violation is not None:
                minimal = shrink_ops(
                    config,
                    ops,
                    lambda c, o, s: check_admission_invariants(c, o, s)
                    is not None,
                )
                raise AssertionError(
                    f"case {case}: {violation}\n"
                    f"minimal counterexample ({len(minimal)} ops): {minimal}"
                )

    def test_saturated_queue_only_rejects_typed(self):
        """Hammer a tiny queue: every refusal carries a known code."""
        rng = random.Random(SEED + 1)
        config = AdmissionConfig(max_depth=3, tenant_depth=2)
        scheduler = FairScheduler(config)
        codes = set()
        for i in range(200):
            try:
                scheduler.admit(
                    QueuedJob(
                        job_id=f"j{i}",
                        tenant=rng.choice(TENANTS),
                        priority=rng.choice(("interactive", "standard", "batch")),
                    )
                )
            except AdmissionError as exc:
                codes.add(exc.code)
            if rng.random() < 0.2:
                scheduler.pick()
        assert codes <= {"queue-full", "tenant-quota"}
        assert codes  # a 3-deep queue under 200 submits must refuse some


class _DepthLeakScheduler(FairScheduler):
    """Deliberately broken: forgets the global depth check, so the
    queue grows past max_depth instead of raising queue-full."""

    def admit(self, job):
        if len(self) >= self.config.max_depth:
            # Bug under test: waves the job through anyway.
            pass
        saved = self.config.max_depth
        object.__setattr__(self.config, "max_depth", 1 << 30)
        try:
            return super().admit(job)
        finally:
            object.__setattr__(self.config, "max_depth", saved)


class TestShrinker:
    def test_shrinker_finds_minimal_depth_counterexample(self):
        """Against the depth-leak mutant the checker fails, and the
        shrinker reduces the sequence to the bare overflow prefix."""
        rng = random.Random(SEED + 2)
        config = AdmissionConfig(max_depth=2, tenant_depth=2)
        found = None
        for _ in range(CASES):
            ops = _gen_ops(rng, rng.randrange(20, 80))
            violation = check_admission_invariants(
                config, ops, scheduler_cls=_DepthLeakScheduler
            )
            if violation is not None:
                found = ops
                break
        assert found is not None, "mutant never violated: generator too weak"
        minimal = shrink_ops(
            config,
            found,
            lambda c, o, s: check_admission_invariants(c, o, s) is not None,
            scheduler_cls=_DepthLeakScheduler,
        )
        # Minimal repro: exactly max_depth + 1 admits, no picks.
        assert len(minimal) == config.max_depth + 1
        assert all(op[0] == "admit" for op in minimal)
        # And the minimal sequence still reproduces on the mutant while
        # passing on the real scheduler.
        assert check_admission_invariants(
            config, minimal, scheduler_cls=_DepthLeakScheduler
        )
        assert check_admission_invariants(config, minimal) is None

    def test_shrinker_preserves_failure(self):
        # Spread admits across tenants so the (still intact) per-tenant
        # quota never masks the mutant's missing global depth check.
        config = AdmissionConfig(max_depth=2, tenant_depth=2)
        ops = [
            ("admit", TENANTS[i % len(TENANTS)], "standard", f"j{i}")
            for i in range(10)
        ]
        minimal = shrink_ops(
            config,
            ops,
            lambda c, o, s: check_admission_invariants(c, o, s) is not None,
            scheduler_cls=_DepthLeakScheduler,
        )
        assert check_admission_invariants(
            config, minimal, scheduler_cls=_DepthLeakScheduler
        )
        assert len(minimal) <= len(ops)
