"""Unit tests closing the coverage gaps in three leaf modules: CSV/trace
export (:mod:`repro.profiling.export`), the power model
(:mod:`repro.hardware.energy`), and the HTML report builder
(:mod:`repro.core.html_report`)."""

from __future__ import annotations

import io

import pytest

from repro.core.html_report import _ORDER, build_report, write_report
from repro.core.metrics import IterationMetrics
from repro.experiments import ALL_EXPERIMENTS
from repro.hardware.devices import QUADRO_P4000, TITAN_XP
from repro.hardware.energy import (
    _IDLE_FRACTION,
    HOST_POWER_WATTS,
    EnergyProfile,
    energy_profile,
    tdp_of,
)
from repro.profiling.export import _round_us, metrics_to_csv
from repro.profiling.kernel_trace import trace_from_profile
from repro.profiling.export import kernel_stats_to_csv


@pytest.fixture(scope="module")
def a3c_profile(profile_cache):
    return profile_cache("a3c", "mxnet", 8)


class TestRoundUs:
    def test_fixed_nanosecond_precision(self):
        assert _round_us(1.0) == 1_000_000.0
        assert _round_us(1.2345678912e-3) == 1234.568
        assert _round_us(0.0) == 0.0
        # Idempotent: re-rounding an already-rounded value is a no-op.
        assert _round_us(_round_us(3.14159e-4) / 1e6) == _round_us(3.14159e-4)


class TestMetricsCSVDestinations:
    def test_writes_to_path(self, a3c_profile, tmp_path):
        path = tmp_path / "metrics.csv"
        text = metrics_to_csv([IterationMetrics.from_profile(a3c_profile)], str(path))
        assert path.read_text() == text

    def test_writes_to_buffer(self, a3c_profile):
        buffer = io.StringIO()
        text = metrics_to_csv([IterationMetrics.from_profile(a3c_profile)], buffer)
        assert buffer.getvalue() == text

    def test_empty_list_yields_header_only(self):
        lines = metrics_to_csv([]).strip().splitlines()
        assert len(lines) == 1
        assert lines[0].split(",")[:2] == ["model", "framework"]


class TestKernelStatsOrdering:
    def test_rows_sorted_by_total_time_descending(self, a3c_profile):
        text = kernel_stats_to_csv(trace_from_profile(a3c_profile))
        rows = text.strip().splitlines()[1:]
        totals = [float(row.split(",")[2]) for row in rows]
        assert totals == sorted(totals, reverse=True)
        # launches * mean == total for every row (CSV is self-consistent).
        for row in rows:
            _, launches, total, mean, util = row.split(",")
            assert float(total) == pytest.approx(
                int(launches) * float(mean), rel=1e-3
            )
            assert 0.0 <= float(util) <= 1.0


class TestEnergyModel:
    def test_power_model_arithmetic(self, a3c_profile):
        energy = energy_profile(a3c_profile, QUADRO_P4000)
        tdp = tdp_of(QUADRO_P4000)
        idle = _IDLE_FRACTION * tdp
        expected_gpu = idle + (tdp - idle) * a3c_profile.gpu_utilization
        assert energy.gpu_power_watts == pytest.approx(expected_gpu)
        assert energy.total_power_watts == pytest.approx(
            expected_gpu + HOST_POWER_WATTS
        )
        assert energy.energy_per_iteration_j == pytest.approx(
            energy.total_power_watts * a3c_profile.iteration_time_s
        )

    def test_exclude_host_drops_constant_draw(self, a3c_profile):
        with_host = energy_profile(a3c_profile, QUADRO_P4000)
        gpu_only = energy_profile(a3c_profile, QUADRO_P4000, include_host=False)
        assert gpu_only.gpu_power_watts == pytest.approx(with_host.gpu_power_watts)
        assert with_host.total_power_watts - gpu_only.total_power_watts == (
            pytest.approx(HOST_POWER_WATTS)
        )
        # Less power over the same iteration: strictly less energy,
        # strictly more samples per joule.
        assert gpu_only.energy_per_iteration_j < with_host.energy_per_iteration_j
        assert gpu_only.samples_per_joule > with_host.samples_per_joule

    def test_idle_power_bounds(self, a3c_profile):
        for gpu in (QUADRO_P4000, TITAN_XP):
            energy = energy_profile(a3c_profile, gpu)
            tdp = tdp_of(gpu)
            assert _IDLE_FRACTION * tdp <= energy.gpu_power_watts <= tdp

    def test_joules_per_sample_inverse_and_zero_guard(self, a3c_profile):
        energy = energy_profile(a3c_profile, QUADRO_P4000)
        assert energy.joules_per_sample == pytest.approx(
            1.0 / energy.samples_per_joule
        )
        degenerate = EnergyProfile(
            model="x",
            device="y",
            batch_size=1,
            gpu_power_watts=0.0,
            total_power_watts=0.0,
            energy_per_iteration_j=0.0,
            samples_per_joule=0.0,
            throughput=0.0,
        )
        assert degenerate.joules_per_sample == float("inf")


class TestHTMLReportBuilder:
    def test_order_matches_experiment_registry(self):
        assert sorted(_ORDER) == sorted(ALL_EXPERIMENTS)
        assert len(_ORDER) == 13

    def test_unknown_exhibit_named_in_error(self):
        with pytest.raises(KeyError, match="fig99"):
            build_report(observations=False, exhibits=["table1", "fig99"])

    def test_minimal_report_is_a_complete_document(self):
        text = build_report(observations=False, exhibits=[])
        assert text.startswith("<!doctype html>")
        assert text.endswith("</body></html>")
        assert "Benchmarking and Analyzing Deep Neural Network Training" in text
        assert "<h2>" not in text  # no observations, no exhibits

    def test_write_report_round_trips(self, tmp_path):
        path = tmp_path / "report.html"
        write_report(str(path), observations=False, exhibits=[])
        content = path.read_text()
        assert "<footer>generated " in content
