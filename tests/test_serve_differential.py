"""Differential tests: the serve path must be a pure transport.

A job submitted through :class:`BenchmarkServer` must yield records that
are byte-identical (canonical JSON) to calling :class:`SweepEngine`
directly with the same specs — cold cache, warm cache, and when two
tenants race the same job fingerprint.  The coalescing case additionally
proves *single computation*: the engine's stats show the work ran once
while both tenants still received full event streams.
"""

from __future__ import annotations

import asyncio

from repro.engine.cache import ResultCache
from repro.engine.executor import SweepEngine
from repro.engine.keys import canonical_json
from repro.engine.merge import grid_record
from repro.hardware.devices import get_gpu
from repro.serve.jobs import JobRequest


def _direct_records(request: JobRequest, cache_dir: str) -> str:
    """Canonical JSON of the same job run straight on the engine."""
    engine = SweepEngine(
        jobs=1, cache=ResultCache(cache_dir), gpu=get_gpu(request.gpu)
    )
    specs = request.point_specs()
    points = engine.run_grid(specs)
    return canonical_json(
        [grid_record(spec, point) for spec, point in zip(specs, points)]
    )


async def _serve_records(server, request, tenant="acme") -> str:
    handle = await server.submit(request, tenant=tenant)
    result = await handle.result()
    return canonical_json(result["records"])


_SWEEP = JobRequest(
    kind="sweep", model="alexnet", framework="mxnet", batch_sizes=(4, 8)
)


class TestByteIdentity:
    def test_cold_cache_matches_direct(self, serve_runtime, tmp_path):
        server = serve_runtime.server(workers=1)

        async def scenario():
            async with server:
                return await _serve_records(server, _SWEEP)

        served = serve_runtime.run(scenario())
        direct = _direct_records(_SWEEP, str(tmp_path / "direct-cold"))
        assert served == direct

    def test_warm_cache_matches_direct_and_cold(self, serve_runtime, tmp_path):
        server = serve_runtime.server(workers=1)

        async def scenario():
            async with server:
                cold = await _serve_records(server, _SWEEP)
                warm = await _serve_records(server, _SWEEP)
                return cold, warm

        cold, warm = serve_runtime.run(scenario())
        assert cold == warm
        assert warm == _direct_records(_SWEEP, str(tmp_path / "direct-warm"))

    def test_concurrent_duplicates_coalesce_to_one_computation(
        self, serve_runtime, tmp_path
    ):
        server = serve_runtime.server(workers=2)

        async def collect(handle):
            events = []
            async for event in handle.events():
                events.append(event)
            return events, await handle.result()

        async def scenario():
            async with server:
                handles = await asyncio.gather(
                    server.submit(_SWEEP, tenant="acme", priority="standard"),
                    server.submit(_SWEEP, tenant="beta", priority="batch"),
                )
                results = await asyncio.gather(
                    *(collect(handle) for handle in handles)
                )
                return handles, results

        handles, results = serve_runtime.run(scenario())
        # Both tenants saw a full stream ending in identical records.
        (events_a, result_a), (events_b, result_b) = results
        assert canonical_json(result_a["records"]) == canonical_json(
            result_b["records"]
        )
        assert canonical_json(result_a["records"]) == _direct_records(
            _SWEEP, str(tmp_path / "direct-dup")
        )
        # Exactly one handle is the coalesced follower, and each stream
        # carries per-point events under its own job id.
        assert sorted(h.coalesced for h in handles) == [False, True]
        for handle, (events, _) in zip(handles, results):
            point_events = [e for e in events if e.kind == "point"]
            assert len(point_events) == len(_SWEEP.point_specs())
            assert all(e.job_id == handle.job_id for e in events)
        # Single computation: the shared engine computed each point once.
        engines = list(server._engines.values())
        assert len(engines) == 1
        stats = engines[0].stats
        assert stats.points_computed == len(_SWEEP.point_specs())


class TestTransportPurity:
    def test_tenant_and_priority_do_not_shard_results(
        self, serve_runtime
    ):
        """Different tenant/priority on the same work share one
        fingerprint, so the second submit is a pure cache replay."""
        server = serve_runtime.server(workers=1)

        async def scenario():
            async with server:
                first = await _serve_records(server, _SWEEP, tenant="acme")
                second = await _serve_records(server, _SWEEP, tenant="zeta")
                return first, second

        first, second = serve_runtime.run(scenario())
        assert first == second
        assert server.cache.hits >= len(_SWEEP.point_specs())
