"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.devices import QUADRO_P4000, TITAN_XP
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import AllocationTag, GPUMemoryAllocator, OutOfMemoryError
from repro.hardware.roofline import RooflineModel, speed_of_light_time
from repro.kernels.base import Kernel, KernelCategory
from repro.kernels.conv import ConvShape, conv2d_forward, conv_workspace_bytes
from repro.kernels.gemm import gemm
from repro.tensor.tensor import Tensor, _unbroadcast

_dims = st.integers(min_value=1, max_value=512)
_roofline = RooflineModel(QUADRO_P4000)


class TestRooflineProperties:
    @given(m=_dims, n=_dims, k=_dims)
    @settings(max_examples=60, deadline=None)
    def test_gemm_time_positive_and_bounded_below_by_speed_of_light(self, m, n, k):
        kernel = gemm(m, n, k)
        timing = _roofline.time_kernel(kernel)
        assert timing.duration_s > 0
        assert timing.duration_s >= speed_of_light_time(kernel, QUADRO_P4000)

    @given(m=_dims, n=_dims, k=_dims, factor=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_scaling_batch_never_reduces_time(self, m, n, k, factor):
        small = _roofline.time_kernel(gemm(m, n, k))
        large = _roofline.time_kernel(gemm(m * factor, n, k))
        assert large.duration_s >= small.duration_s - 1e-12

    @given(m=_dims, n=_dims, k=_dims)
    @settings(max_examples=60, deadline=None)
    def test_fp32_utilization_in_unit_interval(self, m, n, k):
        timing = _roofline.time_kernel(gemm(m, n, k))
        assert 0.0 <= timing.fp32_utilization <= 1.0

    @given(m=_dims, n=_dims, k=_dims)
    @settings(max_examples=40, deadline=None)
    def test_wider_device_faster_at_the_roofline(self, m, n, k):
        """The Titan Xp's roofline term is never slower; its *total* time can
        exceed the P4000's only by the occupancy-ramp difference (tiny
        kernels saturate a wide device worse — Observation 10)."""
        kernel = gemm(m, n, k)
        p4 = _roofline.time_kernel(kernel)
        xp = RooflineModel(TITAN_XP).time_kernel(kernel)
        assert max(xp.compute_time_s, xp.memory_time_s) <= max(
            p4.compute_time_s, p4.memory_time_s
        ) * 1.001
        ramp_delta = RooflineModel(TITAN_XP)._ramp_s - _roofline._ramp_s
        assert xp.duration_s <= p4.duration_s + ramp_delta + 1e-12


class TestAllocatorProperties:
    @given(
        sizes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**7),
                st.sampled_from(list(AllocationTag)),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_peaks_bound_current_and_capacity(self, sizes):
        allocator = GPUMemoryAllocator(capacity_bytes=10**8)
        handles = []
        for size, tag in sizes:
            try:
                handles.append(allocator.allocate(size, tag))
            except OutOfMemoryError:
                break
        snapshot = allocator.snapshot()
        assert allocator.allocated_bytes <= allocator.capacity_bytes + 1e-6
        assert snapshot.peak_total <= allocator.capacity_bytes + 1e-6
        for tag in AllocationTag:
            assert snapshot.peak_by_tag[tag] >= allocator.current_bytes(tag) - 1e-6

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_free_everything_returns_to_zero(self, sizes):
        allocator = GPUMemoryAllocator(capacity_bytes=10**9)
        handles = [
            allocator.allocate(size, AllocationTag.WORKSPACE) for size in sizes
        ]
        for handle in handles:
            allocator.free(handle)
        assert allocator.allocated_bytes == pytest.approx(0.0)

    @given(
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fractions_sum_to_one_when_nonempty(self, fractions):
        allocator = GPUMemoryAllocator(capacity_bytes=10**9)
        total = sum(fractions)
        if total == 0:
            return
        for fraction, tag in zip(fractions, AllocationTag):
            allocator.allocate(fraction * 1e6, tag)
        snapshot = allocator.snapshot()
        assert sum(snapshot.fraction(tag) for tag in AllocationTag) == pytest.approx(
            1.0
        )


class TestConvShapeProperties:
    @given(
        batch=st.integers(1, 16),
        channels=st.integers(1, 64),
        out_channels=st.integers(1, 64),
        size=st.integers(7, 64),
        kernel=st.sampled_from((1, 3, 5, 7)),
        stride=st.sampled_from((1, 2)),
    )
    @settings(max_examples=60, deadline=None)
    def test_flops_and_workspace_nonnegative(
        self, batch, channels, out_channels, size, kernel, stride
    ):
        shape = ConvShape(
            batch, channels, out_channels, size, size, kernel, kernel, stride, kernel // 2
        )
        assert conv2d_forward(shape).flops > 0
        assert conv_workspace_bytes(shape) >= 0

    @given(
        batch=st.integers(1, 8),
        size=st.integers(8, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_elements_scale_linearly_with_batch(self, batch, size):
        base = ConvShape(1, 4, 8, size, size, 3, 3, 1, 1)
        scaled = ConvShape(batch, 4, 8, size, size, 3, 3, 1, 1)
        assert scaled.output_elements == batch * base.output_elements


class TestInterconnectProperties:
    @given(
        bandwidth=st.floats(min_value=0.01, max_value=100.0),
        latency=st.floats(min_value=0.0, max_value=1e-3),
        a=st.floats(min_value=0.0, max_value=1e9),
        b=st.floats(min_value=0.0, max_value=1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_is_subadditive_and_monotone(self, bandwidth, latency, a, b):
        link = Interconnect("x", bandwidth_gbs=bandwidth, latency_s=latency)
        combined = link.transfer_time(a + b)
        split = link.transfer_time(a) + link.transfer_time(b)
        assert combined <= split + 1e-9  # one message beats two
        assert link.transfer_time(a + b) >= link.transfer_time(a) - 1e-12


class TestTensorProperties:
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, rows, cols):
        gradient = np.ones((rows, cols), dtype=np.float32)
        reduced = _unbroadcast(gradient, (1, cols))
        assert reduced.shape == (1, cols)
        assert np.allclose(reduced, rows)

    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        x = Tensor(np.array(values, dtype=np.float32), requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_log_exp_roundtrip_gradient(self, values):
        x = Tensor(np.array(values, dtype=np.float32), requires_grad=True)
        x.log().exp().sum().backward()
        assert np.allclose(x.grad, 1.0, atol=1e-3)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_softmax_gradient_rows_sum_to_zero(self, seed):
        from repro.tensor import functional as F

        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(0, 2, size=(3, 5)).astype(np.float32), requires_grad=True)
        F.log_softmax(x)[np.arange(3), np.array([0, 1, 2])].sum().backward()
        assert np.allclose(x.grad.sum(axis=1), 0.0, atol=1e-4)


class TestKernelScalingProperties:
    @given(
        flops=st.floats(min_value=1.0, max_value=1e12),
        traffic=st.floats(min_value=1.0, max_value=1e12),
        factor=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scaled_preserves_intensity(self, flops, traffic, factor):
        kernel = Kernel("k", KernelCategory.GEMM, flops, traffic)
        scaled = kernel.scaled(factor)
        assert scaled.arithmetic_intensity == pytest.approx(
            kernel.arithmetic_intensity, rel=1e-6
        )
