"""Unit tests for the Layer/LayerGraph IR."""

import pytest

from repro.graph.layer import Layer, LayerGraph
from repro.kernels.base import Kernel, KernelCategory


def _kernel(name="k", flops=10.0, bytes_=40.0):
    return Kernel(name, KernelCategory.ELEMENTWISE, flops, bytes_)


class TestLayer:
    def test_byte_accounting(self):
        layer = Layer("l", "conv", weight_elements=10, output_elements=20)
        assert layer.weight_bytes == 40
        assert layer.output_bytes == 80
        assert layer.stash_bytes == 80

    def test_inplace_layers_stash_nothing(self):
        layer = Layer("relu", "activation", output_elements=100, inplace=True)
        assert layer.output_bytes == 400
        assert layer.stash_bytes == 0

    def test_flops_sum_both_passes(self):
        layer = Layer(
            "l",
            "dense",
            forward_kernels=[_kernel(flops=10)],
            backward_kernels=[_kernel(flops=20), _kernel(flops=30)],
        )
        assert layer.flops == 60
        assert layer.kernel_count == 3

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Layer("l", "conv", weight_elements=-1)
        with pytest.raises(ValueError):
            Layer("l", "conv", workspace_bytes=-1.0)


class TestLayerGraph:
    def test_duplicate_names_rejected(self):
        graph = LayerGraph("m", batch_size=1)
        graph.add(Layer("a", "conv"))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(Layer("a", "conv"))

    def test_duplicates_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duplicate"):
            LayerGraph("m", batch_size=1, layers=[Layer("a", "conv"), Layer("a", "bn")])

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            LayerGraph("m", batch_size=0)

    def test_iteration_kernel_order_is_forward_then_reverse_backward(self):
        first = Layer(
            "first",
            "conv",
            forward_kernels=[_kernel("first_fw")],
            backward_kernels=[_kernel("first_bw")],
        )
        second = Layer(
            "second",
            "conv",
            forward_kernels=[_kernel("second_fw")],
            backward_kernels=[_kernel("second_bw")],
        )
        graph = LayerGraph("m", 1, layers=[first, second], extra_kernels=[_kernel("loss")])
        names = [k.name for k in graph.iteration_kernels()]
        assert names == ["first_fw", "second_fw", "loss", "second_bw", "first_bw"]

    def test_totals(self):
        graph = LayerGraph(
            "m",
            2,
            layers=[
                Layer("a", "conv", weight_elements=10, output_elements=5, workspace_bytes=16.0),
                Layer("b", "bn", weight_elements=2, output_elements=5),
            ],
        )
        assert graph.total_weight_elements == 12
        assert graph.total_weight_bytes == 48
        assert graph.total_feature_map_bytes == 40
        assert graph.total_workspace_bytes == 16.0
        assert graph.layer_count == 2

    def test_effective_samples_defaults_to_batch(self):
        graph = LayerGraph("m", batch_size=7)
        assert graph.effective_samples == 7.0

    def test_effective_samples_override(self):
        graph = LayerGraph("m", batch_size=4, samples_per_iteration=51.2)
        assert graph.effective_samples == 51.2

    def test_dominant_layer_kind(self):
        graph = LayerGraph(
            "m",
            1,
            layers=[
                Layer("a", "conv", forward_kernels=[_kernel(flops=1000)]),
                Layer("b", "lstm", forward_kernels=[_kernel(flops=10)]),
            ],
        )
        assert graph.dominant_layer_kind() == "conv"

    def test_dominant_layer_kind_of_empty_graph(self):
        assert LayerGraph("m", 1).dominant_layer_kind() == "none"

    def test_iteration_flops(self):
        graph = LayerGraph(
            "m", 1, layers=[Layer("a", "conv", forward_kernels=[_kernel(flops=5)])]
        )
        assert graph.iteration_flops() == 5
