"""Tests for the time-to-accuracy scaling study."""

import pytest

from repro.distributed.time_to_accuracy import (
    adjusted_samples_needed,
    linear_scaled_learning_rate,
    samples_to_accuracy,
    scaling_point,
    scaling_study,
)
from repro.distributed.topology import configuration
from repro.training.convergence import FIG2_MODELS


class TestStatisticalEfficiencyModel:
    def test_samples_to_accuracy_inverts_the_curve(self):
        samples = samples_to_accuracy("resnet-50", 0.95)
        model = FIG2_MODELS["resnet-50"]
        target = model.initial + 0.95 * (model.final - model.initial)
        assert model.value_at(samples) == pytest.approx(target, abs=0.05)

    def test_higher_target_needs_more_samples(self):
        assert samples_to_accuracy("resnet-50", 0.97) > samples_to_accuracy(
            "resnet-50", 0.90
        )

    def test_target_fraction_validation(self):
        with pytest.raises(ValueError):
            samples_to_accuracy("resnet-50", 1.0)

    def test_small_batches_scale_freely(self):
        base = adjusted_samples_needed("resnet-50", 32, 32)
        doubled = adjusted_samples_needed("resnet-50", 64, 32)
        assert doubled / base < 1.01  # far below the 8192 critical batch

    def test_huge_batches_pay_a_penalty(self):
        base = adjusted_samples_needed("resnet-50", 32, 32)
        huge = adjusted_samples_needed("resnet-50", 32768, 32)
        assert huge > 2.0 * base

    def test_penalty_monotone_in_batch(self):
        values = [
            adjusted_samples_needed("resnet-50", batch, 32)
            for batch in (32, 256, 2048, 16384)
        ]
        assert values == sorted(values)

    def test_linear_scaling_rule(self):
        base = linear_scaled_learning_rate("resnet-50", 32, 32)
        scaled = linear_scaled_learning_rate("resnet-50", 256, 32)
        assert scaled == pytest.approx(8 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_samples_needed("resnet-50", 0, 32)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return scaling_study("resnet-50", "mxnet", per_gpu_batch=32)

    def test_covers_fig10_configurations(self, study):
        assert len(study) == 5
        labels = {point.configuration for point in study}
        assert "1M1G" in labels

    def test_single_machine_scaling_still_wins_on_time_to_accuracy(self, study):
        """At these scales (<= 4 GPUs, global batch 128 << 8192), hardware
        efficiency dominates: more GPUs reach accuracy sooner."""
        by_label = {point.configuration: point for point in study}
        assert (
            by_label["1M4G"].time_to_accuracy_s
            < by_label["1M2G"].time_to_accuracy_s
            < by_label["1M1G"].time_to_accuracy_s
        )

    def test_slow_ethernet_loses_despite_more_hardware(self, study):
        by_label = {point.configuration: point for point in study}
        eth = next(p for l, p in by_label.items() if "GbE" in l)
        assert eth.time_to_accuracy_s > by_label["1M1G"].time_to_accuracy_s

    def test_learning_rate_scales_with_workers(self, study):
        by_label = {point.configuration: point for point in study}
        assert by_label["1M4G"].learning_rate == pytest.approx(
            4 * by_label["1M1G"].learning_rate
        )

    def test_statistical_penalty_erodes_scaling_at_extreme_batch(self):
        """Past the critical batch, doubling GPUs stops halving
        time-to-accuracy even with a perfect network."""
        small = scaling_point(
            "resnet-50", "mxnet", configuration("1M1G"), 32, base_batch=32
        )
        # Hypothetical: same throughput per GPU at an enormous global batch.
        huge_global = adjusted_samples_needed("resnet-50", 65536, 32)
        base_needed = small.samples_needed
        assert huge_global > 5.0 * base_needed
