"""Unit tests for the autodiff engine: numeric gradient checks on every
primitive, broadcasting, and graph mechanics."""

import numpy as np
import pytest

from repro.tensor.tensor import Tensor, concatenate, no_grad, stack


def numeric_gradient(fn, array, index, eps=1e-3):
    """Central-difference gradient of scalar ``fn`` w.r.t. array[index]."""
    original = array[index]
    array[index] = original + eps
    hi = fn()
    array[index] = original - eps
    lo = fn()
    array[index] = original
    return (hi - lo) / (2 * eps)


def check_gradients(build, *shapes, seed=0, tol=2e-2):
    """Compare analytic and numeric gradients for a scalar-valued graph."""
    rng = np.random.default_rng(seed)
    tensors = [
        Tensor(rng.normal(0.5, 0.8, size=shape).astype(np.float32), requires_grad=True)
        for shape in shapes
    ]
    out = build(*tensors)
    out.backward()
    for tensor in tensors:
        assert tensor.grad is not None, "missing gradient"
        flat_indices = [
            np.unravel_index(i, tensor.shape)
            for i in range(0, tensor.data.size, max(1, tensor.data.size // 5))
        ]
        for index in flat_indices:
            numeric = numeric_gradient(
                lambda: float(build(*tensors).data.sum()), tensor.data, index
            )
            analytic = tensor.grad[index]
            assert analytic == pytest.approx(numeric, rel=tol, abs=tol), (
                tensor.shape,
                index,
            )


class TestGradChecks:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), (2, 3), (2, 3))

    def test_div(self):
        check_gradients(lambda a, b: (a / (b * b + 1.0)).sum(), (4,), (4,))

    def test_matmul(self):
        check_gradients(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))

    def test_pow(self):
        check_gradients(lambda a: ((a * a + 1.0) ** 1.5).sum(), (5,))

    def test_exp_log(self):
        check_gradients(lambda a: ((a * a + 1.0).log().exp()).sum(), (4,))

    def test_sigmoid_tanh_relu(self):
        check_gradients(lambda a: a.sigmoid().sum(), (6,))
        check_gradients(lambda a: a.tanh().sum(), (6,))
        check_gradients(lambda a: (a + 0.01).relu().sum(), (6,))

    def test_reductions(self):
        check_gradients(lambda a: a.sum(axis=0).sum(), (3, 4))
        check_gradients(lambda a: a.mean(axis=1).sum(), (3, 4))

    def test_reshape_transpose(self):
        check_gradients(lambda a: (a.reshape(6, 2).transpose() * 2.0).sum(), (3, 4))

    def test_getitem(self):
        check_gradients(lambda a: (a[1:, :2] * 3.0).sum(), (3, 4))

    def test_concatenate(self):
        check_gradients(
            lambda a, b: (concatenate([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2)
        )

    def test_stack(self):
        check_gradients(lambda a, b: (stack([a, b]) ** 2.0).sum(), (2, 3), (2, 3))


class TestGraphMechanics:
    def test_grad_accumulates_over_multiple_uses(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = (x * 2.0 + x * 3.0).sum()
        out.backward()
        assert np.allclose(x.grad, 5.0)

    def test_backward_requires_scalar_or_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (x * 2.0).backward()
        (x * 2.0).backward(np.ones((2, 2)))
        assert np.allclose(x.grad, 2.0)

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_disables_recording(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = (x * 2.0).sum()
        assert not out.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.array([1.0, 1.0, 0.0], dtype=np.float32), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_scalar_helpers(self):
        x = Tensor(3.0)
        assert x.item() == 3.0
        assert x.size == 1

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        out = (1.0 - x) + (4.0 / x)
        out.sum().backward()
        assert x.grad[0] == pytest.approx(-1.0 - 4.0 / 4.0)
