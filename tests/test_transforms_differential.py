"""Differential tests for the transforms dimension of the sweep engine.

The same guarantees the faults dimension shipped with, plus the symbolic
one the pipeline leans on:

- ``transforms=""`` is bitwise invisible: the plain grid's JSONL and
  cache keys are exactly what the pre-transform engine produced (schema
  2, no ``transforms`` field anywhere);
- the transformed grid is deterministic — byte-identical JSONL across
  job counts and across a warm cache re-run, with the spec text carried
  in every record and in the cache key;
- symbolic specialize-then-rewrite is bit-identical to concrete
  compile-then-rewrite for every pipeline over the traceable paper
  pairs, and ``compile_transformed`` (the prefix-memoized path) is
  bit-identical to ``pipeline.apply`` on the compiled plan.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    PointSpec,
    SweepEngine,
    grid_record,
    point_key,
    write_grid_jsonl,
)
from repro.engine.keys import (
    _TRANSFORMED_SCHEMA,
    _UNTRANSFORMED_SCHEMA,
    key_document,
)
from repro.models.registry import get_model
from repro.plan.pipeline import parse_transform_spec
from repro.plan.symbolic import plan_difference
from repro.training.session import TrainingSession

#: A reduced paper grid used for the no-perturbation check.
PLAIN_PANELS = (("resnet-50", ("mxnet",)), ("nmt", ("tensorflow",)))

#: Transformed grid: pipelines exercising every family and a composition.
TRANSFORM_SPECS = ("fp16", "offload:0.25+fp16", "fused_rnn+offload:0.5+fp16")

#: (model, framework, batch, spec) points where every spec applies.
PIPELINE_POINTS = (
    ("nmt", "tensorflow", 64, "fused_rnn+offload:0.5+fp16"),
    ("sockeye", "mxnet", 64, "fused_rnn+fp16"),
    ("deep-speech-2", "mxnet", 16, "fused_rnn+offload:0.25"),
    ("resnet-50", "mxnet", 16, "depth:23+offload:0.5+fp16"),
    ("inception-v3", "tensorflow", 32, "offload:0.5+fp16"),
)


def _transformed_grid():
    return [
        PointSpec(model, framework, batch, "", spec)
        for model, framework in (("nmt", "tensorflow"), ("sockeye", "mxnet"))
        for spec in TRANSFORM_SPECS
        for batch in (16, 64)
    ]


def _export(tmp_path, name, grid, points):
    path = tmp_path / f"{name}.jsonl"
    write_grid_jsonl(str(path), grid, points)
    return path.read_bytes()


class TestUntransformedGridUnperturbed:
    """``transforms=""`` must be bitwise invisible to the paper grid."""

    def test_engine_sweep_matches_suite_sweep(self, suite, tmp_path):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        for model, frameworks in PLAIN_PANELS:
            for framework in frameworks:
                assert engine.sweep(model, framework) == suite.sweep(model, framework)

    def test_empty_transforms_key_is_the_pre_transform_key(self):
        spec = get_model("resnet-50")
        with_dimension = point_key(spec, "mxnet", 16, transforms="")
        without_dimension = point_key(spec, "mxnet", 16)
        assert with_dimension == without_dimension

    def test_untransformed_documents_keep_schema_2(self):
        document = key_document("resnet-50", "mxnet", 16)
        assert document["schema"] == _UNTRANSFORMED_SCHEMA == 2
        assert "transforms" not in document

    def test_transformed_documents_carry_schema_3_and_the_spec(self):
        document = key_document("nmt", "tensorflow", 64, transforms="fp16")
        assert document["schema"] == _TRANSFORMED_SCHEMA == 3
        assert document["transforms"] == "fp16"

    def test_plain_records_carry_no_transforms_field(self):
        spec = PointSpec("resnet-50", "mxnet", 16)
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        record = grid_record(spec, point)
        assert "transforms" not in record

    def test_transform_text_moves_the_cache_key(self):
        spec = get_model("nmt")
        keys = {
            point_key(spec, "tensorflow", 64, transforms=text)
            for text in ("", "fp16", "offload:0.5+fp16", "fused_rnn+offload:0.5+fp16")
        }
        assert len(keys) == 4


class TestTransformedGridDeterministic:
    """Same specs, same bytes — whatever the job count or cache state."""

    @pytest.fixture(scope="class")
    def grid(self):
        return _transformed_grid()

    @pytest.fixture(scope="class")
    def reference_bytes(self, grid, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("transforms-serial")
        points = SweepEngine(jobs=1, cache=None).run_grid(grid)
        return _export(tmp, "serial", grid, points)

    def test_jobs2_and_jobs4_are_byte_identical(self, grid, reference_bytes, tmp_path):
        for jobs in (2, 4):
            engine = SweepEngine(jobs=jobs, cache=None)
            points = engine.run_grid(grid)
            assert _export(tmp_path, f"jobs{jobs}", grid, points) == reference_bytes

    def test_warm_cache_is_byte_identical_and_computes_nothing(
        self, grid, reference_bytes, tmp_path
    ):
        cache = str(tmp_path / "cache")
        cold = SweepEngine(jobs=2, cache=cache)
        cold_points = cold.run_grid(grid)
        assert cold.stats.points_computed == len(grid)
        warm = SweepEngine(jobs=1, cache=cache)
        warm_points = warm.run_grid(grid)
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)
        assert _export(tmp_path, "cold", grid, cold_points) == reference_bytes
        assert _export(tmp_path, "warm", grid, warm_points) == reference_bytes

    def test_exported_rows_carry_the_spec_text(self, reference_bytes):
        rows = [json.loads(line) for line in reference_bytes.decode().splitlines()]
        assert len(rows) == len(_transformed_grid())
        for row in rows:
            assert row["transforms"] in TRANSFORM_SPECS
            assert row["oom"] is False
            assert row["metrics"]["throughput"] > 0

    def test_fused_pipelines_actually_change_the_measurement(self, grid):
        # fp16/offload are memory-only rewrites (timings untouched by
        # design); every fused_rnn pipeline must move iteration time.
        engine = SweepEngine(jobs=1, cache=None)
        transformed = engine.run_grid(grid)
        plain = engine.run_grid(
            [PointSpec(s.model, s.framework, s.batch_size) for s in grid]
        )
        for spec, before, after in zip(grid, plain, transformed):
            if "fused_rnn" in spec.transforms:
                assert after.metrics.iteration_time_s < before.metrics.iteration_time_s
            else:
                assert after.metrics.iteration_time_s == before.metrics.iteration_time_s


class TestSymbolicConcreteTransformAgreement:
    """Trace-once-specialize-then-rewrite must equal concrete
    compile-then-rewrite, bit for bit."""

    @pytest.mark.parametrize("model,framework,batch,spec", PIPELINE_POINTS)
    def test_specialize_then_rewrite_is_bit_identical(
        self, model, framework, batch, spec
    ):
        pipeline = parse_transform_spec(spec)
        symbolic = TrainingSession(model, framework, symbolic=True)
        concrete = TrainingSession(model, framework, symbolic=False)
        difference = plan_difference(
            symbolic.compile_transformed(batch, pipeline),
            pipeline.apply(concrete.compile(batch)),
        )
        assert difference is None

    @pytest.mark.parametrize("model,framework,batch,spec", PIPELINE_POINTS)
    def test_compile_transformed_equals_pipeline_apply(
        self, model, framework, batch, spec
    ):
        session = TrainingSession(model, framework)
        pipeline = parse_transform_spec(spec)
        difference = plan_difference(
            session.compile_transformed(batch, pipeline),
            pipeline.apply(session.compile(batch)),
        )
        assert difference is None

    def test_prefix_memoization_shares_plans_across_pipelines(self):
        session = TrainingSession("nmt", "tensorflow")
        first = session.compile_transformed(
            64, parse_transform_spec("fused_rnn+offload:0.5")
        )
        second = session.compile_transformed(
            64, parse_transform_spec("fused_rnn+offload:0.5+fp16")
        )
        # The shared prefix plan is the same object, not a recompile.
        prefix = session.compile_transformed(
            64, parse_transform_spec("fused_rnn+offload:0.5")
        )
        assert prefix is first
        assert second is not first


class TestTransformValidation:
    def test_run_grid_rejects_malformed_spec_before_computing(self):
        from repro.plan.pipeline import TransformSpecError

        engine = SweepEngine(jobs=1, cache=None)
        bad = PointSpec("resnet-50", "mxnet", 16, "", "offload:banana")
        with pytest.raises(TransformSpecError):
            engine.run_grid([bad])
        assert engine.stats.points_computed == 0

    def test_faults_and_transforms_are_mutually_exclusive(self):
        engine = SweepEngine(jobs=1, cache=None)
        both = PointSpec(
            "resnet-50",
            "mxnet",
            16,
            "cluster=2M1G:infiniband; steps=12; crash=1@5",
            "fp16",
        )
        with pytest.raises(ValueError, match="cannot combine faults and transforms"):
            engine.run_grid([both])
        assert engine.stats.points_computed == 0

    def test_transformed_point_obeys_the_memory_boundary(self):
        # depth:36 at the largest resnet batch exceeds the P4000; the
        # engine must report a transformed OOM, not crash.
        spec = PointSpec("resnet-50", "mxnet", 64, "", "depth:36")
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        assert point.oom is True
