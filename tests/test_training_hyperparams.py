"""Unit tests for hyper-parameters and the comparability rule (§3.4.1)."""

import pytest

from repro.models.registry import model_keys
from repro.training.hyperparams import (
    Hyperparameters,
    IncomparableImplementationsError,
    MODEL_DEFAULTS,
    assert_comparable,
    defaults_for,
)


class TestHyperparameters:
    def test_defaults_valid(self):
        hp = Hyperparameters()
        assert hp.learning_rate == 0.1
        assert hp.optimizer == "sgd"

    def test_validation(self):
        with pytest.raises(ValueError):
            Hyperparameters(learning_rate=0.0)
        with pytest.raises(ValueError):
            Hyperparameters(momentum=1.0)
        with pytest.raises(ValueError):
            Hyperparameters(weight_decay=-1.0)
        with pytest.raises(ValueError):
            Hyperparameters(dropout_rate=1.0)
        with pytest.raises(ValueError):
            Hyperparameters(optimizer="lion")

    def test_with_learning_rate(self):
        hp = Hyperparameters(learning_rate=0.1, momentum=0.9)
        scaled = hp.with_learning_rate(0.4)
        assert scaled.learning_rate == 0.4
        assert scaled.momentum == 0.9
        assert hp.learning_rate == 0.1


class TestDefaults:
    def test_every_registry_model_has_defaults(self):
        for key in model_keys():
            assert defaults_for(key) is MODEL_DEFAULTS[key]

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            defaults_for("vgg")

    def test_transformer_uses_adam(self):
        assert defaults_for("transformer").optimizer == "adam"


class TestComparability:
    def test_identical_sets_pass(self):
        hp = defaults_for("resnet-50")
        assert_comparable("resnet-50", hp, hp, hp)

    def test_mismatch_raises(self):
        a = Hyperparameters(learning_rate=0.1)
        b = Hyperparameters(learning_rate=0.2)
        with pytest.raises(IncomparableImplementationsError):
            assert_comparable("resnet-50", a, b)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            assert_comparable("resnet-50")
