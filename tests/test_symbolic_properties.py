"""Property-based tests for the symbolic expression layer.

Hand-rolled, seeded generators (the container has no Hypothesis) drive
four algebraic properties the differential harness relies on:

- **substitution homomorphism**: a random arithmetic program applied to a
  ``SymValue`` and to a plain number in lockstep evaluates identically —
  the trace replays the exact operators on the exact operand types, so
  ``evaluate(trace(x), b) == program(b)`` bit for bit, including through
  ``//`` and ``%``, on every batch (not just the hint).
- **ring axioms**: :class:`~repro.plan.symexpr.Polynomial` with random
  ``Fraction`` coefficients is a commutative ring — compared by exact
  coefficient equality, never by tolerance.
- **rational exactness**: ``as_polynomial`` turns division by constants
  into exact reciprocals; evaluating the polynomial at an integer agrees
  with a ``Fraction``-shadowed run of the same program, with zero float
  drift even over hundreds of accumulated thirds.
- **memory monotonicity**: the traced allocation footprint is
  nondecreasing in batch — the property that makes the analytic OOM
  bracketing exact.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.frameworks import get_framework
from repro.hardware.devices import QUADRO_P4000
from repro.models.registry import get_model
from repro.plan.symexpr import (
    LinearTape,
    Polynomial,
    SymTracer,
    as_polynomial,
    evaluate,
)
from repro.plan.symbolic import shared_plan_set

SEED = 20260807


def _random_program(rng, steps: int):
    """A random straight-line arithmetic program as (op, operand) pairs.

    Operands are constants or back-references to earlier intermediate
    values (``("ref", i)``), so generated DAGs share subexpressions the
    way real lowering code does.
    """
    ops = []
    for index in range(steps):
        op = rng.choice(("add", "sub", "mul", "truediv", "floordiv", "mod", "neg"))
        if op == "neg":
            ops.append((op, None))
            continue
        if op in ("floordiv", "mod"):
            operand = rng.randint(1, 9)  # never divide by zero
        elif op == "truediv":
            operand = rng.choice((2, 4, 5, 8, 3.0, 7.0))
        elif rng.random() < 0.3 and index > 0:
            operand = ("ref", rng.randrange(index))
        else:
            operand = rng.choice((rng.randint(0, 12), rng.uniform(0.5, 4.0)))
        ops.append((op, operand))
    return ops


def _apply(ops, start, values=None):
    """Run a program on ``start`` (symbolic or concrete), mirroring each
    back-reference into the same slot of ``values``."""
    import operator

    table = {
        "add": operator.add,
        "sub": operator.sub,
        "mul": operator.mul,
        "truediv": operator.truediv,
        "floordiv": operator.floordiv,
        "mod": operator.mod,
    }
    current = start
    history = [start]
    for op, operand in ops:
        if op == "neg":
            current = -current
        else:
            if isinstance(operand, tuple):
                operand = history[operand[1]]
            current = table[op](current, operand)
        history.append(current)
    return current


class TestSubstitutionHomomorphism:
    def test_trace_then_evaluate_equals_direct_computation(self):
        rng = random.Random(SEED)
        for _ in range(200):
            ops = _random_program(rng, rng.randint(1, 12))
            hint = rng.randint(1, 64)
            tracer = SymTracer(hint=hint)
            symbolic = _apply(ops, tracer.value())
            for batch in (hint, 1, rng.randint(1, 512)):
                expected = _apply(ops, batch)
                got = evaluate(symbolic.node, batch)
                assert got == expected
                assert type(got) is type(expected)

    def test_linear_tape_agrees_with_recursive_evaluation(self):
        """The tape is a second, independent evaluator of the same trace;
        both must replay to the identical value."""
        rng = random.Random(SEED + 1)
        for _ in range(100):
            ops = _random_program(rng, rng.randint(1, 12))
            tracer = SymTracer(hint=8)
            symbolic = _apply(ops, tracer.value())
            tape = LinearTape(tracer)
            for batch in (1, 8, rng.randint(1, 256)):
                slots = tape.run(batch)
                assert slots[tape.slot(symbolic)] == evaluate(symbolic.node, batch)

    def test_interning_shares_identical_subexpressions(self):
        tracer = SymTracer(hint=4)
        value = tracer.value()
        left = (value * 3 + 1) * (value * 3 + 1)
        right = value * 3 + 1
        assert left.node.lhs is right.node  # hash-consing, one node


def _random_polynomial(rng, max_degree=4) -> Polynomial:
    return Polynomial(
        {
            degree: Fraction(rng.randint(-50, 50), rng.randint(1, 20))
            for degree in range(rng.randint(0, max_degree) + 1)
        }
    )


class TestRingAxioms:
    def test_polynomials_form_a_commutative_ring(self):
        rng = random.Random(SEED + 2)
        zero, one = Polynomial(), Polynomial.constant(1)
        for _ in range(150):
            a = _random_polynomial(rng)
            b = _random_polynomial(rng)
            c = _random_polynomial(rng)
            assert a + b == b + a
            assert (a + b) + c == a + (b + c)
            assert a * b == b * a
            assert (a * b) * c == a * (b * c)
            assert a * (b + c) == a * b + a * c
            assert a + zero == a
            assert a * one == a
            assert a * zero == zero
            assert a + (-a) == zero

    def test_evaluation_is_a_ring_homomorphism(self):
        rng = random.Random(SEED + 3)
        for _ in range(100):
            a = _random_polynomial(rng)
            b = _random_polynomial(rng)
            point = Fraction(rng.randint(-40, 40), rng.randint(1, 10))
            assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)
            assert (a * b).evaluate(point) == a.evaluate(point) * b.evaluate(point)


class TestRationalExactness:
    def test_as_polynomial_matches_fraction_shadow(self):
        """Division by int/float constants must become *exact* reciprocal
        multiplication — the polynomial's value at any integer equals the
        Fraction-arithmetic result of the same program."""
        rng = random.Random(SEED + 4)
        for _ in range(150):
            # Polynomial-safe subset: no floordiv/mod.
            ops = []
            for _step in range(rng.randint(1, 10)):
                op = rng.choice(("add", "sub", "mul", "truediv"))
                if op == "truediv":
                    ops.append((op, rng.randint(1, 9)))
                elif op == "mul":
                    ops.append((op, rng.randint(-6, 6)))
                else:
                    ops.append((op, rng.randint(-20, 20)))
            tracer = SymTracer(hint=8)
            symbolic = _apply(ops, tracer.value())
            poly = as_polynomial(symbolic)
            for batch in (1, 7, rng.randint(1, 1000)):
                shadow = _apply(ops, Fraction(batch))
                assert poly.evaluate(batch) == shadow

    def test_accumulated_thirds_do_not_drift(self):
        tracer = SymTracer(hint=3)
        value = tracer.value()
        total = value / 3
        for _ in range(299):
            total = total + value / 3
        poly = as_polynomial(total)
        assert poly.coefficient(1) == Fraction(100)
        assert poly.evaluate(3) == Fraction(300)


class TestMemoryMonotonicity:
    @pytest.mark.parametrize(
        "model,framework",
        [("resnet-50", "mxnet"), ("nmt", "tensorflow"), ("transformer", "tensorflow")],
    )
    def test_allocation_footprint_nondecreasing_in_batch(self, model, framework):
        spec = get_model(model)
        sset = shared_plan_set(spec, get_framework(framework), QUADRO_P4000)
        rng = random.Random(SEED + 5)
        cap = 2 * max(spec.batch_sizes)
        for _ in range(20):
            small = rng.randint(1, cap - 1)
            large = rng.randint(small + 1, cap)
            small_bytes = sset.variant_for(small).allocation_bytes(small)
            large_bytes = sset.variant_for(large).allocation_bytes(large)
            assert small_bytes <= large_bytes, (small, large)

    def test_charged_memory_polynomial_is_monotone_when_available(self):
        sset = shared_plan_set(
            get_model("nmt"), get_framework("tensorflow"), QUADRO_P4000
        )
        poly = sset.variant_for(8).charged_memory_polynomial()
        assert poly.degree >= 1
        assert poly.has_nonnegative_coefficients
