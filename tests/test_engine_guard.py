"""Benchmark guard: the engine must never pay for a point twice.

Pins the engine's work accounting with call-count instrumentation on
``TrainingSession.run_iteration``: a full-grid ``run_sweeps`` against a
partially warm cache executes exactly one training session per *missing*
point, and a fully warm rerun executes none.  Also guards the
observability contract — the instrumentation lint must keep covering the
engine's entry points.
"""

import os
import sys

import pytest

from repro.engine import PointSpec, SweepEngine, grid_for
from repro.experiments.common import SWEEP_PANELS, run_sweeps
import repro.plan.compiler as plan_compiler
from repro.training.session import TrainingSession

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
)
from check_instrumentation import REQUIRED, check_instrumentation  # noqa: E402

#: Panels pre-warmed before the guarded full-grid run (10 of 60 points).
PREWARM_PANELS = (
    ("resnet-50", ("tensorflow", "mxnet")),
)


@pytest.fixture
def counted_iterations(monkeypatch):
    calls = []
    original = TrainingSession.run_iteration

    def counting(self, batch_size=None):
        calls.append((self.spec.key, self.framework.key, batch_size))
        return original(self, batch_size)

    monkeypatch.setattr(TrainingSession, "run_iteration", counting)
    return calls


class TestAtMostOneSessionPerMissingPoint:
    def test_full_grid_executes_once_per_missing_point(
        self, tmp_path, counted_iterations
    ):
        cache_root = str(tmp_path / "cache")
        full_grid = grid_for(SWEEP_PANELS)
        prewarm_grid = grid_for(PREWARM_PANELS)
        missing = len(full_grid) - len(prewarm_grid)
        assert missing > 0

        SweepEngine(jobs=1, cache=cache_root).run_grid(prewarm_grid)
        assert len(counted_iterations) == len(prewarm_grid)
        counted_iterations.clear()

        engine = SweepEngine(jobs=1, cache=cache_root)
        run_sweeps("throughput", engine=engine, panels=SWEEP_PANELS)
        assert len(counted_iterations) == missing, (
            "every missing point costs exactly one training session"
        )
        assert engine.stats.points_computed == missing
        assert engine.stats.cache_hits == len(prewarm_grid)
        # No duplicate executions hiding inside the count.
        assert len(set(counted_iterations)) == len(counted_iterations)

    def test_warm_rerun_executes_zero_sessions(self, tmp_path, counted_iterations):
        cache_root = str(tmp_path / "cache")
        grid = grid_for(PREWARM_PANELS)
        SweepEngine(jobs=1, cache=cache_root).run_grid(grid)
        counted_iterations.clear()

        warm = SweepEngine(jobs=1, cache=cache_root)
        run_sweeps("throughput", engine=warm, panels=PREWARM_PANELS)
        assert counted_iterations == []
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)

    def test_uncached_engine_still_computes_each_point_once(self, counted_iterations):
        grid = grid_for(PREWARM_PANELS)
        SweepEngine(jobs=1, cache=None).run_grid(grid)
        assert len(counted_iterations) == len(grid)
        assert len(set(counted_iterations)) == len(grid)

    def test_repeated_single_point_run_hits_after_first(
        self, tmp_path, counted_iterations
    ):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        spec = PointSpec("a3c", "mxnet", 64)
        first = engine.run_grid([spec])
        for _ in range(3):
            assert engine.run_grid([spec]) == first
        assert len(counted_iterations) == 1


@pytest.fixture
def counted_compiles(monkeypatch):
    """Counts every *concrete* graph compile (build + lower + time +
    replay).  The session and the plan transforms both call through the
    module reference, so patching the module attribute intercepts every
    compile."""
    calls = []
    original = plan_compiler.compile_graph

    def counting(graph, framework, gpu, roofline=None):
        calls.append((graph.model_name, framework.key, graph.batch_size))
        return original(graph, framework, gpu, roofline=roofline)

    monkeypatch.setattr(plan_compiler, "compile_graph", counting)
    return calls


@pytest.fixture
def counted_builds(monkeypatch):
    """Counts every plan-cache factory call (symbolic specialize or
    concrete compile) — the unit of per-point plan work."""
    calls = []
    original = TrainingSession._build_plan

    def counting(self, batch):
        calls.append((self.spec.key, self.framework.key, int(batch)))
        return original(self, batch)

    monkeypatch.setattr(TrainingSession, "_build_plan", counting)
    return calls


class TestOneCompilePerPoint:
    """The plan cache's core promise: a warm session never re-lowers a
    point, no matter which consumer asks next."""

    def test_session_consumers_share_one_build_per_batch(self, counted_builds):
        from repro.profiling import timeline_for

        session = TrainingSession("resnet-50", "mxnet")
        best = session.max_batch_size()
        assert counted_builds == [], (
            "the analytic OOM probe evaluates traced expressions, it "
            "builds no plans"
        )
        session.run_iteration(best)
        session.profile_memory(best)
        timeline_for(session, best)
        session.run_iteration(best)
        assert len(counted_builds) == 1, (
            "warm consumers must add zero plan builds"
        )
        assert session.plan_cache.stats.compile_count == 1

    def test_searched_oom_probe_still_compiles_once_per_batch(
        self, counted_builds
    ):
        session = TrainingSession("resnet-50", "mxnet")
        best = session.max_batch_size(search=True)
        probes = len(counted_builds)
        assert probes > 0
        assert len(set(counted_builds)) == probes, "one build per probed batch"
        session.run_iteration(best)
        assert len(counted_builds) == probes, (
            "the searched probe's plans stay cached for later consumers"
        )

    def test_suite_sweep_builds_each_point_exactly_once(self, counted_builds):
        from repro.core.suite import standard_suite

        suite = standard_suite()
        points = suite.sweep("resnet-50", "mxnet")
        assert len(counted_builds) == len(points)
        assert len(set(counted_builds)) == len(counted_builds)

    def test_symbolic_sweep_never_concrete_compiles(
        self, counted_builds, counted_compiles
    ):
        from repro.core.suite import standard_suite

        standard_suite().sweep("resnet-50", "mxnet")
        assert len(counted_builds) > 0
        assert counted_compiles == [], (
            "a symbolic sweep must not fall back to the concrete compiler"
        )

    def test_optimization_whatifs_reuse_the_session_plan(self, counted_builds):
        from repro.optimizations.offload import FeatureMapOffload

        session = TrainingSession("resnet-50", "mxnet")
        offload = FeatureMapOffload(session)
        offload.plan(16, 0.5)
        assert len(counted_builds) == 1
        offload.plan(16, 0.8)  # same batch: cached plan, no recompile
        assert len(counted_builds) == 1


class TestInstrumentationLintCoversEngine:
    def test_engine_entry_points_are_required(self):
        engine_entries = {
            (class_name, function)
            for path, class_name, function in REQUIRED
            if path == "repro/engine/executor.py"
        }
        assert ("SweepEngine", "run_grid") in engine_entries
        assert ("SweepEngine", "_compute_inline") in engine_entries

    def test_lint_passes_on_current_tree(self):
        assert check_instrumentation() == []
