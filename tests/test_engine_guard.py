"""Benchmark guard: the engine must never pay for a point twice.

Pins the engine's work accounting with call-count instrumentation on
``TrainingSession.run_iteration``: a full-grid ``run_sweeps`` against a
partially warm cache executes exactly one training session per *missing*
point, and a fully warm rerun executes none.  Also guards the
observability contract — the instrumentation lint must keep covering the
engine's entry points.
"""

import os
import sys

import pytest

from repro.engine import PointSpec, SweepEngine, grid_for
from repro.experiments.common import SWEEP_PANELS, run_sweeps
from repro.training.session import TrainingSession

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
)
from check_instrumentation import REQUIRED, check_instrumentation  # noqa: E402

#: Panels pre-warmed before the guarded full-grid run (10 of 60 points).
PREWARM_PANELS = (
    ("resnet-50", ("tensorflow", "mxnet")),
)


@pytest.fixture
def counted_iterations(monkeypatch):
    calls = []
    original = TrainingSession.run_iteration

    def counting(self, batch_size=None):
        calls.append((self.spec.key, self.framework.key, batch_size))
        return original(self, batch_size)

    monkeypatch.setattr(TrainingSession, "run_iteration", counting)
    return calls


class TestAtMostOneSessionPerMissingPoint:
    def test_full_grid_executes_once_per_missing_point(
        self, tmp_path, counted_iterations
    ):
        cache_root = str(tmp_path / "cache")
        full_grid = grid_for(SWEEP_PANELS)
        prewarm_grid = grid_for(PREWARM_PANELS)
        missing = len(full_grid) - len(prewarm_grid)
        assert missing > 0

        SweepEngine(jobs=1, cache=cache_root).run_grid(prewarm_grid)
        assert len(counted_iterations) == len(prewarm_grid)
        counted_iterations.clear()

        engine = SweepEngine(jobs=1, cache=cache_root)
        run_sweeps("throughput", engine=engine, panels=SWEEP_PANELS)
        assert len(counted_iterations) == missing, (
            "every missing point costs exactly one training session"
        )
        assert engine.stats.points_computed == missing
        assert engine.stats.cache_hits == len(prewarm_grid)
        # No duplicate executions hiding inside the count.
        assert len(set(counted_iterations)) == len(counted_iterations)

    def test_warm_rerun_executes_zero_sessions(self, tmp_path, counted_iterations):
        cache_root = str(tmp_path / "cache")
        grid = grid_for(PREWARM_PANELS)
        SweepEngine(jobs=1, cache=cache_root).run_grid(grid)
        counted_iterations.clear()

        warm = SweepEngine(jobs=1, cache=cache_root)
        run_sweeps("throughput", engine=warm, panels=PREWARM_PANELS)
        assert counted_iterations == []
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)

    def test_uncached_engine_still_computes_each_point_once(self, counted_iterations):
        grid = grid_for(PREWARM_PANELS)
        SweepEngine(jobs=1, cache=None).run_grid(grid)
        assert len(counted_iterations) == len(grid)
        assert len(set(counted_iterations)) == len(grid)

    def test_repeated_single_point_run_hits_after_first(
        self, tmp_path, counted_iterations
    ):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        spec = PointSpec("a3c", "mxnet", 64)
        first = engine.run_grid([spec])
        for _ in range(3):
            assert engine.run_grid([spec]) == first
        assert len(counted_iterations) == 1


class TestInstrumentationLintCoversEngine:
    def test_engine_entry_points_are_required(self):
        engine_entries = {
            (class_name, function)
            for path, class_name, function in REQUIRED
            if path == "repro/engine/executor.py"
        }
        assert ("SweepEngine", "run_grid") in engine_entries
        assert ("SweepEngine", "_compute_inline") in engine_entries

    def test_lint_passes_on_current_tree(self):
        assert check_instrumentation() == []
