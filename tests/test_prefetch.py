"""Tests for the discrete-event prefetch pipeline simulator."""

import pytest

from repro.data.prefetch import (
    PrefetchConfig,
    effective_throughput,
    minimum_workers,
    simulate_prefetch,
)


class TestCapacityCondition:
    def test_minimum_workers(self):
        assert minimum_workers(0.05, 0.1) == 1
        assert minimum_workers(0.35, 0.1) == 4
        with pytest.raises(ValueError):
            minimum_workers(0.0, 0.1)


class TestSteadyState:
    def test_fast_decoders_never_stall(self):
        config = PrefetchConfig(
            workers=4, queue_depth=8, batch_decode_mean_s=0.02, batch_decode_cv=0.1
        )
        result = simulate_prefetch(config, iteration_time_s=0.1, iterations=400)
        assert result.steady_state_stall_fraction < 0.01

    def test_slow_decoders_bound_throughput(self):
        """When aggregate decode rate < training rate, stall fraction
        approaches the rate deficit regardless of queue depth."""
        config = PrefetchConfig(
            workers=1, queue_depth=64, batch_decode_mean_s=0.2, batch_decode_cv=0.05
        )
        result = simulate_prefetch(config, iteration_time_s=0.1, iterations=400)
        # Trainer wants a batch every 0.1 s; decoder delivers every 0.2 s.
        assert result.stall_fraction == pytest.approx(0.5, abs=0.05)

    def test_more_workers_remove_the_stall(self):
        slow = PrefetchConfig(workers=1, queue_depth=8, batch_decode_mean_s=0.2)
        fast = PrefetchConfig(workers=4, queue_depth=8, batch_decode_mean_s=0.2)
        stalled = simulate_prefetch(slow, 0.1, 300)
        smooth = simulate_prefetch(fast, 0.1, 300)
        assert smooth.stall_fraction < 0.15 * stalled.stall_fraction

    def test_deeper_queue_absorbs_jitter(self):
        """With capacity ~1x, jitter exposes stalls that depth hides."""
        shallow = PrefetchConfig(
            workers=2, queue_depth=1, batch_decode_mean_s=0.18, batch_decode_cv=0.6
        )
        deep = PrefetchConfig(
            workers=2, queue_depth=16, batch_decode_mean_s=0.18, batch_decode_cv=0.6
        )
        exposed = simulate_prefetch(shallow, 0.1, 500)
        hidden = simulate_prefetch(deep, 0.1, 500)
        assert hidden.steady_state_stall_fraction < exposed.steady_state_stall_fraction

    def test_effective_throughput(self):
        config = PrefetchConfig(workers=4, queue_depth=8, batch_decode_mean_s=0.02)
        throughput = effective_throughput(
            config, iteration_time_s=0.1, samples_per_iteration=32
        )
        assert throughput == pytest.approx(320.0, rel=0.05)


class TestWarmup:
    def test_first_iterations_stall_until_queue_fills(self):
        """Part of the warm-up phase the paper's sampling excludes."""
        config = PrefetchConfig(
            workers=2, queue_depth=8, batch_decode_mean_s=0.09, batch_decode_cv=0.1
        )
        result = simulate_prefetch(config, iteration_time_s=0.1, iterations=400)
        assert result.warmup_stall_s > 0
        assert result.steady_state_stall_fraction < result.stall_fraction


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(workers=0, queue_depth=1, batch_decode_mean_s=0.1)
        with pytest.raises(ValueError):
            PrefetchConfig(workers=1, queue_depth=0, batch_decode_mean_s=0.1)
        with pytest.raises(ValueError):
            PrefetchConfig(workers=1, queue_depth=1, batch_decode_mean_s=0.0)

    def test_simulate_validation(self):
        config = PrefetchConfig(workers=1, queue_depth=1, batch_decode_mean_s=0.1)
        with pytest.raises(ValueError):
            simulate_prefetch(config, iteration_time_s=0.0)
        with pytest.raises(ValueError):
            simulate_prefetch(config, iteration_time_s=0.1, iterations=0)

    def test_determinism(self):
        config = PrefetchConfig(
            workers=2, queue_depth=4, batch_decode_mean_s=0.1, seed=7
        )
        a = simulate_prefetch(config, 0.1, 200)
        b = simulate_prefetch(config, 0.1, 200)
        assert a == b
