"""Property-based tests for the engine's content-addressed cache keys.

Hypothesis-free by design: the generators are plain seeded ``random``
instances defined in-repo, so every run explores the same cases and a
failure is reproducible from the seed alone.

The three properties the cache's correctness rests on:

1. **Ordering-insensitive**: the key never depends on dict insertion
   order or field construction order — only on values.
2. **Input-sensitive**: perturbing *any* roofline/device/framework/
   hyper-parameter input, the batch size, the model, or the code
   fingerprint moves the key.
3. **Collision-free in practice**: the full paper grid (every model ×
   framework × batch size × both evaluation GPUs) produces all-distinct
   keys.
"""

import dataclasses
import random

import pytest

from repro.engine.keys import (
    canonical_json,
    code_fingerprint,
    digest,
    fingerprint_framework,
    key_document,
    point_key,
)
from repro.frameworks.base import MomentumAllocation
from repro.frameworks.registry import framework_catalog, get_framework
from repro.hardware.devices import (
    GTX_580,
    QUADRO_P4000,
    TITAN_XP,
    XEON_E5_2680,
)
from repro.models.registry import model_catalog
from repro.training.hyperparams import defaults_for

SEED = 20180923  # the paper's venue date; any fixed seed works


def _shuffled_copy(rng, value):
    """Deep copy with every dict rebuilt in a random insertion order."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {key: _shuffled_copy(rng, value[key]) for key in keys}
    if isinstance(value, list):
        return [_shuffled_copy(rng, item) for item in value]
    return value


def _random_document(rng, depth=0):
    """A random nested JSON-able document."""
    if depth >= 3 or rng.random() < 0.3:
        return rng.choice(
            [
                rng.randint(-1000, 1000),
                rng.random() * rng.choice([1e-6, 1.0, 1e6]),
                f"s{rng.randint(0, 99)}",
                None,
                rng.random() < 0.5,
            ]
        )
    if rng.random() < 0.5:
        return {
            f"k{rng.randint(0, 20)}": _random_document(rng, depth + 1)
            for _ in range(rng.randint(1, 5))
        }
    return [_random_document(rng, depth + 1) for _ in range(rng.randint(1, 4))]


class TestOrderingStability:
    def test_canonical_json_ignores_dict_order(self):
        rng = random.Random(SEED)
        for _ in range(50):
            document = _random_document(rng)
            reference = canonical_json(document)
            for _ in range(5):
                assert canonical_json(_shuffled_copy(rng, document)) == reference

    def test_key_document_digest_ignores_dict_order(self):
        rng = random.Random(SEED)
        document = key_document("resnet-50", "mxnet", 32)
        reference = digest(document)
        for _ in range(10):
            assert digest(_shuffled_copy(rng, document)) == reference

    def test_kernel_efficiency_insertion_order_is_irrelevant(self):
        framework = get_framework("mxnet")
        table = dict(framework.kernel_efficiency)
        assert len(table) >= 2, "need a multi-entry table to permute"
        reversed_table = dict(reversed(list(table.items())))
        reordered = dataclasses.replace(framework, kernel_efficiency=reversed_table)
        assert fingerprint_framework(reordered) == fingerprint_framework(framework)
        assert point_key("resnet-50", reordered, 32) == point_key(
            "resnet-50", framework, 32
        )

    def test_point_key_is_stable_across_calls(self):
        keys = {point_key("nmt", "tensorflow", 64) for _ in range(5)}
        assert len(keys) == 1


def _perturb(field_name: str, value):
    """A minimally-different valid value for one fingerprint input."""
    if field_name == "optimizer":
        return "adam" if value == "sgd" else "sgd"
    if field_name == "lr_schedule":
        return "constant" if value != "constant" else "step"
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        # Shrink toward zero so constrained fields ((0, 1] efficiencies,
        # [0, 1) rates, >= 1 overheads stay >= 1 via the +tiny guard).
        return value * 0.9995 + (1e-9 if value == 0.0 else 0.0)
    if isinstance(value, str):
        return value + "~"
    if isinstance(value, MomentumAllocation):
        return (
            MomentumAllocation.DYNAMIC
            if value is MomentumAllocation.STATIC
            else MomentumAllocation.STATIC
        )
    if isinstance(value, dict) and value:
        key = sorted(value, key=str)[0]
        changed = dict(value)
        changed[key] = changed[key] * 0.9995
        return changed
    return None  # unperturbable (empty dicts etc.)


class TestInputSensitivity:
    BASE = dict(model="resnet-50", framework="mxnet", batch_size=32)

    def _base_key(self, **overrides):
        return point_key(**{**self.BASE, **overrides})

    @pytest.mark.parametrize("field", [f.name for f in dataclasses.fields(QUADRO_P4000)])
    def test_every_gpu_field_moves_the_key(self, field):
        value = getattr(QUADRO_P4000, field)
        perturbed = _perturb(field, value)
        if perturbed is None:
            pytest.skip(f"no perturbation for {field}={value!r}")
        gpu = dataclasses.replace(QUADRO_P4000, **{field: perturbed})
        assert self._base_key(gpu=gpu) != self._base_key()

    @pytest.mark.parametrize("field", [f.name for f in dataclasses.fields(XEON_E5_2680)])
    def test_every_cpu_field_moves_the_key(self, field):
        value = getattr(XEON_E5_2680, field)
        perturbed = _perturb(field, value)
        if perturbed is None:
            pytest.skip(f"no perturbation for {field}={value!r}")
        cpu = dataclasses.replace(XEON_E5_2680, **{field: perturbed})
        assert self._base_key(cpu=cpu) != self._base_key()

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(get_framework("mxnet"))]
    )
    def test_every_framework_field_moves_the_key(self, field):
        framework = get_framework("mxnet")
        value = getattr(framework, field)
        perturbed = _perturb(field, value)
        if perturbed is None:
            pytest.skip(f"no perturbation for {field}={value!r}")
        changed = dataclasses.replace(framework, **{field: perturbed})
        assert self._base_key(framework=changed) != self._base_key()

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(defaults_for("resnet-50"))]
    )
    def test_every_hyperparameter_moves_the_key(self, field):
        reference = defaults_for("resnet-50")
        perturbed = _perturb(field, getattr(reference, field))
        assert perturbed is not None
        changed = dataclasses.replace(reference, **{field: perturbed})
        assert self._base_key(hyperparams=changed) != self._base_key()

    def test_batch_model_framework_move_the_key(self):
        assert self._base_key(batch_size=33) != self._base_key()
        assert self._base_key(model="inception-v3") != self._base_key()
        assert self._base_key(framework="tensorflow") != self._base_key()

    def test_code_fingerprint_moves_the_key(self):
        assert self._base_key(code="0" * 64) != self._base_key()

    def test_code_fingerprint_is_model_specific(self):
        shared = code_fingerprint(None)
        resnet = code_fingerprint("repro.models.resnet")
        a3c = code_fingerprint("repro.models.a3c")
        assert len({shared, resnet, a3c}) == 3


class TestCollisionFreedom:
    def test_full_paper_grid_has_distinct_keys(self):
        keys = []
        for spec in model_catalog().values():
            for framework_key in spec.frameworks:
                for batch in spec.batch_sizes:
                    for gpu in (QUADRO_P4000, TITAN_XP):
                        keys.append(
                            point_key(spec.key, framework_key, batch, gpu=gpu)
                        )
        assert len(keys) == len(set(keys))
        assert len(keys) >= 2 * 40  # the grid really is the paper's scale

    def test_random_framework_personalities_do_not_collide(self):
        rng = random.Random(SEED)
        base = get_framework("tensorflow")
        keys = set()
        for _ in range(100):
            mutated = dataclasses.replace(
                base,
                dispatch_cost_s=rng.uniform(1e-6, 1e-4),
                frontend_cost_s=rng.uniform(0.0, 1e-2),
                pool_overhead=rng.uniform(1.0, 1.5),
                workspace_factor=rng.uniform(0.5, 2.0),
            )
            keys.add(point_key("resnet-50", mutated, 32))
        assert len(keys) == 100

    def test_catalog_frameworks_have_distinct_fingerprints(self):
        fingerprints = {
            canonical_json(fingerprint_framework(fw))
            for fw in framework_catalog().values()
        }
        assert len(fingerprints) == len(framework_catalog())

    def test_key_is_device_aware_even_for_old_hardware(self):
        keys = {
            point_key("resnet-50", "mxnet", 16, gpu=gpu)
            for gpu in (QUADRO_P4000, TITAN_XP, GTX_580)
        }
        assert len(keys) == 3
