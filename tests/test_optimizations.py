"""Unit and behaviour tests for the optimization what-ifs."""

import pytest

from repro.optimizations.depth import (
    build_resnet_with_depth,
    deepest_resnet_that_fits,
    depth_for_batch_tradeoff,
)
from repro.optimizations.fusion import evaluate_fusion, fuse_recurrent_layers
from repro.optimizations.offload import FeatureMapOffload
from repro.optimizations.precision import HalfPrecisionStorage
from repro.training.session import TrainingSession


class TestFeatureMapOffload:
    @pytest.fixture(scope="class")
    def offload(self):
        return FeatureMapOffload(TrainingSession("sockeye", "mxnet"))

    def test_memory_saved_scales_with_fraction(self, offload):
        half = offload.plan(64, 0.5)
        full = offload.plan(64, 1.0)
        assert full.gpu_memory_saved_bytes == pytest.approx(
            2 * half.gpu_memory_saved_bytes
        )

    def test_zero_fraction_is_free(self, offload):
        plan = offload.plan(64, 0.0)
        assert plan.gpu_memory_saved_bytes == 0.0
        assert plan.throughput == pytest.approx(plan.baseline_throughput)

    def test_throughput_cost_is_modest_over_pcie(self, offload):
        """vDNN's result: offloading costs little because PCIe transfers
        overlap with compute."""
        plan = offload.plan(64, 0.8)
        assert 0.0 < plan.throughput_cost_fraction < 0.25

    def test_offload_raises_the_memory_ceiling(self, offload):
        """Sockeye tops out at batch 64 (paper); offloading most feature
        maps lets larger batches fit."""
        baseline_max = TrainingSession("sockeye", "mxnet").max_batch_size(
            (16, 32, 64, 128, 256)
        )
        offload_max = offload.max_batch_with_offload((16, 32, 64, 128, 256), 0.6)
        assert baseline_max == 64
        assert offload_max > baseline_max

    def test_fraction_validation(self, offload):
        with pytest.raises(ValueError):
            offload.plan(64, 1.5)

    def test_fits_true_for_small_batch(self, offload):
        assert offload.fits(16, 0.0)


class TestHalfPrecision:
    @pytest.fixture(scope="class")
    def half(self):
        return HalfPrecisionStorage(TrainingSession("resnet-50", "mxnet"))

    def test_saving_close_to_half_of_feature_maps(self, half):
        plan = half.plan(32)
        assert plan.fp16_feature_map_bytes == pytest.approx(
            0.5 * plan.fp32_feature_map_bytes
        )
        assert 0.25 < plan.total_saving_fraction < 0.55

    def test_fp16_raises_max_batch(self, half):
        fp32_max = TrainingSession("resnet-50", "mxnet").max_batch_size(
            (32, 64, 128, 256)
        )
        fp16_max = half.max_batch((32, 64, 128, 256))
        assert fp16_max > fp32_max


class TestFusedRNN:
    @pytest.fixture(scope="class")
    def session(self):
        return TrainingSession("nmt", "tensorflow")

    def test_flops_preserved_exactly(self, session):
        graph = session.spec.build(64)
        fused = fuse_recurrent_layers(graph)
        assert fused.iteration_flops() == pytest.approx(
            graph.iteration_flops(), rel=1e-9
        )

    def test_no_host_syncs_remain(self, session):
        fused = fuse_recurrent_layers(session.spec.build(32))
        assert not any(k.host_sync for k in fused.iteration_kernels())

    def test_fewer_kernels(self, session):
        graph = session.spec.build(64)
        fused = fuse_recurrent_layers(graph)
        assert len(fused.iteration_kernels()) < 0.7 * len(graph.iteration_kernels())

    def test_fusion_speeds_up_lstm_models(self, session):
        """The paper's recommendation pays off: the launch/sync overhead the
        simulator attributes to dynamic_rnn disappears."""
        result = evaluate_fusion(session, 64)
        assert result.speedup > 1.3
        assert result.fused_gpu_utilization > result.baseline_gpu_utilization

    def test_fusion_is_noop_for_cnns(self):
        session = TrainingSession("resnet-50", "mxnet")
        result = evaluate_fusion(session, 16)
        assert result.speedup == pytest.approx(1.0, rel=1e-6)
        assert result.fused_kernel_count == result.baseline_kernel_count

    def test_original_graph_untouched(self, session):
        graph = session.spec.build(16)
        before = len(graph.iteration_kernels())
        fuse_recurrent_layers(graph)
        assert len(graph.iteration_kernels()) == before

    def test_missing_geometry_rejected(self):
        from repro.graph.layer import Layer, LayerGraph

        graph = LayerGraph("broken", 1, layers=[Layer("l", "lstm")])
        with pytest.raises(ValueError, match="geometry"):
            fuse_recurrent_layers(graph)


class TestDepthTradeoff:
    def test_variable_depth_builder(self):
        shallow = build_resnet_with_depth(4, 6)
        deep = build_resnet_with_depth(4, 23)
        assert shallow.model_name == "ResNet-50"
        assert deep.model_name == "ResNet-101"
        assert deep.total_weight_elements > shallow.total_weight_elements

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_resnet_with_depth(4, 0)

    def test_smaller_batch_allows_deeper_network(self):
        at_32 = deepest_resnet_that_fits(32)
        at_8 = deepest_resnet_that_fits(8)
        assert at_8.conv4_blocks > at_32.conv4_blocks
        assert at_32.conv4_blocks >= 23  # at least ResNet-101 at batch 32

    def test_tradeoff_table_monotone(self):
        plans = depth_for_batch_tradeoff(batches=(8, 16, 32))
        depths = [plan.conv4_blocks for plan in plans]
        assert depths == sorted(depths, reverse=True)

    def test_plan_carries_throughput(self):
        plan = deepest_resnet_that_fits(16)
        assert plan.throughput > 0
        assert plan.total_gib < 8.0
