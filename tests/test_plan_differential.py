"""Differential guard for the plan refactor.

The compiled-plan layer replaced the session's inline graph-build /
lowering / timeline / allocation code with one shared implementation.
This module embeds the *pre-refactor* implementations verbatim (the old
``TrainingSession._iteration_kernels`` / ``_execute_timeline`` /
``_allocate`` / ``simulate_graph`` math and the old standalone
``build_timeline``) and proves the refactor changed nothing: every
``IterationProfile`` field, every timeline event and gap, every memory
snapshot, every OOM boundary, and the exported chrome traces are
*numerically identical* — ``==``, not approx — across the paper grid.
"""

import json

import pytest

from repro.hardware.devices import QUADRO_P4000
from repro.hardware.memory import AllocationTag, GPUMemoryAllocator, OutOfMemoryError
from repro.frameworks.base import MomentumAllocation
import repro.kernels.misc as misc
from repro.models.registry import model_catalog
from repro.plan.executor import Gap, Timeline, TimelineEvent
from repro.profiling import timeline_for
from repro.profiling.export import timeline_to_chrome_trace
from repro.training.session import (
    GRADIENT_MAP_FACTOR,
    _INPUT_STAGING_BUFFERS,
    IterationProfile,
    TrainingSession,
)

#: Every (model, framework) implementation the paper evaluates, at its
#: reference mini-batch on the paper's primary GPU.
PAPER_GRID = [
    (spec.key, framework, spec.reference_batch)
    for spec in model_catalog().values()
    for framework in spec.frameworks
]


# ----------------------------------------------------------------------
# the pre-refactor implementations, embedded verbatim
# ----------------------------------------------------------------------


def _legacy_iteration_kernels(session, graph):
    kernels = [misc.memcpy_h2d(graph.input_bytes)]
    kernels.extend(graph.iteration_kernels())
    for layer in graph.layers:
        if layer.weight_elements > 0:
            kernels.append(misc.sgd_update(layer.weight_elements, momentum=True))
    return session.framework.specialize_kernels(kernels)


def _legacy_execute_timeline(session, timings):
    dispatch = session.framework.dispatch_cost_s
    sync = session.framework.sync_latency_s
    cpu_ready = session.framework.frontend_cost_s
    gpu_free = 0.0
    busy = 0.0
    sync_cpu = 0.0
    for timing in timings:
        cpu_ready += dispatch
        start = max(gpu_free, cpu_ready)
        gpu_free = start + timing.duration_s
        busy += timing.duration_s
        if timing.kernel.host_sync:
            cpu_ready = gpu_free + sync
            sync_cpu += sync
    dispatch_cpu = (
        session.framework.frontend_cost_s + dispatch * len(timings) + sync_cpu
    )
    return max(gpu_free, cpu_ready), busy, dispatch_cpu


def _legacy_allocate(session, graph, allocator):
    fm_factor = (1.0 + GRADIENT_MAP_FACTOR) * graph.feature_map_overallocation
    for layer in graph.layers:
        if layer.weight_bytes:
            allocator.allocate(layer.weight_bytes, AllocationTag.WEIGHTS, layer.name)
            allocator.allocate(
                layer.weight_bytes, AllocationTag.WEIGHT_GRADIENTS, layer.name
            )
        if layer.stash_bytes:
            allocator.allocate(
                layer.stash_bytes * fm_factor, AllocationTag.FEATURE_MAPS, layer.name
            )
        if layer.workspace_bytes:
            allocator.allocate(
                layer.workspace_bytes * session.framework.workspace_factor,
                AllocationTag.WORKSPACE,
                layer.name,
            )
    if graph.input_bytes:
        allocator.allocate(
            graph.input_bytes * _INPUT_STAGING_BUFFERS,
            AllocationTag.FEATURE_MAPS,
            "input staging",
        )
    momentum_bytes = graph.total_weight_bytes
    if session.framework.momentum_allocation is MomentumAllocation.DYNAMIC:
        allocator.allocate(momentum_bytes, AllocationTag.DYNAMIC, "momentum")
    else:
        allocator.allocate(momentum_bytes, AllocationTag.WEIGHTS, "momentum")


def _legacy_simulate_graph(session, graph, memory=None, display_name=None):
    batch = graph.batch_size
    kernels = _legacy_iteration_kernels(session, graph)
    timings = session._roofline.time_kernels(kernels)
    makespan, busy, dispatch_cpu = _legacy_execute_timeline(session, timings)

    pipeline = session._pipeline.cost(
        max(1, int(batch * session.spec.pipeline_cost_scale)), session.framework
    )
    host_core_seconds = session.spec.host_cpu_cost(session.framework.key)
    host_exposed = host_core_seconds * (1.0 - session.spec.host_cpu_overlap)
    env_core_seconds = session.spec.env_cpu_core_seconds_per_sample * batch
    env_wall = env_core_seconds / session.spec.env_cpu_threads

    iteration_time = makespan + pipeline.exposed_seconds + host_exposed + env_wall
    cpu_core_seconds = (
        dispatch_cpu + pipeline.cpu_core_seconds + host_core_seconds + env_core_seconds
    )
    return IterationProfile(
        model=display_name if display_name is not None else graph.model_name,
        framework=session.framework.name,
        device=session.gpu.name,
        batch_size=batch,
        iteration_time_s=iteration_time,
        gpu_busy_time_s=busy,
        gpu_flops=sum(t.kernel.flops for t in timings),
        effective_samples=graph.effective_samples,
        cpu_core_seconds=cpu_core_seconds,
        cpu_core_count=session.cpu.core_count,
        peak_fp32_flops=session.gpu.peak_fp32_flops,
        kernel_timings=timings,
        memory=memory,
    )


def _legacy_run_iteration(session, batch):
    graph = session.spec.build(batch)
    allocator = GPUMemoryAllocator(
        session.gpu.memory_bytes, pool_overhead=session.framework.pool_overhead
    )
    _legacy_allocate(session, graph, allocator)
    return _legacy_simulate_graph(
        session, graph, memory=allocator.snapshot(),
        display_name=session.spec.display_name,
    )


def _legacy_build_timeline(timings, framework):
    dispatch = framework.dispatch_cost_s
    sync = framework.sync_latency_s
    cpu_ready = framework.frontend_cost_s
    gpu_free = 0.0
    events = []
    gaps = []
    pending_cause = "frontend"
    for timing in timings:
        cpu_ready += dispatch
        start = max(gpu_free, cpu_ready)
        if start > gpu_free:
            gaps.append(Gap(start_s=gpu_free, end_s=start, cause=pending_cause))
        end = start + timing.duration_s
        events.append(
            TimelineEvent(
                name=timing.kernel.name,
                category=timing.kernel.category,
                issued_s=cpu_ready,
                start_s=start,
                end_s=end,
                host_sync=timing.kernel.host_sync,
            )
        )
        gpu_free = end
        if timing.kernel.host_sync:
            cpu_ready = gpu_free + sync
            pending_cause = "host sync"
        else:
            pending_cause = "dispatch"
    return Timeline(events=events, gaps=gaps, makespan_s=max(gpu_free, cpu_ready))


# ----------------------------------------------------------------------
# the differential assertions
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model,framework,batch", PAPER_GRID)
def test_iteration_profile_is_bit_identical(model, framework, batch):
    session = TrainingSession(model, framework, gpu=QUADRO_P4000)
    legacy = _legacy_run_iteration(session, batch)
    current = session.run_iteration(batch)

    assert current.model == legacy.model
    assert current.framework == legacy.framework
    assert current.device == legacy.device
    assert current.batch_size == legacy.batch_size
    assert current.iteration_time_s == legacy.iteration_time_s
    assert current.gpu_busy_time_s == legacy.gpu_busy_time_s
    assert current.gpu_flops == legacy.gpu_flops
    assert current.effective_samples == legacy.effective_samples
    assert current.cpu_core_seconds == legacy.cpu_core_seconds
    assert current.cpu_core_count == legacy.cpu_core_count
    assert current.peak_fp32_flops == legacy.peak_fp32_flops
    assert current.kernel_timings == legacy.kernel_timings
    assert current.memory.peak_total == legacy.memory.peak_total
    assert current.memory.peak_by_tag == legacy.memory.peak_by_tag

    assert current.throughput == legacy.throughput
    assert current.gpu_utilization == legacy.gpu_utilization
    assert current.cpu_utilization == legacy.cpu_utilization


@pytest.mark.parametrize("model,framework,batch", PAPER_GRID)
def test_timeline_is_identical(model, framework, batch):
    session = TrainingSession(model, framework, gpu=QUADRO_P4000)
    kernels = _legacy_iteration_kernels(session, session.spec.build(batch))
    legacy = _legacy_build_timeline(
        session._roofline.time_kernels(kernels), session.framework
    )
    current = timeline_for(session, batch)
    assert current.makespan_s == legacy.makespan_s
    assert current.events == legacy.events
    assert current.gaps == legacy.gaps
    assert current.idle_by_cause() == legacy.idle_by_cause()


@pytest.mark.parametrize(
    "model,framework,batch",
    [("resnet-50", "mxnet", 32), ("nmt", "tensorflow", 128)],
)
def test_chrome_trace_export_is_byte_identical(model, framework, batch):
    session = TrainingSession(model, framework, gpu=QUADRO_P4000)
    kernels = _legacy_iteration_kernels(session, session.spec.build(batch))
    legacy = _legacy_build_timeline(
        session._roofline.time_kernels(kernels), session.framework
    )
    encode = lambda timeline: json.dumps(  # noqa: E731
        timeline_to_chrome_trace(timeline), sort_keys=True, separators=(",", ":")
    )
    assert encode(timeline_for(session, batch)) == encode(legacy)


@pytest.mark.parametrize("framework", ("tensorflow", "mxnet", "cntk"))
def test_oom_boundary_and_message_are_identical(framework):
    session = TrainingSession("resnet-50", framework, gpu=QUADRO_P4000)
    # The sweep batches plus two oversized probes, so the scan is
    # guaranteed to cross the OOM boundary on the paper's 8 GB card.
    for batch in list(session.spec.batch_sizes) + [256, 512]:
        graph = session.spec.build(batch)
        allocator = GPUMemoryAllocator(
            session.gpu.memory_bytes, pool_overhead=session.framework.pool_overhead
        )
        try:
            _legacy_allocate(session, graph, allocator)
            legacy_error = None
        except OutOfMemoryError as error:
            legacy_error = error
        plan = session.compile(batch)
        if legacy_error is None:
            assert plan.fits(session.gpu.memory_bytes)
        else:
            with pytest.raises(OutOfMemoryError) as current_error:
                plan.check_memory(session.gpu.memory_bytes)
            assert str(current_error.value) == str(legacy_error)
    # The scan must actually cross the OOM boundary to guard anything.
    assert not session.compile(512).fits(session.gpu.memory_bytes)
