"""Unit tests for the roofline kernel-timing model."""

import pytest

from repro.hardware.devices import QUADRO_P4000, TITAN_XP
from repro.hardware.roofline import (
    RooflineModel,
    efficiency_gap,
    estimate_max_batch_size,
    speed_of_light_time,
)
from repro.kernels.base import Kernel, KernelCategory
from repro.kernels.gemm import gemm
from repro.kernels.norm import batchnorm_forward


@pytest.fixture
def model():
    return RooflineModel(QUADRO_P4000)


class TestKernelTiming:
    def test_duration_includes_launch_latency(self, model):
        tiny = Kernel("tiny", KernelCategory.ELEMENTWISE, flops=1.0, bytes_accessed=4.0)
        timing = model.time_kernel(tiny)
        assert timing.duration_s >= QUADRO_P4000.kernel_launch_latency_s

    def test_large_gemm_is_compute_bound(self, model):
        timing = model.time_kernel(gemm(2048, 2048, 2048))
        assert not timing.is_memory_bound
        assert timing.compute_time_s > timing.memory_time_s

    def test_batchnorm_is_memory_bound(self, model):
        timing = model.time_kernel(batchnorm_forward(10_000_000, 64))
        assert timing.is_memory_bound

    def test_time_scales_with_work(self, model):
        small = model.time_kernel(gemm(256, 256, 256))
        large = model.time_kernel(gemm(2048, 2048, 2048))
        assert large.duration_s > small.duration_s

    def test_more_work_never_faster(self, model):
        durations = [
            model.time_kernel(gemm(size, size, size)).duration_s
            for size in (64, 128, 256, 512, 1024, 2048)
        ]
        assert durations == sorted(durations)

    def test_fp32_utilization_below_one(self, model):
        timing = model.time_kernel(gemm(4096, 4096, 4096))
        assert 0.0 < timing.fp32_utilization < 1.0

    def test_small_gemm_has_low_fp32_utilization(self, model):
        small = model.time_kernel(gemm(4, 2048, 2048))
        large = model.time_kernel(gemm(2048, 2048, 2048))
        assert small.fp32_utilization < 0.25 * large.fp32_utilization

    def test_faster_device_runs_kernels_faster(self, model):
        kernel = gemm(1024, 1024, 1024)
        p4 = model.time_kernel(kernel)
        xp = RooflineModel(TITAN_XP).time_kernel(kernel)
        assert xp.duration_s < p4.duration_s

    def test_faster_device_less_efficient_on_same_kernel(self, model):
        """Observation 10's mechanism: a wider GPU needs more work to
        saturate, so the same kernel achieves a lower fraction of peak."""
        kernel = gemm(512, 512, 512)
        p4 = model.time_kernel(kernel)
        xp = RooflineModel(TITAN_XP).time_kernel(kernel)
        assert xp.fp32_utilization < p4.fp32_utilization

    def test_time_kernels_batches(self, model):
        kernels = [gemm(64, 64, 64) for _ in range(5)]
        timings = model.time_kernels(kernels)
        assert len(timings) == 5


class TestHelpers:
    def test_speed_of_light_lower_bound(self, model):
        kernel = gemm(1024, 1024, 1024)
        assert speed_of_light_time(kernel, QUADRO_P4000) <= model.time_kernel(
            kernel
        ).duration_s

    def test_efficiency_gap_at_least_one(self, model):
        kernel = gemm(128, 128, 128)
        assert efficiency_gap(model.time_kernel(kernel), QUADRO_P4000) >= 1.0

    def test_breakeven_intensity(self, model):
        breakeven = model.arithmetic_intensity_breakeven()
        assert breakeven == pytest.approx(
            QUADRO_P4000.peak_fp32_flops / QUADRO_P4000.memory_bandwidth_bytes
        )

    def test_estimate_max_batch_size(self):
        per_sample = 100 * 1024**2
        fixed = 1 * 1024**3
        batch = estimate_max_batch_size(per_sample, fixed, QUADRO_P4000)
        assert batch == (QUADRO_P4000.memory_bytes - fixed) // per_sample

    def test_estimate_max_batch_size_no_room(self):
        assert estimate_max_batch_size(1.0, QUADRO_P4000.memory_bytes + 1, QUADRO_P4000) == 0
