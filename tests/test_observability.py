"""Tests for the telemetry runtime: tracer, metrics, exporters, archive,
instrumented runs, and the disabled-path perf guard."""

import json
import threading
import time

import pytest

from repro.core.analysis import AnalysisPipeline
from repro.distributed import DataParallelTrainer
from repro.distributed.allreduce import RingAllReduceExchange
from repro.distributed.topology import configuration
from repro.observability import (
    MetricsRegistry,
    RunArchive,
    RunManifest,
    Tracer,
    get_metrics,
    get_tracer,
    metrics_to_prometheus,
    parse_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
    telemetry,
    trace_span,
    traced_run,
    tracing,
)
from repro.observability.metrics import NULL_METRIC
from repro.observability.tracer import NULL_SPAN
from repro.training.session import TrainingSession


class TestTracer:
    def test_spans_nest_and_carry_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", model="resnet-50") as outer:
            with tracer.span("inner") as inner:
                inner.set_attribute("kernels", 3)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes["model"] == "resnet-50"
        assert [child.name for child in root.children] == ["inner"]
        assert root.children[0].parent_id == root.span_id
        assert root.children[0].attributes["kernels"] == 3

    def test_span_closed_on_exception_and_error_recorded(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                with tracer.span("deeper"):
                    raise ValueError("boom")
        root = tracer.roots[0]
        assert root.status == "error"
        assert root.attributes["error.type"] == "ValueError"
        assert root.attributes["error.message"] == "boom"
        assert root.end_s is not None
        deeper = root.children[0]
        assert deeper.status == "error"
        assert deeper.end_s is not None
        # The stack fully unwound: a new span becomes a new root.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["failing", "after"]

    def test_reentrant_across_two_concurrent_sessions(self):
        """Two sessions tracing concurrently must not interleave parents."""
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(2)
        errors = []

        def run_session(worker):
            try:
                with tracer.span("session", worker=worker):
                    barrier.wait(timeout=5)
                    for step in range(3):
                        with tracer.span("step", index=step):
                            time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=run_session, args=(w,)) for w in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tracer.roots) == 2
        workers = sorted(root.attributes["worker"] for root in tracer.roots)
        assert workers == ["a", "b"]
        for root in tracer.roots:
            assert [child.name for child in root.children] == ["step"] * 3
            assert all(child.parent_id == root.span_id for child in root.children)

    def test_disabled_global_returns_null_singletons(self):
        assert get_tracer().enabled is False
        assert trace_span("anything", x=1) is NULL_SPAN
        with trace_span("still nothing") as span:
            span.set_attribute("ignored", True)
        assert get_tracer().roots == []

    def test_tracing_context_restores_previous_tracer(self):
        before = get_tracer()
        with tracing() as active:
            assert get_tracer() is active
            with trace_span("visible"):
                pass
        assert get_tracer() is before
        assert active.roots[0].name == "visible"

    def test_render_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("run", model="nmt"):
            with tracer.span("stage"):
                pass
        text = tracer.render_tree()
        assert "run (model=nmt)" in text
        assert "\n  stage" in text


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("launches_total").inc()
        registry.counter("launches_total").inc(4)
        registry.gauge("occupancy").set(0.5)
        hist = registry.histogram("delay_seconds")
        for value in (2e-6, 2e-6, 0.02):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["launches_total"] == 5
        assert snap["occupancy"] == 0.5
        assert snap["delay_seconds"]["count"] == 3
        assert snap["delay_seconds"]["sum"] == pytest.approx(0.020004)

    def test_counters_reject_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_labels_resolve_to_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", {"tag": "weights"}).inc(10)
        registry.counter("bytes_total", {"tag": "workspace"}).inc(20)
        snap = registry.snapshot()
        assert snap['bytes_total{tag="weights"}'] == 10
        assert snap['bytes_total{tag="workspace"}'] == 20

    def test_disabled_registry_returns_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_METRIC
        registry.counter("x").inc()  # must be a silent no-op
        assert registry.snapshot() == {}
        assert get_metrics().enabled is False

    def test_prometheus_dump_shape(self):
        registry = MetricsRegistry()
        registry.counter("kernels_total").inc(7)
        registry.histogram("delay_seconds").observe(3e-6)
        text = metrics_to_prometheus(registry)
        assert "# TYPE kernels_total counter" in text
        assert "kernels_total 7" in text
        assert 'delay_seconds_bucket{le="+Inf"} 1' in text
        assert "delay_seconds_count 1" in text


class TestExporters:
    @pytest.fixture(scope="class")
    def traced_pipeline(self):
        with telemetry() as run:
            AnalysisPipeline("resnet-50", "mxnet").run(16)
        return run

    def test_jsonl_round_trips(self, traced_pipeline):
        text = traced_pipeline.to_jsonl()
        events = parse_jsonl(text)
        spans = [e for e in events if e["event"] == "span"]
        kernels = [e for e in events if e["event"] == "kernel"]
        assert spans and kernels
        names = {e["name"] for e in spans}
        for stage in ("setup", "warmup", "sample", "profile", "merge"):
            assert f"pipeline.stage.{stage}" in names
        by_id = {e["span_id"]: e for e in spans}
        for kernel in kernels:
            assert kernel["span_id"] in by_id
        # Re-serializing the parsed stream loses nothing.
        assert len(events) == len(text.strip().splitlines())

    def test_exports_are_deterministic(self):
        def one_run():
            with telemetry() as run:
                AnalysisPipeline("nmt", "tensorflow").run(32)
            return run

        first, second = one_run(), one_run()
        assert first.to_jsonl() == second.to_jsonl()
        assert json.dumps(first.to_chrome_trace(), sort_keys=True) == json.dumps(
            second.to_chrome_trace(), sort_keys=True
        )
        assert first.to_prometheus() == second.to_prometheus()

    def test_stage_spans_are_ancestors_of_kernel_events(self, traced_pipeline):
        trace = traced_pipeline.to_chrome_trace()
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        spans = {
            e["args"]["span_id"]: e for e in events if e.get("cat") == "span"
        }
        kernels = [
            e
            for e in events
            if e.get("cat") not in ("span", "idle") and "span_id" in e["args"]
        ]
        assert kernels
        for kernel in kernels:
            # Walk the parent chain to a pipeline stage span and check the
            # stage's interval contains the kernel's.
            span = spans[kernel["args"]["span_id"]]
            stage = None
            while span is not None:
                if span["name"].startswith("pipeline.stage."):
                    stage = span
                    break
                parent = span["args"].get("parent_id")
                span = spans.get(parent) if parent is not None else None
            assert stage is not None, kernel["name"]
            assert stage["ts"] <= kernel["ts"]
            assert stage["ts"] + stage["dur"] >= kernel["ts"] + kernel["dur"]

    def test_gap_events_present_for_host_sync_workload(self):
        with telemetry() as run:
            TrainingSession("nmt", "tensorflow").run_iteration(32)
        events = parse_jsonl(run.to_jsonl())
        causes = {e["cause"] for e in events if e["event"] == "gap"}
        assert "host sync" in causes


class TestInstrumentedRuns:
    def test_session_emits_spans_and_metrics(self):
        with telemetry() as run:
            TrainingSession("resnet-50", "mxnet").run_iteration(16)
        root = run.tracer.roots[0]
        assert root.name == "session.run_iteration"
        simulate = root.find("session.simulate_graph")
        assert simulate is not None
        assert simulate.timelines, "kernel timeline must be attached"
        assert simulate.find("data.pipeline") is not None
        snap = run.metrics.snapshot()
        assert snap["kernels_issued_total"] > 0
        assert snap["gpu_busy_seconds_total"] > 0
        assert snap['memory_peak_bytes{tag="feature maps"}'] > 0
        assert snap["kernel_queue_delay_seconds"]["count"] == snap[
            "kernels_issued_total"
        ]

    def test_allreduce_emits_rounds_and_wire_bytes(self):
        cluster = configuration("1M4G")
        with telemetry() as run:
            cost = RingAllReduceExchange().cost(100e6, cluster)
        root = run.tracer.roots[0]
        assert root.name == "allreduce.ring"
        rounds = [c for c in root.children if c.name == "allreduce.round"]
        assert len(rounds) == cost.steps == 6
        phases = {r.attributes["phase"] for r in rounds}
        assert phases == {"reduce-scatter", "all-gather"}
        snap = run.metrics.snapshot()
        assert snap["allreduce_rounds_total"] == 6
        assert snap["allreduce_wire_bytes_total"] == pytest.approx(
            2 * 100e6 * 3 / 4
        )

    def test_distributed_iteration_nests_exchange_under_it(self):
        cluster = configuration("2M1G (ethernet)")
        with telemetry() as run:
            DataParallelTrainer("resnet-50", "mxnet", cluster).run_iteration(16)
        root = run.tracer.roots[0]
        assert root.name == "distributed.iteration"
        exchange = root.find("ps.exchange")
        assert exchange is not None
        assert {c.name for c in exchange.children} == {
            "ps.push",
            "ps.aggregate",
            "ps.pull",
        }
        snap = run.metrics.snapshot()
        assert snap["ps_wire_bytes_total"] > 0
        assert snap["distributed_iterations_total"] == 1


class TestArchive:
    def _manifest(self, run_id, throughput=100.0):
        return RunManifest(
            run_id=run_id,
            model="resnet-50",
            framework="mxnet",
            device="Quadro P4000",
            batch_size=16,
            seed=0,
            git="abc1234",
            created_at="2026-08-06T00:00:00+00:00",
            metrics={"throughput": throughput, "gpu_utilization": 0.95},
        )

    def test_record_list_load(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        archive.record(self._manifest("resnet-50-mxnet-b16-001"))
        archive.record(self._manifest("resnet-50-mxnet-b16-002"))
        assert archive.list() == [
            "resnet-50-mxnet-b16-001",
            "resnet-50-mxnet-b16-002",
        ]
        loaded = archive.load("resnet-50-mxnet-b16-001")
        assert loaded.metrics["throughput"] == 100.0
        assert archive.next_run_id("resnet-50", "mxnet", 16).endswith("-003")

    def test_diff_flags_out_of_tolerance_metrics(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        archive.record(self._manifest("a-001"))
        archive.record(self._manifest("a-002", throughput=90.0))
        drifts = archive.diff("a-001", "a-002")
        assert [d.metric for d in drifts] == ["throughput"]
        assert drifts[0].relative_change == pytest.approx(-0.1)
        # Identical runs diff clean.
        archive.record(self._manifest("a-003"))
        assert archive.diff("a-001", "a-003") == []

    def test_delta_table_mentions_every_metric(self, tmp_path):
        archive = RunArchive(str(tmp_path))
        archive.record(self._manifest("a-001"))
        archive.record(self._manifest("a-002", throughput=90.0))
        table = archive.delta_table("a-001", "a-002")
        assert "throughput" in table and "-10.00%" in table
        assert "gpu_utilization" in table

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunArchive(str(tmp_path)).load("nope")


class TestTracedRun:
    def test_traced_run_archives_everything(self, tmp_path):
        result = traced_run(
            "resnet-50", "mxnet", batch_size=16, archive_root=str(tmp_path)
        )
        assert result.manifest.run_id == "resnet-50-mxnet-b16-001"
        assert result.manifest.metrics["throughput"] > 0
        run_dir = tmp_path / result.manifest.run_id
        for artifact in ("manifest.json", "spans.jsonl", "trace.json", "metrics.prom"):
            assert (run_dir / artifact).exists(), artifact
        events = parse_jsonl((run_dir / "spans.jsonl").read_text())
        assert any(e["event"] == "kernel" for e in events)
        trace = json.loads((run_dir / "trace.json").read_text())
        assert trace["displayTimeUnit"] == "ms"

    def test_two_runs_diff_clean_and_archive_sequences(self, tmp_path):
        first = traced_run(
            "resnet-50", "mxnet", batch_size=16, archive_root=str(tmp_path)
        )
        second = traced_run(
            "resnet-50", "mxnet", batch_size=16, archive_root=str(tmp_path)
        )
        assert second.manifest.run_id == "resnet-50-mxnet-b16-002"
        archive = RunArchive(str(tmp_path))
        assert archive.diff(first.manifest.run_id, second.manifest.run_id) == []

    def test_no_archive_mode_writes_nothing(self, tmp_path):
        result = traced_run(
            "wgan", "tensorflow", batch_size=8, archive=False,
            archive_root=str(tmp_path),
        )
        assert result.run_dir is None
        assert RunArchive(str(tmp_path)).list() == []


class TestDisabledOverheadGuard:
    def test_disabled_telemetry_costs_under_5_percent(self):
        """The no-op fast path must not tax the plain simulation path."""
        import repro.training.session as session_module
        from repro.observability import metrics as metrics_module
        from repro.observability import tracer as tracer_module

        session = TrainingSession("resnet-50", "mxnet", check_memory=False)
        session.run_iteration(16)  # warm every cache/import first

        def best_of(fn, repeats=7):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        assert not tracer_module.telemetry_enabled()
        assert not metrics_module.get_metrics().enabled
        disabled = best_of(lambda: session.run_iteration(16))

        # The pre-instrumentation path: stub the hooks down to bare no-ops.
        disabled_registry = MetricsRegistry(enabled=False)
        saved = (session_module.trace_span, session_module.get_metrics)
        session_module.trace_span = lambda *_a, **_k: NULL_SPAN
        session_module.get_metrics = lambda: disabled_registry
        try:
            baseline = best_of(lambda: session.run_iteration(16))
        finally:
            session_module.trace_span, session_module.get_metrics = saved

        assert disabled <= baseline * 1.05 + 1e-3, (
            f"disabled-telemetry path {disabled:.6f}s vs "
            f"pre-instrumentation {baseline:.6f}s"
        )
