"""Differential tests for the schedule dimension of the sweep engine.

The same guarantees faults and transforms shipped with:

- ``schedule="fixed"`` (and every spelling of it) is bitwise invisible:
  cache keys, key documents, grid records, and JSONL exports are exactly
  what the pre-schedule engine produced — schema 2/3, no ``schedule``
  field anywhere;
- the adaptive grid is deterministic — byte-identical JSONL across job
  counts and across a warm cache re-run, with the canonical spec text
  carried in every record and moving every cache key;
- invalid combinations (adaptive + faults, adaptive + transforms, a
  model with no convergence curve) are rejected before any computation.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    PointSpec,
    SweepEngine,
    grid_record,
    point_key,
    write_grid_jsonl,
)
from repro.engine.keys import (
    KEY_SCHEMA,
    _TRANSFORMED_SCHEMA,
    _UNTRANSFORMED_SCHEMA,
    key_document,
)
from repro.models.registry import get_model

ADAPTIVE = "gns:ceiling=64,every=50"

#: Every spelling that must mean "no schedule at all".
FIXED_SPELLINGS = ("", "fixed", "constant", " fixed ")

#: (model, framework) pairs with convergence curves, swept both ways.
PANELS = (("resnet-50", "mxnet"), ("nmt", "tensorflow"))

#: Adaptive specs exercising every family (ceilings chosen to fit).
ADAPTIVE_SPECS = (
    ADAPTIVE,
    "geometric:factor=2,every=100,ceiling=64",
    "plateau:factor=2,patience=200,ceiling=64",
)


def _scheduled_grid():
    return [
        PointSpec(model, framework, batch, schedule=spec)
        for model, framework in PANELS
        for spec in ADAPTIVE_SPECS
        for batch in (16, 32)
    ]


def _export(tmp_path, name, grid, points):
    path = tmp_path / f"{name}.jsonl"
    write_grid_jsonl(str(path), grid, points)
    return path.read_bytes()


class TestFixedSpellingInvisible:
    """schedule="fixed" must be byte-identical to the legacy grid."""

    def test_every_fixed_spelling_keeps_the_pre_schedule_key(self):
        spec = get_model("resnet-50")
        legacy = point_key(spec, "mxnet", 16)
        for spelling in ("",):
            assert point_key(spec, "mxnet", 16, schedule=spelling) == legacy

    def test_unscheduled_documents_keep_their_v2_v3_schema(self):
        plain = key_document("resnet-50", "mxnet", 16)
        assert plain["schema"] == _UNTRANSFORMED_SCHEMA == 2
        assert "schedule" not in plain
        transformed = key_document("nmt", "tensorflow", 64, transforms="fp16")
        assert transformed["schema"] == _TRANSFORMED_SCHEMA == 3
        assert "schedule" not in transformed

    def test_scheduled_documents_carry_schema_4_and_the_spec(self):
        document = key_document("resnet-50", "mxnet", 16, schedule=ADAPTIVE)
        assert document["schema"] == KEY_SCHEMA == 4
        assert document["schedule"] == ADAPTIVE

    def test_engine_normalizes_fixed_spellings_onto_one_key(self):
        engine = SweepEngine(jobs=1, cache=None)
        keys = {
            engine._key_for(PointSpec("resnet-50", "mxnet", 16, schedule=s))
            for s in FIXED_SPELLINGS
        }
        assert keys == {engine._key_for(PointSpec("resnet-50", "mxnet", 16))}

    def test_fixed_grid_is_point_for_point_the_plain_grid(self):
        plain = [
            PointSpec(model, framework, batch)
            for model, framework in PANELS
            for batch in (16, 32)
        ]
        fixed = [
            PointSpec(p.model, p.framework, p.batch_size, schedule="fixed")
            for p in plain
        ]
        engine = SweepEngine(jobs=1, cache=None)
        assert engine.run_grid(fixed) == engine.run_grid(plain)

    def test_fixed_jsonl_is_byte_identical_to_plain(self, tmp_path):
        plain = [PointSpec("resnet-50", "mxnet", b) for b in (16, 32)]
        fixed = [
            PointSpec("resnet-50", "mxnet", b, schedule="fixed") for b in (16, 32)
        ]
        engine = SweepEngine(jobs=1, cache=None)
        plain_bytes = _export(tmp_path, "plain", plain, engine.run_grid(plain))
        fixed_bytes = _export(tmp_path, "fixed", fixed, engine.run_grid(fixed))
        assert fixed_bytes == plain_bytes
        for line in plain_bytes.decode().splitlines():
            assert "schedule" not in json.loads(line)

    def test_plain_records_carry_no_schedule_field(self):
        spec = PointSpec("resnet-50", "mxnet", 16, schedule="fixed")
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        assert "schedule" not in grid_record(spec, point)

    def test_schedule_text_moves_the_cache_key(self):
        spec = get_model("resnet-50")
        keys = {
            point_key(spec, "mxnet", 32, schedule=text)
            for text in ("",) + ADAPTIVE_SPECS
        }
        assert len(keys) == len(ADAPTIVE_SPECS) + 1


class TestScheduledGridDeterministic:
    """Same specs, same bytes — whatever the job count or cache state."""

    @pytest.fixture(scope="class")
    def grid(self):
        return _scheduled_grid()

    @pytest.fixture(scope="class")
    def reference_bytes(self, grid, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("schedule-serial")
        points = SweepEngine(jobs=1, cache=None).run_grid(grid)
        return _export(tmp, "serial", grid, points)

    def test_jobs2_and_jobs4_are_byte_identical(self, grid, reference_bytes, tmp_path):
        for jobs in (2, 4):
            engine = SweepEngine(jobs=jobs, cache=None)
            points = engine.run_grid(grid)
            assert _export(tmp_path, f"jobs{jobs}", grid, points) == reference_bytes

    def test_warm_cache_is_byte_identical_and_computes_nothing(
        self, grid, reference_bytes, tmp_path
    ):
        cache = str(tmp_path / "cache")
        cold = SweepEngine(jobs=2, cache=cache)
        cold_points = cold.run_grid(grid)
        assert cold.stats.points_computed == len(grid)
        warm = SweepEngine(jobs=1, cache=cache)
        warm_points = warm.run_grid(grid)
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)
        assert _export(tmp_path, "cold", grid, cold_points) == reference_bytes
        assert _export(tmp_path, "warm", grid, warm_points) == reference_bytes

    def test_exported_rows_carry_the_canonical_spec_text(self, reference_bytes):
        rows = [json.loads(line) for line in reference_bytes.decode().splitlines()]
        assert len(rows) == len(_scheduled_grid())
        for row in rows:
            assert row["schedule"] in ADAPTIVE_SPECS
            assert row["oom"] is False
            assert row["metrics"]["throughput"] > 0

    def test_adaptive_points_diverge_from_their_plain_twins(self, grid):
        from repro.schedule import integrate_schedule

        engine = SweepEngine(jobs=1, cache=None)
        scheduled = engine.run_grid(grid)
        plain = engine.run_grid(
            [PointSpec(s.model, s.framework, s.batch_size) for s in grid]
        )
        grew = 0
        for spec, before, after in zip(grid, plain, scheduled):
            integration = integrate_schedule(
                spec.model, spec.schedule, spec.batch_size
            )
            if len(integration.batch_sizes) > 1:
                # A batch that actually grows must move the aggregate.
                grew += 1
                assert after.metrics.throughput != before.metrics.throughput
        # Most of the grid grows (nmt's steep curve never plateaus within
        # a 0.95-target run, so the plateau points there stay single-segment).
        assert grew >= 9


class TestScheduleValidation:
    def test_run_grid_rejects_malformed_spec_before_computing(self):
        from repro.schedule.spec import ScheduleSpecError

        engine = SweepEngine(jobs=1, cache=None)
        bad = PointSpec("resnet-50", "mxnet", 16, schedule="gns:ceiling=banana")
        with pytest.raises(ScheduleSpecError):
            engine.run_grid([bad])
        assert engine.stats.points_computed == 0

    def test_faults_and_adaptive_schedule_are_mutually_exclusive(self):
        engine = SweepEngine(jobs=1, cache=None)
        both = PointSpec(
            "resnet-50",
            "mxnet",
            16,
            "cluster=2M1G:infiniband; steps=12; crash=1@5",
            schedule=ADAPTIVE,
        )
        with pytest.raises(ValueError, match="faults and an adaptive"):
            engine.run_grid([both])
        assert engine.stats.points_computed == 0

    def test_transforms_and_adaptive_schedule_are_mutually_exclusive(self):
        engine = SweepEngine(jobs=1, cache=None)
        both = PointSpec(
            "resnet-50", "mxnet", 16, "", "fp16", schedule=ADAPTIVE
        )
        with pytest.raises(ValueError, match="transforms and an"):
            engine.run_grid([both])
        assert engine.stats.points_computed == 0

    def test_fixed_schedule_composes_with_faults_and_transforms(self):
        # "fixed" normalizes away, so it must NOT trip the exclusivity
        # checks — it is the legacy point, whatever else it carries.
        engine = SweepEngine(jobs=1, cache=None)
        transformed = PointSpec(
            "resnet-50", "mxnet", 16, "", "fp16", schedule="fixed"
        )
        [point] = engine.run_grid([transformed])
        assert point.oom is False

    def test_model_without_a_curve_is_rejected(self):
        engine = SweepEngine(jobs=1, cache=None)
        bad = PointSpec("deep-speech-2", "mxnet", 16, schedule=ADAPTIVE)
        with pytest.raises(ValueError, match="convergence curve"):
            engine.run_grid([bad])
        assert engine.stats.points_computed == 0

    def test_grown_batch_oom_is_reported_not_crashed(self):
        # gns:ceiling=512 grows resnet-50 past the P4000; the scheduled
        # point must report OOM like any oversized fixed batch.
        spec = PointSpec("resnet-50", "mxnet", 32, schedule="gns:ceiling=512")
        [point] = SweepEngine(jobs=1, cache=None).run_grid([spec])
        assert point.oom is True
