"""Mutant self-test: the harness must catch the bugs it was built for.

Each test monkeypatches one deliberate bug into the simulator (a
mis-scaled roofline, an inflated memory snapshot, a fudged throughput, a
comm-overlap factor above one), then asserts that *exactly* the intended
invariant fires — no more, no less — and that the shrinker reduces the
counterexample to the minimal spec: simplest model, smallest ladder
batch, no faults, default GPU.

Every runner here uses ``jobs=1`` and ``cache=None``: patches are not
visible to pool workers, and a warm cache would mask the injected bug.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.conformance.invariants as conf_invariants
import repro.core.metrics as core_metrics
import repro.distributed.data_parallel as data_parallel
import repro.hardware.memory as hwmem
import repro.hardware.roofline as roofline
import repro.plan.symbolic as plan_symbolic
from repro.conformance import ConformanceRunner, invariant_registry, shrink
from repro.conformance.generator import simplicity_order
from repro.engine.executor import PointSpec
from repro.models.registry import get_model
from repro.tune.search import Autotuner


@pytest.fixture(autouse=True)
def _clear_tune_rank_memo():
    # The tuned-config-dominance invariant memoizes rank results per
    # (point, rank function); a patched-simulator result leaking across
    # tests would be compared against a differently-patched baseline.
    conf_invariants._TUNE_RANK_MEMO.clear()
    yield
    conf_invariants._TUNE_RANK_MEMO.clear()


def _fresh_runner() -> ConformanceRunner:
    # Built AFTER the patch is applied: the runner memoizes sessions, so a
    # pre-patch runner would carry clean evidence.  The process-wide
    # symbolic trace cache is keyed against the patchable timing model,
    # but clear it anyway: a mutant test must never see a clean trace.
    plan_symbolic.shared_plan_sets_clear()
    return ConformanceRunner(jobs=1, cache=None, include_grid=False, budget=0)


def _fired_point(spec: PointSpec, gpu: str = "p4000") -> list:
    runner = _fresh_runner()
    evidence = runner._gather_point(spec.model, spec.framework, spec.batch_size, gpu)
    assert evidence is not None
    return sorted(
        inv.name for inv in invariant_registry("point") if inv.check(evidence)
    )


def _patch_roofline(monkeypatch):
    """Bug class: kernel timing model loses its bandwidth term."""
    orig = roofline.RooflineModel.time_kernel

    def fast_kernel(self, kernel):
        timing = orig(self, kernel)
        return replace(timing, duration_s=timing.duration_s * 0.1)

    monkeypatch.setattr(roofline.RooflineModel, "time_kernel", fast_kernel)


def _patch_memory(monkeypatch):
    """Bug class: allocator reports a peak the tag ledger can't explain."""
    orig = hwmem.GPUMemoryAllocator.snapshot

    def inflated(self):
        snap = orig(self)
        return hwmem.MemorySnapshot(
            peak_by_tag=snap.peak_by_tag, peak_total=snap.peak_total * 1.5
        )

    monkeypatch.setattr(hwmem.GPUMemoryAllocator, "snapshot", inflated)


def _patch_metrics(monkeypatch):
    """Bug class: derived throughput drifts from the profile it summarizes."""
    orig = core_metrics.IterationMetrics.from_profile.__func__

    def inflated(cls, profile, throughput_unit="samples/s"):
        metrics = orig(cls, profile, throughput_unit)
        return replace(metrics, throughput=metrics.throughput * 1.01)

    monkeypatch.setattr(
        core_metrics.IterationMetrics, "from_profile", classmethod(inflated)
    )


def _patch_symbolic_flops(monkeypatch):
    """Bug class: an off-by-one coefficient in the symbolic FLOP total —
    too small for the tolerance-based conservation law, but a different
    float, so only the bit-exact differential can see it."""
    orig = plan_symbolic.SymbolicPlan.specialize

    def off_by_one(self, batch):
        plan = orig(self, batch)
        plan.total_flops = plan.total_flops + 1.0
        return plan

    monkeypatch.setattr(plan_symbolic.SymbolicPlan, "specialize", off_by_one)


def _patch_rank_order(monkeypatch):
    """Bug class: the autotuner's total order inverts makespan, so the
    slowest fitting candidate ranks first and "wins"."""
    monkeypatch.setattr(
        Autotuner,
        "_rank_key",
        staticmethod(lambda c: (-c.makespan_s, c.peak_bytes, c.spec)),
    )


def _patch_analytic_fits(monkeypatch):
    """Bug class: the analytic memory model declares every batch an OOM,
    while the searched oracle still compiles and fits."""
    monkeypatch.setattr(
        plan_symbolic.SymbolicPlanSet,
        "fits",
        lambda self, batch, capacity_bytes: False,
    )


class TestPointMutants:
    """Each point-scope bug fires exactly its intended invariant."""

    def test_clean_baseline_fires_nothing(self):
        assert _fired_point(PointSpec("resnet-50", "mxnet", 32, "")) == []

    def test_roofline_mutant(self, monkeypatch):
        _patch_roofline(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 32, ""))
        assert fired == ["roofline-kernel-floor"]

    def test_symbolic_flops_mutant(self, monkeypatch):
        _patch_symbolic_flops(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 32, ""))
        assert fired == ["symbolic-concrete-agreement"]

    def test_analytic_fits_mutant(self, monkeypatch):
        _patch_analytic_fits(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 32, ""))
        assert fired == ["analytic-oom-agreement"]

    def test_memory_mutant(self, monkeypatch):
        _patch_memory(monkeypatch)
        # Batch 4 keeps the inflated peak under the P4000's capacity, so
        # only the additivity law — not the capacity law — can fire.
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 4, ""))
        assert fired == ["memory-breakdown-additivity"]

    def test_metrics_mutant(self, monkeypatch):
        _patch_metrics(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 32, ""))
        assert fired == ["throughput-identity"]

    def test_rank_order_mutant(self, monkeypatch):
        # Inverted ranking crowns the slow depth:36 pipeline on a residual
        # network; only the dominance law sees through the cost model.
        _patch_rank_order(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 4, ""))
        assert fired == ["tuned-config-dominance"]


class TestScalingMutant:
    def test_comm_overlap_above_one(self, monkeypatch):
        monkeypatch.setattr(data_parallel, "COMM_OVERLAP", 1.5)
        runner = _fresh_runner()
        evidence = runner._gather_scaling(
            "resnet-50", "mxnet", 32, "2M1G (infiniband)"
        )
        assert evidence is not None
        fired = sorted(
            inv.name for inv in invariant_registry("scaling") if inv.check(evidence)
        )
        assert fired == ["scaling-at-most-linear"]


class TestShrinker:
    def test_roofline_mutant_shrinks_to_minimal_spec(self, monkeypatch):
        _patch_roofline(monkeypatch)
        runner = _fresh_runner()
        # A deliberately baroque starting point: big model, faulted
        # scenario, the bigger GPU.
        start = PointSpec(
            "inception-v3",
            "tensorflow",
            32,
            "cluster=2M1G:infiniband; steps=10; seed=3; crash=1@5",
        )
        assert runner.violates("roofline-kernel-floor", start, "titan xp")

        minimal, gpu, evals = shrink(
            start,
            "titan xp",
            lambda spec, g: runner.violates("roofline-kernel-floor", spec, g),
        )
        # The bug is global, so the search must land on THE simplest
        # configuration: first model in the simplicity order, its first
        # framework, the smallest declared batch, no faults, default GPU.
        simplest = simplicity_order()[0]
        assert minimal.model == simplest == "a3c"
        assert minimal.framework == get_model(simplest).frameworks[0]
        assert minimal.batch_size == min(get_model(simplest).batch_sizes)
        assert minimal.faults == ""
        assert gpu == "p4000"
        assert evals <= 24
        # And the minimal spec still reproduces the violation.
        assert runner.violates("roofline-kernel-floor", minimal, gpu)

    def test_symbolic_flops_mutant_shrinks_to_minimal_spec(self, monkeypatch):
        _patch_symbolic_flops(monkeypatch)
        runner = _fresh_runner()
        start = PointSpec("inception-v3", "tensorflow", 32, "")
        assert runner.violates("symbolic-concrete-agreement", start, "titan xp")
        minimal, gpu, evals = shrink(
            start,
            "titan xp",
            lambda spec, g: runner.violates("symbolic-concrete-agreement", spec, g),
        )
        simplest = simplicity_order()[0]
        assert minimal.model == simplest == "a3c"
        assert minimal.framework == get_model(simplest).frameworks[0]
        assert minimal.batch_size == min(get_model(simplest).batch_sizes)
        assert minimal.faults == ""
        assert gpu == "p4000"
        assert runner.violates("symbolic-concrete-agreement", minimal, gpu)

    def test_analytic_fits_mutant_shrinks_to_minimal_spec(self, monkeypatch):
        _patch_analytic_fits(monkeypatch)
        runner = _fresh_runner()
        start = PointSpec("inception-v3", "tensorflow", 32, "")
        assert runner.violates("analytic-oom-agreement", start, "titan xp")
        minimal, gpu, evals = shrink(
            start,
            "titan xp",
            lambda spec, g: runner.violates("analytic-oom-agreement", spec, g),
        )
        simplest = simplicity_order()[0]
        assert minimal.model == simplest == "a3c"
        assert minimal.batch_size == min(get_model(simplest).batch_sizes)
        assert minimal.faults == ""
        assert gpu == "p4000"
        assert runner.violates("analytic-oom-agreement", minimal, gpu)

    def test_rank_order_mutant_shrinks_to_smallest_resnet(self, monkeypatch):
        _patch_rank_order(monkeypatch)
        runner = _fresh_runner()
        start = PointSpec(
            "resnet-50", "cntk", 32, "cluster=2M1G:infiniband; crash=1@5"
        )
        assert runner.violates("tuned-config-dominance", start, "titan xp")
        minimal, gpu, evals = shrink(
            start,
            "titan xp",
            lambda spec, g: runner.violates("tuned-config-dominance", spec, g),
        )
        # The depth rewrite only applies to residual networks, so the
        # model leg cannot shrink away from resnet-50 (the inverted order
        # is harmless where every candidate matches the baseline's
        # makespan); everything else minimizes.
        assert minimal.model == "resnet-50"
        assert minimal.framework == get_model("resnet-50").frameworks[0]
        assert minimal.batch_size == min(get_model("resnet-50").batch_sizes)
        assert minimal.faults == ""
        assert gpu == "p4000"
        assert runner.violates("tuned-config-dominance", minimal, gpu)

    def test_shrink_is_identity_on_clean_simulator(self):
        runner = _fresh_runner()
        spec = PointSpec("a3c", "mxnet", 8, "")
        assert not runner.violates("roofline-kernel-floor", spec, "p4000")


class TestRunnerCatchesMutantEndToEnd:
    @pytest.mark.slow
    def test_fuzz_run_reports_and_shrinks(self, monkeypatch):
        _patch_roofline(monkeypatch)
        runner = ConformanceRunner(
            jobs=1,
            cache=None,
            budget=0,
            include_grid=True,
            panels=(("resnet-50", ("mxnet",)),),
            deep_limit=1,
            scaling_probes=(),
            max_shrinks=1,
            max_shrink_evals=24,
        )
        report = runner.run()
        assert not report.ok
        fired = {v.check for v in report.violations}
        assert "roofline-kernel-floor" in fired
        shrunk = [v for v in report.violations if v.shrunk]
        assert shrunk, "first violation should carry a minimal reproduction"
        minimal = shrunk[0].shrunk
        assert minimal["model"] == "a3c"
        assert minimal["faults"] == ""
        assert minimal["gpu"] == "p4000"
        doc = report.to_doc()
        assert doc["violations"][0]["shrunk"] == minimal
