"""Documentation anti-rot: module paths and commands the docs reference
must exist."""

import importlib
import os
import re

import pytest

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
_DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    os.path.join("docs", "architecture.md"),
    os.path.join("docs", "toolchain.md"),
    os.path.join("docs", "calibration.md"),
    os.path.join("examples", "README.md"),
)

_MODULE_PATTERN = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")


def _doc_text(name: str) -> str:
    with open(os.path.join(_ROOT, name)) as handle:
        return handle.read()


@pytest.mark.parametrize("doc", _DOC_FILES)
def test_doc_exists_and_substantial(doc):
    text = _doc_text(doc)
    assert len(text) > 500, doc


@pytest.mark.parametrize("doc", _DOC_FILES)
def test_referenced_modules_exist(doc):
    text = _doc_text(doc)
    missing = []
    for reference in set(_MODULE_PATTERN.findall(text)):
        module_path = reference
        # References may point at module attributes; try progressively
        # shorter prefixes until one imports, then getattr the rest.
        parts = module_path.split(".")
        resolved = False
        for cut in range(len(parts), 0, -1):
            try:
                module = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            obj = module
            ok = True
            for attribute in parts[cut:]:
                if not hasattr(obj, attribute):
                    ok = False
                    break
                obj = getattr(obj, attribute)
            if ok:
                resolved = True
            break
        if not resolved:
            missing.append(reference)
    assert not missing, f"{doc} references missing modules: {missing}"


def test_readme_example_scripts_exist():
    text = _doc_text("README.md")
    for match in re.findall(r"python (examples/[a-z_]+\.py)", text):
        assert os.path.exists(os.path.join(_ROOT, match)), match


def test_examples_readme_lists_every_script():
    text = _doc_text(os.path.join("examples", "README.md"))
    scripts = [
        name
        for name in os.listdir(os.path.join(_ROOT, "examples"))
        if name.endswith(".py")
    ]
    for script in scripts:
        assert script in text, f"examples/README.md misses {script}"


def test_design_lists_every_package():
    text = _doc_text("DESIGN.md")
    src = os.path.join(_ROOT, "src", "repro")
    packages = [
        name
        for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name)) and not name.startswith("__")
    ]
    for package in packages:
        assert f"{package}/" in text or f"repro.{package}" in text, package
