"""Shared fixtures.

Expensive simulator runs are cached at session scope: the suite object is
stateless, and profiles for commonly-asserted configurations are computed
once and shared across test modules.
"""

from __future__ import annotations

import pytest

from repro.core.suite import standard_suite
from repro.training.session import TrainingSession


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the sweep engine's default cache at a per-test temp dir so no
    test (CLI tests especially) writes ``.tbd-cache`` into the repo."""
    monkeypatch.setenv("TBD_CACHE_DIR", str(tmp_path / "tbd-cache"))


@pytest.fixture(scope="session")
def suite():
    return standard_suite()


@pytest.fixture(scope="session")
def profile_cache():
    """Memoized (model, framework, batch) -> IterationProfile."""
    cache = {}

    def get(model: str, framework: str, batch: int):
        key = (model, framework, batch)
        if key not in cache:
            cache[key] = TrainingSession(model, framework).run_iteration(batch)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def resnet_mxnet_32(profile_cache):
    return profile_cache("resnet-50", "mxnet", 32)


@pytest.fixture(scope="session")
def nmt_tf_128(profile_cache):
    return profile_cache("nmt", "tensorflow", 128)
