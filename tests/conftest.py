"""Shared fixtures.

Expensive simulator runs are cached at session scope: the suite object is
stateless, and profiles for commonly-asserted configurations are computed
once and shared across test modules.
"""

from __future__ import annotations

import asyncio
import os
import random

import pytest

from repro.core.suite import standard_suite
from repro.serve.service import BenchmarkServer
from repro.training.session import TrainingSession


def pytest_collection_modifyitems(config, items):
    """Shuffle test order when ``TBD_TEST_SHUFFLE`` is set.

    The suite must not depend on collection order (shared tmp dirs, warm
    caches, leaked globals all show up as order sensitivity).  CI runs one
    job with ``TBD_TEST_SHUFFLE=<seed>`` to enforce that; the seed is
    printed so a failing order can be reproduced locally with
    ``TBD_TEST_SHUFFLE=<seed> pytest ...``.
    """
    seed_text = os.environ.get("TBD_TEST_SHUFFLE", "")
    if not seed_text:
        return
    seed = int(seed_text) if seed_text.isdigit() else seed_text
    # Shuffle whole modules, then tests within each module: class/module
    # scoped fixtures stay coherent while cross-module ordering is random.
    rng = random.Random(seed)
    by_module: dict = {}
    for item in items:
        by_module.setdefault(item.module.__name__, []).append(item)
    modules = list(by_module)
    rng.shuffle(modules)
    items[:] = [item for module in modules for item in by_module[module]]
    print(f"\n[conftest] TBD_TEST_SHUFFLE={seed_text}: shuffled {len(modules)} modules")


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the sweep engine's default cache at a per-test temp dir so no
    test (CLI tests especially) writes ``.tbd-cache`` into the repo."""
    monkeypatch.setenv("TBD_CACHE_DIR", str(tmp_path / "tbd-cache"))


class ServeRuntime:
    """A private event loop plus server bookkeeping for serve tests.

    Async servers leak two ways in a sync test suite: a worker task left
    running when an assertion throws, and an event loop that survives the
    test.  The runtime owns one loop, tracks every server it built, and
    its ``close()`` (called by the fixture's teardown, even on failure)
    force-stops stragglers before closing the loop.
    """

    def __init__(self, tmp_path):
        self.loop = asyncio.new_event_loop()
        self.cache_root = tmp_path / "serve-cache"
        self._servers: list[BenchmarkServer] = []

    def server(self, **kwargs) -> BenchmarkServer:
        """Build (but do not start) a tracked server with a temp cache."""
        kwargs.setdefault(
            "cache_dir", str(self.cache_root / f"srv-{len(self._servers)}")
        )
        server = BenchmarkServer(**kwargs)
        self._servers.append(server)
        return server

    def run(self, coro):
        """Drive a coroutine to completion on the runtime's loop."""
        return self.loop.run_until_complete(coro)

    def close(self) -> None:
        try:
            for server in self._servers:
                if server._tasks:
                    self.loop.run_until_complete(server.stop(drain=False))
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self.loop.close()


@pytest.fixture
def serve_runtime(tmp_path):
    """A :class:`ServeRuntime` whose loop and servers are always torn
    down, even when the test body raises."""
    runtime = ServeRuntime(tmp_path)
    try:
        yield runtime
    finally:
        runtime.close()


@pytest.fixture(scope="session")
def suite():
    return standard_suite()


@pytest.fixture(scope="session")
def profile_cache():
    """Memoized (model, framework, batch) -> IterationProfile."""
    cache = {}

    def get(model: str, framework: str, batch: int):
        key = (model, framework, batch)
        if key not in cache:
            cache[key] = TrainingSession(model, framework).run_iteration(batch)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def resnet_mxnet_32(profile_cache):
    return profile_cache("resnet-50", "mxnet", 32)


@pytest.fixture(scope="session")
def nmt_tf_128(profile_cache):
    return profile_cache("nmt", "tensorflow", 128)
