"""Unit tests for the framework personalities."""

import pytest

from repro.frameworks.base import Framework, MomentumAllocation
from repro.frameworks.registry import (
    CNTK,
    MXNET,
    TENSORFLOW,
    framework_catalog,
    get_framework,
)
from repro.kernels.base import Kernel, KernelCategory


class TestRegistry:
    def test_lookup_aliases(self):
        assert get_framework("tf") is TENSORFLOW
        assert get_framework("TensorFlow") is TENSORFLOW
        assert get_framework("mxnet") is MXNET
        assert get_framework("CNTK") is CNTK

    def test_passthrough(self):
        assert get_framework(MXNET) is MXNET

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown framework"):
            get_framework("caffe")

    def test_catalog_has_paper_versions(self):
        catalog = framework_catalog()
        assert catalog["TensorFlow"].version == "1.3"
        assert catalog["MXNet"].version == "0.11.0"
        assert catalog["CNTK"].version == "2.0"


class TestPersonalities:
    def test_mxnet_allocates_momentum_dynamically(self):
        assert MXNET.momentum_allocation is MomentumAllocation.DYNAMIC
        assert TENSORFLOW.momentum_allocation is MomentumAllocation.STATIC
        assert CNTK.momentum_allocation is MomentumAllocation.STATIC

    def test_tensorflow_allocator_tighter_than_mxnet(self):
        assert TENSORFLOW.pool_overhead < MXNET.pool_overhead

    def test_cntk_input_pipeline_is_nearly_free(self):
        assert CNTK.pipeline_cost_factor < 0.1
        assert TENSORFLOW.pipeline_cost_factor >= 1.0

    def test_keys(self):
        assert TENSORFLOW.key == "tensorflow"


class TestKernelSpecialization:
    def test_elementwise_kernels_get_framework_names(self):
        kernel = Kernel(
            "residual_add_kernel", KernelCategory.ELEMENTWISE, 10.0, 40.0
        )
        assert "Eigen" in TENSORFLOW.specialize_kernel(kernel).name
        assert "mxnet_generic" in MXNET.specialize_kernel(kernel).name

    def test_cudnn_kernels_keep_their_names(self):
        kernel = Kernel(
            "cudnn::detail::bn_fw_tr_1C11_kernel_new",
            KernelCategory.NORM,
            10.0,
            40.0,
        )
        assert TENSORFLOW.specialize_kernel(kernel).name == kernel.name

    def test_efficiency_multiplier_applied(self):
        kernel = Kernel(
            "conv_kernel", KernelCategory.CONV, 10.0, 40.0, max_compute_efficiency=0.5
        )
        specialized = TENSORFLOW.specialize_kernel(kernel)
        factor = TENSORFLOW.kernel_efficiency[KernelCategory.CONV]
        assert specialized.max_compute_efficiency == pytest.approx(0.5 * factor)

    def test_efficiency_capped_at_one(self):
        kernel = Kernel(
            "rnn", KernelCategory.RNN_POINTWISE, 10.0, 40.0, max_compute_efficiency=0.95
        )
        specialized = TENSORFLOW.specialize_kernel(kernel)  # factor 1.10
        assert specialized.max_compute_efficiency <= 1.0

    def test_unlisted_category_untouched(self):
        kernel = Kernel("x", KernelCategory.MEMCPY, 0.0, 40.0)
        assert TENSORFLOW.specialize_kernel(kernel) is kernel

    def test_host_sync_flag_preserved(self):
        kernel = Kernel(
            "rnn_cell",
            KernelCategory.RNN_POINTWISE,
            10.0,
            40.0,
            host_sync=True,
        )
        assert MXNET.specialize_kernel(kernel).host_sync

    def test_specialize_kernels_list(self):
        kernels = [Kernel("a", KernelCategory.GEMM, 1.0, 4.0)] * 3
        assert len(TENSORFLOW.specialize_kernels(kernels)) == 3


class TestValidation:
    def _base(self, **overrides):
        fields = dict(
            name="test",
            version="0",
            dispatch_cost_s=1e-6,
            frontend_cost_s=1e-4,
            pool_overhead=1.0,
            workspace_factor=1.0,
            momentum_allocation=MomentumAllocation.STATIC,
        )
        fields.update(overrides)
        return Framework(**fields)

    def test_valid_minimal(self):
        assert self._base().name == "test"

    def test_invalid_dispatch(self):
        with pytest.raises(ValueError):
            self._base(dispatch_cost_s=0.0)

    def test_invalid_pool_overhead(self):
        with pytest.raises(ValueError):
            self._base(pool_overhead=0.5)

    def test_invalid_pipeline_efficiency(self):
        with pytest.raises(ValueError):
            self._base(data_pipeline_efficiency=0.0)
