"""Real end-to-end training of the miniature model families.

These tests run genuine gradient descent through the autodiff engine on the
synthetic datasets — demonstrating that every TBD model family (CNN
classifier, seq2seq translator, GAN, actor-critic) actually *trains* in
this repository, not just simulates.
"""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.minimodels import (
    TinyActorCritic,
    TinyCritic,
    TinyGenerator,
    TinyResNet,
    TinySeq2Seq,
)
from repro.tensor.optim import SGD, Adam
from repro.tensor.tensor import Tensor, no_grad


def _image_batch(rng, batch, classes, size=10):
    labels = rng.integers(0, classes, size=batch)
    coords = np.linspace(0.0, np.pi, size, dtype=np.float32)
    images = rng.normal(0.0, 0.3, size=(batch, 3, size, size)).astype(np.float32)
    for index, label in enumerate(labels):
        images[index] += np.sin((1 + label) * coords)[None, :, None]
    return images.astype(np.float32), labels


class TestTinyResNet:
    def test_learns_synthetic_image_classes(self):
        rng = np.random.default_rng(0)
        model = TinyResNet(channels=8, classes=4)
        optimizer = SGD(model.parameters(), learning_rate=0.05, momentum=0.9)
        first_loss = None
        for _ in range(60):
            images, labels = _image_batch(rng, 16, 4)
            loss = F.cross_entropy(model(Tensor(images)), labels)
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        images, labels = _image_batch(rng, 64, 4)
        with no_grad():
            accuracy = F.accuracy(model(Tensor(images)), labels)
        assert loss.item() < 0.5 * first_loss
        assert accuracy > 0.6  # chance is 0.25

    def test_residual_path_carries_gradient(self):
        model = TinyResNet(channels=4, classes=2)
        images, labels = _image_batch(np.random.default_rng(1), 4, 2)
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())


class TestTinySeq2Seq:
    def test_loss_decreases_on_reversal_task(self):
        rng = np.random.default_rng(0)
        model = TinySeq2Seq(vocab=12, embed=12, hidden=24)
        optimizer = Adam(model.parameters(), learning_rate=0.02)
        losses = []
        for _ in range(60):
            source = rng.integers(1, 12, size=(8, 4))
            target = (source[:, ::-1] + 1) % 12
            target_in = np.concatenate(
                [np.zeros((8, 1), dtype=np.int64), target[:, :-1]], axis=1
            )
            loss = model.loss(source, target_in, target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.7 * losses[0]

    def test_teacher_forced_logits_shape(self):
        model = TinySeq2Seq(vocab=10, embed=8, hidden=16)
        logits = model(np.ones((2, 3), dtype=np.int64), np.ones((2, 5), dtype=np.int64))
        assert logits.shape == (2, 5, 10)


class TestTinyGAN:
    def test_wasserstein_critic_separates_real_from_fake(self):
        rng = np.random.default_rng(0)
        generator = TinyGenerator(latent=4, image_elements=16)
        critic = TinyCritic(image_elements=16)
        critic_opt = Adam(critic.parameters(), learning_rate=0.01)
        # Real data: a fixed bimodal pattern the generator starts far from.
        def real_batch(batch):
            return np.sign(rng.normal(0.5, 1.0, size=(batch, 16))).astype(np.float32)

        for _ in range(80):
            real = Tensor(real_batch(32))
            with no_grad():
                z = Tensor(rng.normal(0, 1, size=(32, 4)).astype(np.float32))
                fake_data = generator(z).data
            fake = Tensor(fake_data)
            # Critic maximizes score(real) - score(fake).
            loss = critic(fake).mean() - critic(real).mean()
            critic_opt.zero_grad()
            loss.backward()
            critic_opt.step()
        real_score = critic(Tensor(real_batch(64))).data.mean()
        with no_grad():
            z = Tensor(rng.normal(0, 1, size=(64, 4)).astype(np.float32))
            fake_score = critic(Tensor(generator(z).data)).data.mean()
        assert real_score > fake_score + 0.5

    def test_generator_chases_critic(self):
        rng = np.random.default_rng(1)
        generator = TinyGenerator(latent=4, image_elements=16)
        critic = TinyCritic(image_elements=16)
        gen_opt = Adam(generator.parameters(), learning_rate=0.02)
        z = Tensor(rng.normal(0, 1, size=(16, 4)).astype(np.float32))
        before = critic(generator(z)).data.mean()
        for _ in range(40):
            loss = -critic(generator(z)).mean()
            gen_opt.zero_grad()
            loss.backward()
            gen_opt.step()
        after = critic(generator(z)).data.mean()
        assert after > before


class TestTinyActorCritic:
    def test_policy_learns_to_track_signal(self):
        rng = np.random.default_rng(0)
        model = TinyActorCritic(frame_stack=2, frame=12, actions=4)
        optimizer = Adam(model.parameters(), learning_rate=0.01)
        def batch(size):
            actions = rng.integers(0, 4, size=size)
            frames = rng.normal(0, 0.1, size=(size, 2, 12, 12)).astype(np.float32)
            for i, a in enumerate(actions):
                col = int(a) * 3
                frames[i, :, :, col : col + 2] += 1.0
            return frames, actions

        first = None
        for _ in range(80):
            frames, actions = batch(16)
            policy_logits, value = model(Tensor(frames))
            policy_loss = F.cross_entropy(policy_logits, actions)
            value_loss = F.mse(value, np.ones((16, 1), dtype=np.float32))
            loss = policy_loss + 0.5 * value_loss
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        frames, actions = batch(64)
        with no_grad():
            policy_logits, value = model(Tensor(frames))
        assert F.accuracy(policy_logits, actions) > 0.5  # chance is 0.25
        assert abs(value.data.mean() - 1.0) < 0.3
