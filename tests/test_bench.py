"""Tests for the statistical differential-benchmarking harness."""

import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchStore,
    InterleavedRunner,
    NoiseModel,
    evaluate_gate,
    get_suite,
    run_suite,
    subject_for,
    suite_catalog,
)
from repro.bench.noise import median_convergence_tolerance
from repro.bench.store import build_record, environment_fingerprint
from repro.bench.subjects import PlanSubject
from repro.engine.keys import NON_KEY_RUN_DIMENSIONS, point_key
from repro.observability.exporters import bench_records_to_jsonl
from repro.plan.executor import makespan_under_noise, plan_arrays, replay
from repro.training.session import TrainingSession


@pytest.fixture(scope="module")
def resnet_plan():
    return TrainingSession("resnet-50", "tensorflow").compile(32)


@pytest.fixture(scope="module")
def nmt_plan():
    return TrainingSession("nmt", "tensorflow").compile(64)


class TestNoiseModel:
    def test_streams_are_reproducible_and_independent(self):
        model = NoiseModel(seed=3)
        first = model.stream(0).kernel_factors(16)
        again = model.stream(0).kernel_factors(16)
        other = model.stream(1).kernel_factors(16)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_zero_jitter_is_exact(self):
        model = NoiseModel(
            kernel_jitter=0.0, dispatch_jitter=0.0,
            interconnect_jitter=0.0, run_jitter=0.0,
        )
        stream = model.stream(0)
        assert np.array_equal(stream.kernel_factors(8), np.ones(8))
        assert stream.interconnect_factor() == 1.0

    def test_bias_scales_kernel_factors_only(self):
        plain = NoiseModel(seed=5)
        biased = plain.with_bias(1.05)
        assert np.allclose(
            biased.stream(2).kernel_factors(32),
            plain.stream(2).kernel_factors(32) * 1.05,
        )
        assert np.array_equal(
            biased.stream(2).dispatch_factors(32),
            plain.stream(2).dispatch_factors(32),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(kernel_jitter=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(kernel_bias=0.0)
        with pytest.raises(ValueError):
            NoiseModel().stream(-1)


class TestExecutorNoise:
    def test_noiseless_replay_is_bit_identical(self, resnet_plan):
        rerun = replay(resnet_plan.timings, resnet_plan.framework)
        assert rerun.makespan_s == resnet_plan.execution.makespan_s
        assert rerun.gpu_busy_s == resnet_plan.execution.gpu_busy_s
        assert rerun.dispatch_cpu_s == resnet_plan.execution.dispatch_cpu_s

    def test_fast_path_agrees_with_full_replay(self, resnet_plan):
        model = NoiseModel(seed=9)
        durations, host_syncs = plan_arrays(resnet_plan.timings)
        for run_index in range(3):
            full = replay(
                resnet_plan.timings,
                resnet_plan.framework,
                noise=model.stream(run_index),
            )
            fast = makespan_under_noise(
                durations,
                host_syncs,
                resnet_plan.framework,
                model.stream(run_index),
            )
            assert fast == full.makespan_s

    def test_noise_moves_the_makespan(self, resnet_plan):
        durations, host_syncs = plan_arrays(resnet_plan.timings)
        noisy = makespan_under_noise(
            durations, host_syncs, resnet_plan.framework, NoiseModel(seed=1).stream(0)
        )
        assert noisy != resnet_plan.makespan_s
        assert noisy > 0.0

    def test_median_converges_to_noiseless(self, resnet_plan):
        model = NoiseModel(seed=4)
        durations, host_syncs = plan_arrays(resnet_plan.timings)
        samples = 15
        observed = sorted(
            makespan_under_noise(
                durations, host_syncs, resnet_plan.framework, model.stream(i)
            )
            for i in range(samples)
        )
        median = observed[samples // 2]
        tolerance = median_convergence_tolerance(model, samples)
        assert abs(median / resnet_plan.makespan_s - 1.0) <= tolerance

    def test_noise_seed_is_not_a_cache_dimension(self):
        assert "noise_seed" in NON_KEY_RUN_DIMENSIONS
        # point_key has no noise parameter at all: two bench runs at
        # different seeds address the same cached simulation result.
        key = point_key("resnet-50", "tensorflow", 32)
        assert key == point_key("resnet-50", "tensorflow", 32)


class TestSubjects:
    def test_subject_for_variants(self, nmt_plan):
        baseline = subject_for("baseline", "nmt", "tensorflow", 64)
        fused = subject_for("fused-rnn", "nmt", "tensorflow", 64)
        slowed = subject_for("slowdown:5", "nmt", "tensorflow", 64)
        assert baseline.noiseless_s == pytest.approx(nmt_plan.makespan_s)
        assert fused.noiseless_s < baseline.noiseless_s
        assert slowed.kernel_bias == pytest.approx(1.05)
        with pytest.raises(ValueError):
            subject_for("warp-drive", "nmt", "tensorflow", 64)

    def test_describe_is_json_ready(self):
        doc = subject_for("baseline", "resnet-50", "tensorflow", 32).describe()
        assert doc["model"] == "ResNet-50"
        assert doc["kernels"] > 0
        json.dumps(doc)


class TestInterleavedRunner:
    def test_rejects_same_object_on_both_sides(self, resnet_plan):
        subject = PlanSubject("baseline", resnet_plan)
        with pytest.raises(ValueError):
            InterleavedRunner().run(subject, subject)

    def test_same_seed_reproduces_result_exactly(self, resnet_plan):
        def once():
            runner = InterleavedRunner(noise=NoiseModel(seed=7))
            return runner.run(
                PlanSubject("baseline", resnet_plan),
                PlanSubject("slowdown:5", resnet_plan, kernel_bias=1.05),
                samples=20,
            )
        assert once().to_doc() == once().to_doc()

    def test_detects_injected_5pct_slowdown(self, resnet_plan):
        runner = InterleavedRunner(noise=NoiseModel(seed=7))
        result = runner.run(
            PlanSubject("baseline", resnet_plan),
            PlanSubject("slowdown:5", resnet_plan, kernel_bias=1.05),
        )
        assert result.verdict == "regression"
        assert result.p_regression < 0.05
        assert result.speedup < 1.0

    def test_detects_improvement(self, resnet_plan):
        runner = InterleavedRunner(noise=NoiseModel(seed=7))
        result = runner.run(
            PlanSubject("baseline", resnet_plan),
            PlanSubject("speedup:5", resnet_plan, kernel_bias=1.0 / 1.05),
        )
        assert result.verdict == "improvement"
        assert result.p_improvement < 0.05

    def test_noop_false_positive_rate_over_many_seeds(self, resnet_plan):
        """The acceptance property CI relies on: a no-op A/B must stay
        'indistinguishable' across >= 20 seeds (at most one excursion)."""
        regressions = 0
        for seed in range(24):
            runner = InterleavedRunner(noise=NoiseModel(seed=seed))
            result = runner.run(
                PlanSubject("baseline", resnet_plan),
                PlanSubject("baseline-2", resnet_plan),
                samples=30,
            )
            if result.verdict != "indistinguishable":
                regressions += 1
        assert regressions <= 1, f"{regressions}/24 no-op seeds flagged"

    def test_adaptive_sizing_respects_bounds(self, resnet_plan):
        runner = InterleavedRunner(
            noise=NoiseModel(seed=2), min_samples=25, max_samples=40
        )
        result = runner.run(
            PlanSubject("baseline", resnet_plan),
            PlanSubject("baseline-2", resnet_plan),
        )
        assert 25 <= result.samples_per_side <= 40

    def test_ci_brackets_the_median_speedup(self, resnet_plan):
        runner = InterleavedRunner(noise=NoiseModel(seed=3))
        result = runner.run(
            PlanSubject("baseline", resnet_plan),
            PlanSubject("slowdown:2", resnet_plan, kernel_bias=1.02),
            samples=40,
        )
        low, high = result.speedup_ci
        assert low <= result.speedup <= high


class TestSuitesAndGate:
    def test_catalog_names(self):
        names = [suite.name for suite in suite_catalog()]
        assert names == ["fused-rnn", "noop", "slowdown5"]
        with pytest.raises(ValueError):
            get_suite("nope")

    def test_gate_passes_on_improvements_and_noise(self):
        suite = get_suite("noop")
        results = run_suite(suite, noise=NoiseModel(seed=7), samples=20)
        report = evaluate_gate(suite, results)
        assert report.passed
        assert report.regressions == ()

    def test_gate_fails_on_significant_slowdown(self):
        suite = get_suite("slowdown5")
        results = run_suite(suite, noise=NoiseModel(seed=7), samples=20)
        assert all(r.verdict == "regression" for r in results)
        assert all(r.p_regression < 0.05 for r in results)
        # As the power control, the regressions are *expected*: the gate
        # passes, and would fail if the harness ever stopped seeing them.
        assert evaluate_gate(suite, results).passed

    def test_control_mismatch_fails_the_gate(self):
        suite = get_suite("slowdown5")
        results = run_suite(get_suite("noop"), noise=NoiseModel(seed=7), samples=20)
        report = evaluate_gate(suite, results)
        assert not report.passed
        assert len(report.mismatches) == len(results)
        assert "FAIL" in report.format_summary()


class TestStore:
    def _record(self, seed):
        suite = get_suite("noop")
        noise = NoiseModel(seed=seed)
        results = run_suite(suite, noise=noise, samples=20)
        gate = evaluate_gate(suite, results)
        return build_record(suite.name, seed, noise.to_doc(), results, gate.to_doc())

    def test_same_seed_rerun_is_byte_identical(self, tmp_path):
        store = BenchStore(str(tmp_path))
        store.append("noop", self._record(7))
        first = store.path("noop")
        first_bytes = open(first, "rb").read()
        store.append("noop", self._record(7))
        assert open(first, "rb").read() == first_bytes
        assert len(store.records("noop")) == 1

    def test_different_seed_appends_a_new_record(self, tmp_path):
        store = BenchStore(str(tmp_path))
        store.append("noop", self._record(7))
        store.append("noop", self._record(8))
        records = store.records("noop")
        assert len(records) == 2
        assert records[0]["key"] != records[1]["key"]
        assert store.suites() == ["noop"]

    def test_schema_and_fingerprint(self, tmp_path):
        store = BenchStore(str(tmp_path))
        store.append("noop", self._record(7))
        document = json.loads(open(store.path("noop")).read())
        assert document["schema"] == BENCH_SCHEMA
        record = document["records"][0]
        fingerprint = record["environment"]
        assert fingerprint == environment_fingerprint()
        assert len(fingerprint["code"]) == 64
        assert len(fingerprint["bench_code"]) == 64

    def test_rejects_unknown_schema(self, tmp_path):
        store = BenchStore(str(tmp_path))
        with open(store.path("noop"), "w") as handle:
            json.dump({"schema": 99, "suite": "noop", "records": []}, handle)
        with pytest.raises(ValueError):
            store.load("noop")

    def test_jsonl_export_is_deterministic(self, tmp_path):
        store = BenchStore(str(tmp_path))
        store.append("noop", self._record(7))
        records = store.records("noop")
        text = bench_records_to_jsonl(records)
        assert text == bench_records_to_jsonl(records)
        events = [json.loads(line) for line in text.splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "bench_record"
        assert kinds.count("bench_result") == len(records[0]["results"])
        assert all(
            event["record_key"] == records[0]["key"]
            for event in events
            if event["event"] == "bench_result"
        )
        assert bench_records_to_jsonl([]) == ""
