"""Unit and behaviour tests for distributed data-parallel training."""

import pytest

from repro.distributed import (
    DataParallelTrainer,
    ParameterServerExchange,
    RingAllReduceExchange,
    standard_configurations,
)
from repro.distributed.allreduce import ring_allreduce_time
from repro.distributed.topology import configuration
from repro.hardware.cluster import parse_configuration
from repro.hardware.interconnect import ETHERNET_1G, INFINIBAND_100G, PCIE_3_X16

_GRAD_BYTES = 100e6  # ~ResNet-50 gradients


class TestParameterServer:
    def test_single_gpu_has_no_inter_machine_cost(self):
        cost = ParameterServerExchange().cost(_GRAD_BYTES, configuration("1M1G"))
        assert cost.inter_machine_s == 0.0
        assert cost.intra_machine_s > 0.0

    def test_infiniband_orders_faster_than_ethernet(self):
        exchange = ParameterServerExchange()
        ib = exchange.cost(_GRAD_BYTES, configuration("2M1G (infiniband)"))
        eth = exchange.cost(_GRAD_BYTES, configuration("2M1G (ethernet)"))
        assert eth.inter_machine_s > 20 * ib.inter_machine_s

    def test_aggregation_scales_with_gpu_count(self):
        exchange = ParameterServerExchange()
        one = exchange.cost(_GRAD_BYTES, configuration("1M1G"))
        four = exchange.cost(_GRAD_BYTES, configuration("1M4G"))
        assert four.aggregation_s == pytest.approx(4 * one.aggregation_s)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ParameterServerExchange().cost(-1.0, configuration("1M1G"))


class TestRingAllReduce:
    def test_single_worker_free(self):
        assert ring_allreduce_time(_GRAD_BYTES, 1, PCIE_3_X16) == 0.0

    def test_volume_approaches_two_gradients(self):
        two = ring_allreduce_time(_GRAD_BYTES, 2, INFINIBAND_100G)
        many = ring_allreduce_time(_GRAD_BYTES, 64, INFINIBAND_100G)
        # Bandwidth term: 2*g*(n-1)/n -> between 1x and 2x gradient volume.
        assert many < 2.2 * two

    def test_cost_interface(self):
        cost = RingAllReduceExchange().cost(_GRAD_BYTES, configuration("1M4G"))
        assert cost.total_s > 0
        assert cost.steps == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1, 2, PCIE_3_X16)
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0, PCIE_3_X16)


class TestDataParallelTrainer:
    def test_fig10_ordering_at_batch_32(self):
        throughputs = {}
        for label, cluster in standard_configurations().items():
            trainer = DataParallelTrainer("resnet-50", "mxnet", cluster)
            throughputs[label] = trainer.run_iteration(32).throughput
        # Observation 13's shape:
        assert throughputs["2M1G (ethernet)"] < throughputs["1M1G"]
        assert throughputs["2M1G (infiniband)"] > 1.5 * throughputs["1M1G"]
        assert throughputs["1M2G"] > 1.5 * throughputs["1M1G"]
        assert throughputs["1M4G"] > 3.0 * throughputs["1M1G"]
        assert throughputs["1M4G"] > throughputs["1M2G"]

    def test_single_machine_scaling_efficiency_high(self):
        trainer = DataParallelTrainer(
            "resnet-50", "mxnet", configuration("1M4G")
        )
        profile = trainer.run_iteration(32)
        assert profile.scaling_efficiency > 0.85

    def test_ethernet_dominated_by_communication(self):
        trainer = DataParallelTrainer(
            "resnet-50", "mxnet", configuration("2M1G (ethernet)")
        )
        profile = trainer.run_iteration(32)
        assert profile.communication_fraction > 0.5

    def test_samples_counted_across_workers(self):
        trainer = DataParallelTrainer("resnet-50", "mxnet", configuration("1M4G"))
        profile = trainer.run_iteration(16)
        assert profile.samples_per_iteration == 64

    def test_sweep(self):
        trainer = DataParallelTrainer("resnet-50", "mxnet", configuration("1M2G"))
        profiles = trainer.sweep((8, 16))
        assert [p.per_gpu_batch for p in profiles] == [8, 16]
        assert profiles[1].throughput > profiles[0].throughput

    def test_allreduce_exchange_pluggable(self):
        trainer = DataParallelTrainer(
            "resnet-50",
            "mxnet",
            configuration("1M4G"),
            exchange=RingAllReduceExchange(),
        )
        assert trainer.run_iteration(16).throughput > 0

    def test_configuration_labels(self):
        configs = standard_configurations()
        assert set(configs) == {
            "1M1G",
            "2M1G (ethernet)",
            "2M1G (infiniband)",
            "1M2G",
            "1M4G",
        }
        assert configs["2M1G (ethernet)"].inter_link is ETHERNET_1G

    def test_unknown_configuration(self):
        with pytest.raises(KeyError):
            configuration("3M9G")

    def test_larger_model_suffers_more_from_slow_network(self):
        """Gradient volume drives the cliff: Inception (24M params) hurts
        less than a hypothetical doubled-gradient exchange."""
        cluster = parse_configuration("2M1G", fabric="1gbe")
        trainer = DataParallelTrainer("resnet-50", "mxnet", cluster)
        profile = trainer.run_iteration(32)
        assert profile.exchange_time_s > profile.compute_time_s
