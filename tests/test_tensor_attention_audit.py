"""Tests for real attention, TinyTransformer, and the real-allocation
memory audit."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.attention import (
    MultiHeadAttention,
    TransformerBlock,
    scaled_dot_product_attention,
)
from repro.tensor.memory_audit import audit_training_step
from repro.tensor.minimodels import TinyResNet, TinySeq2Seq, TinyTransformer
from repro.tensor.optim import Adam, SGD
from repro.tensor.tensor import Tensor


def _rand(shape, seed=0):
    return Tensor(
        np.random.default_rng(seed).normal(0, 1, size=shape).astype(np.float32)
    )


class TestAttentionPrimitives:
    def test_attention_output_shape(self):
        q, k, v = _rand((2, 5, 8)), _rand((2, 7, 8), 1), _rand((2, 7, 8), 2)
        out = scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 5, 8)

    def test_attention_is_convex_combination(self):
        """Each output row lies inside the convex hull of V's rows."""
        q, k = _rand((1, 3, 4)), _rand((1, 6, 4), 1)
        v = _rand((1, 6, 4), 2)
        out = scaled_dot_product_attention(q, k, v).data
        assert out.max() <= v.data.max() + 1e-5
        assert out.min() >= v.data.min() - 1e-5

    def test_uniform_keys_give_mean_of_values(self):
        q = Tensor(np.zeros((1, 2, 4), dtype=np.float32))
        k = Tensor(np.zeros((1, 5, 4), dtype=np.float32))
        v = _rand((1, 5, 4), 3)
        out = scaled_dot_product_attention(q, k, v).data
        assert np.allclose(out[0, 0], v.data[0].mean(axis=0), atol=1e-5)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            scaled_dot_product_attention(_rand((2, 4)), _rand((2, 4)), _rand((2, 4)))

    def test_multihead_shapes_and_gradients(self):
        attention = MultiHeadAttention(16, 4)
        x = Tensor(
            np.random.default_rng(0).normal(0, 1, (2, 6, 16)).astype(np.float32),
            requires_grad=True,
        )
        out = attention(x)
        assert out.shape == (2, 6, 16)
        (out * out).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in attention.parameters())

    def test_cross_attention_accepts_different_lengths(self):
        attention = MultiHeadAttention(16, 4)
        out = attention(_rand((2, 3, 16)), _rand((2, 9, 16), 1))
        assert out.shape == (2, 3, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 4)

    def test_transformer_block_residual(self):
        block = TransformerBlock(16, 4, 32)
        x = _rand((2, 4, 16))
        assert block(x).shape == x.shape


class TestTinyTransformerTraining:
    def test_learns_token_shift_cipher(self):
        rng = np.random.default_rng(0)
        model = TinyTransformer(vocab=12, model_dim=16, heads=4, ffn_dim=32, blocks=2)
        optimizer = Adam(model.parameters(), learning_rate=0.01)
        first = None
        for _ in range(50):
            tokens = rng.integers(1, 12, size=(8, 5))
            targets = (tokens + 1) % 12
            loss = model.loss(tokens, targets)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.2 * first

    def test_attention_family_trains_faster_than_lstm_family(self):
        """The real-engine counterpart of Obs. 5's layer-type contrast:
        on the same copy task with comparable parameter budgets, attention
        reaches low loss in fewer steps than the step-by-step LSTM."""
        rng = np.random.default_rng(1)

        def run(model, steps=40):
            optimizer = Adam(model.parameters(), learning_rate=0.01)
            for _ in range(steps):
                tokens = rng.integers(1, 10, size=(8, 4))
                if isinstance(model, TinyTransformer):
                    loss = model.loss(tokens, (tokens + 1) % 10)
                else:
                    targets = (tokens + 1) % 10
                    target_in = np.concatenate(
                        [np.zeros((8, 1), dtype=np.int64), targets[:, :-1]], axis=1
                    )
                    loss = model.loss(tokens, target_in, targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            return loss.item()

        transformer_loss = run(TinyTransformer(vocab=10, model_dim=16, heads=4))
        lstm_loss = run(TinySeq2Seq(vocab=10, embed=16, hidden=16))
        assert transformer_loss < lstm_loss


class TestRealMemoryAudit:
    @pytest.fixture(scope="class")
    def cnn_audit(self):
        model = TinyResNet(channels=16, classes=4)
        optimizer = SGD(model.parameters(), learning_rate=0.01, momentum=0.9)
        rng = np.random.default_rng(0)
        images = rng.normal(0, 1, size=(32, 3, 16, 16)).astype(np.float32)
        labels = rng.integers(0, 4, size=32)
        return audit_training_step(
            model,
            optimizer,
            lambda m, b: F.cross_entropy(m(Tensor(b[0])), b[1]),
            (images, labels),
        )

    def test_all_five_classes_present(self, cnn_audit):
        breakdown = cnn_audit.breakdown()
        assert set(breakdown) == {
            "feature maps",
            "weights",
            "weight gradients",
            "dynamic",
            "workspace",
        }
        assert all(value >= 0 for value in breakdown.values())

    def test_observation_11_holds_on_real_training(self, cnn_audit):
        """Feature maps dwarf weights on a real deep-CNN step — measured
        from genuine allocations, not the simulator's model."""
        assert cnn_audit.feature_map_bytes > 50 * cnn_audit.weights_bytes
        without_workspace = cnn_audit.total_bytes - cnn_audit.workspace_bytes
        assert cnn_audit.feature_map_bytes > 0.8 * without_workspace

    def test_dynamic_class_is_momentum(self, cnn_audit):
        # Momentum buffers mirror the weights exactly.
        assert cnn_audit.dynamic_bytes == cnn_audit.weights_bytes

    def test_gradients_mirror_weights(self, cnn_audit):
        assert cnn_audit.weight_gradient_bytes == cnn_audit.weights_bytes

    def test_feature_maps_scale_with_batch(self):
        def run(batch):
            model = TinyResNet(channels=8, classes=4, seed=1)
            optimizer = SGD(model.parameters(), learning_rate=0.01, momentum=0.9)
            rng = np.random.default_rng(0)
            images = rng.normal(0, 1, size=(batch, 3, 12, 12)).astype(np.float32)
            labels = rng.integers(0, 4, size=batch)
            return audit_training_step(
                model,
                optimizer,
                lambda m, b: F.cross_entropy(m(Tensor(b[0])), b[1]),
                (images, labels),
            )

        small = run(8)
        large = run(32)
        ratio = large.feature_map_bytes / small.feature_map_bytes
        assert 3.3 < ratio < 4.5  # Obs. 12, from real allocations
        assert large.weights_bytes == small.weights_bytes

    def test_audit_restores_hooks(self, cnn_audit):
        """After an audit, tensor creation is untracked again."""
        from repro.tensor import memory_audit

        assert memory_audit._ACTIVE_AUDIT is None
        x = Tensor(np.ones(4), requires_grad=True)
        (x * 2.0).sum().backward()  # must not raise or record
