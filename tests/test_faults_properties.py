"""Seeded property-based tests for the allreduce cost model and the
fault layer's strict-additivity anchor.

Two families of properties:

- the ring allreduce matches its closed form — ``2(n-1)`` rounds moving
  ``2 g (n-1)/n`` bytes on the wire, ``t = steps * latency + volume /
  effective bandwidth`` — across a seeded sweep of worker counts, sizes
  and link parameters;
- a *zero-magnitude* fault plan (straggle factor 1.0, bandwidth factor
  1.0, zero loss, zero latency) is byte- and time-identical to no plan
  at all, which is the invariant that lets the faults dimension ride the
  sweep engine without perturbing the paper grid.
"""

import random

import pytest

from repro.distributed.allreduce import (
    AllReduceCost,
    RingAllReduceExchange,
    ring_allreduce_time,
)
from repro.distributed.data_parallel import DataParallelTrainer
from repro.faults.plan import FaultPlan, LinkFault, StragglerFault
from repro.faults.trainer import FaultTolerantTrainer
from repro.hardware.cluster import ClusterSpec, MachineSpec, parse_configuration
from repro.hardware.interconnect import Interconnect
from repro.observability.metrics import MetricsRegistry, set_metrics

SEED = 20260806
CASES = 25


def _random_link(rng: random.Random) -> Interconnect:
    return Interconnect(
        name=f"link-{rng.randrange(1 << 16)}",
        bandwidth_gbs=rng.uniform(0.5, 200.0),
        latency_s=rng.uniform(1e-7, 1e-3),
        efficiency=rng.uniform(0.3, 1.0),
    )


class TestRingClosedForm:
    """ring_allreduce_time against the paper's 2(n-1)/n closed form."""

    def test_matches_closed_form_over_seeded_sweep(self):
        rng = random.Random(SEED)
        for _ in range(CASES):
            workers = rng.randrange(2, 65)
            gradient_bytes = rng.uniform(1e3, 1e9)
            link = _random_link(rng)
            steps = 2 * (workers - 1)
            volume = 2.0 * gradient_bytes * (workers - 1) / workers
            expected = steps * link.latency_s + volume / link.effective_bandwidth_bytes
            assert ring_allreduce_time(gradient_bytes, workers, link) == expected

    def test_single_worker_is_free(self):
        rng = random.Random(SEED + 1)
        for _ in range(CASES):
            assert ring_allreduce_time(rng.uniform(0, 1e9), 1, _random_link(rng)) == 0.0

    def test_monotone_in_workers_for_latency_dominated_links(self):
        # More workers -> more rounds; with non-zero latency the time
        # strictly grows once the bandwidth term has converged.
        rng = random.Random(SEED + 2)
        for _ in range(CASES):
            link = _random_link(rng)
            gradient_bytes = rng.uniform(1e3, 1e6)
            times = [
                ring_allreduce_time(gradient_bytes, workers, link)
                for workers in range(2, 20)
            ]
            assert all(later > earlier for earlier, later in zip(times, times[1:]))

    def test_exchange_cost_uses_the_inter_machine_link(self):
        rng = random.Random(SEED + 3)
        exchange = RingAllReduceExchange()
        for _ in range(CASES):
            machines = rng.randrange(2, 9)
            gpus = rng.randrange(1, 5)
            link = _random_link(rng)
            cluster = ClusterSpec(
                machine=MachineSpec(gpu_count=gpus),
                machine_count=machines,
                inter_link=link,
            )
            gradient_bytes = rng.uniform(1e4, 1e8)
            cost = exchange.cost(gradient_bytes, cluster)
            workers = machines * gpus
            assert cost.steps == 2 * (workers - 1)
            assert cost.total_s == ring_allreduce_time(gradient_bytes, workers, link)

    def test_wire_bytes_counter_matches_closed_form(self):
        rng = random.Random(SEED + 4)
        exchange = RingAllReduceExchange()
        for _ in range(10):
            workers = rng.randrange(2, 17)
            gradient_bytes = rng.uniform(1e4, 1e8)
            cluster = ClusterSpec(
                machine=MachineSpec(gpu_count=workers), machine_count=1
            )
            registry = MetricsRegistry(enabled=True)
            previous = set_metrics(registry)
            try:
                exchange.cost(gradient_bytes, cluster)
            finally:
                set_metrics(previous)
            snapshot = registry.snapshot()
            expected = 2.0 * gradient_bytes * (workers - 1) / workers
            assert snapshot["allreduce_wire_bytes_total"] == expected

    def test_cost_interface_parity_with_parameter_server(self):
        cost = AllReduceCost(total_s=1.5, steps=6)
        assert cost.intra_machine_s == 0.0
        assert cost.inter_machine_s == 1.5
        assert cost.aggregation_s == 0.0


class TestZeroMagnitudeIdentity:
    """A zero-magnitude fault plan must be bitwise invisible."""

    def test_identity_degradation_returns_the_same_object(self):
        rng = random.Random(SEED + 5)
        for _ in range(CASES):
            link = _random_link(rng)
            assert link.degraded() is link
            assert (
                link.degraded(bandwidth_factor=1.0, packet_loss=0.0, extra_latency_s=0.0)
                is link
            )

    def test_identity_cluster_transforms_return_self(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        assert cluster.with_degraded_link() is cluster
        assert cluster.shrink(0) is cluster

    def test_zero_slowdown_plan_is_time_identical_to_no_plan(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        zero = FaultPlan(
            events=(
                StragglerFault(worker=0, factor=1.0, start_step=0),
                LinkFault(
                    bandwidth_factor=1.0,
                    packet_loss=0.0,
                    extra_latency_s=0.0,
                    start_step=0,
                ),
            ),
            seed=3,
        )
        plain = FaultTolerantTrainer("resnet-50", "mxnet", cluster, 16)
        faulted = FaultTolerantTrainer("resnet-50", "mxnet", cluster, 16, plan=zero)
        reference = plain.run(steps=12)
        observed = faulted.run(steps=12)
        assert observed.wall_clock_s == reference.wall_clock_s
        assert observed.samples == reference.samples
        assert observed.mean_step_s == reference.mean_step_s
        assert observed.lost_s == 0.0
        assert observed.final_machines == reference.final_machines

    def test_empty_plan_matches_plain_trainer_bitwise(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        baseline = DataParallelTrainer("resnet-50", "mxnet", cluster).run_iteration(16)
        result = FaultTolerantTrainer("resnet-50", "mxnet", cluster, 16).run(steps=7)
        assert result.wall_clock_s == 7 * baseline.iteration_time_s
        assert result.samples == 7 * baseline.samples_per_iteration
        # wall is exact; mean/throughput re-divide and may differ by 1 ulp.
        assert result.mean_step_s == pytest.approx(baseline.iteration_time_s, rel=1e-15)
        assert result.throughput == pytest.approx(baseline.throughput, rel=1e-15)

    def test_run_step_with_clean_plan_equals_run_iteration(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        zero = FaultPlan(
            events=(StragglerFault(worker=0, factor=1.0, start_step=0),)
        )
        trainer = DataParallelTrainer("resnet-50", "mxnet", cluster, fault_plan=zero)
        assert trainer.run_step(16, step=5) == trainer.run_iteration(16)
        bare = DataParallelTrainer("resnet-50", "mxnet", cluster)
        assert bare.run_step(16, step=0) == bare.run_iteration(16)


class TestSeededDeterminism:
    """The plan's only randomness is a pure function of (seed, step)."""

    def test_crash_fraction_is_deterministic_and_bounded(self):
        from repro.faults.plan import WorkerCrash

        rng = random.Random(SEED + 6)
        for _ in range(CASES):
            seed = rng.randrange(1 << 30)
            step = rng.randrange(1000)
            crash = WorkerCrash(step=step)
            first = FaultPlan(events=(crash,), seed=seed).crash_fraction(crash)
            second = FaultPlan(events=(crash,), seed=seed).crash_fraction(crash)
            assert first == second
            assert 0.25 <= first < 0.75

    def test_straggler_scales_compute_exactly(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        rng = random.Random(SEED + 7)
        plain = FaultTolerantTrainer("resnet-50", "mxnet", cluster, 16)
        for _ in range(5):
            factor = 1.0 + rng.uniform(0.1, 3.0)
            plan = FaultPlan(
                events=(StragglerFault(worker=0, factor=factor, start_step=0),)
            )
            conds = plan.conditions_at(0)
            cost = FaultTolerantTrainer(
                "resnet-50", "mxnet", cluster, 16, plan=plan
            )._step_cost(cluster.machine_count, conds)
            assert cost.compute_s == plain.baseline.compute_time_s * factor

    def test_link_loss_composes_multiplicatively(self):
        rng = random.Random(SEED + 8)
        for _ in range(CASES):
            first = rng.uniform(0.0, 0.9)
            second = rng.uniform(0.0, 0.9)
            plan = FaultPlan(
                events=(
                    LinkFault(packet_loss=first, start_step=0),
                    LinkFault(packet_loss=second, start_step=0),
                )
            )
            observed = plan.conditions_at(0).packet_loss
            assert observed == pytest.approx(1.0 - (1.0 - first) * (1.0 - second))

    def test_same_plan_same_seed_same_run(self):
        from repro.faults.plan import WorkerCrash

        cluster = parse_configuration("4M1G", fabric="infiniband")
        events = (
            StragglerFault(worker=0, factor=1.5, start_step=2, end_step=9),
            WorkerCrash(step=5),
        )
        first = FaultTolerantTrainer(
            "resnet-50", "mxnet", cluster, 16, plan=FaultPlan(events=events, seed=11)
        ).run(steps=15)
        second = FaultTolerantTrainer(
            "resnet-50", "mxnet", cluster, 16, plan=FaultPlan(events=events, seed=11)
        ).run(steps=15)
        assert first.wall_clock_s == second.wall_clock_s
        assert first.samples == second.samples
        assert [event.cost_s for event in first.events] == [
            event.cost_s for event in second.events
        ]

    def test_different_seed_moves_the_crash_fraction(self):
        from repro.faults.plan import WorkerCrash

        crash = WorkerCrash(step=9)
        fractions = {
            FaultPlan(events=(crash,), seed=seed).crash_fraction(crash)
            for seed in range(8)
        }
        assert len(fractions) > 1
