"""Plan transforms: every optimization rewrite declares conservation
contracts (total FLOPs, total weight bytes) and ``apply`` enforces them."""

import copy

import pytest

from repro.hardware.memory import AllocationTag
from repro.observability.runner import telemetry
from repro.plan import compiler
from repro.plan.transform import (
    FeatureMapOffloadTransform,
    FusedRNNTransform,
    HalfPrecisionStorageTransform,
    PlanTransform,
    ResNetDepthTransform,
    TransformContractError,
)
from repro.training.session import TrainingSession


@pytest.fixture(scope="module")
def rnn_plan():
    return TrainingSession("seq2seq", "tensorflow").compile(64)


@pytest.fixture(scope="module")
def resnet_plan():
    return TrainingSession("resnet-50", "mxnet").compile(16)


def _bytes_by_tag(plan):
    totals = {}
    for record in plan.allocations:
        totals[record.tag] = totals.get(record.tag, 0.0) + record.num_bytes
    return totals


class TestFusedRNN:
    def test_preserves_flops_and_weights_while_shrinking_the_stream(self, rnn_plan):
        fused = FusedRNNTransform().apply(rnn_plan)
        assert fused.total_flops == pytest.approx(rnn_plan.total_flops, rel=1e-9)
        assert fused.graph.total_weight_bytes == rnn_plan.graph.total_weight_bytes
        assert len(fused.kernels) < len(rnn_plan.kernels)
        assert not any(k.host_sync for k in fused.kernels)
        assert fused.makespan_s < rnn_plan.makespan_s

    def test_composes_with_fp16_storage(self, rnn_plan):
        stacked = HalfPrecisionStorageTransform().apply(
            FusedRNNTransform().apply(rnn_plan)
        )
        assert stacked.total_flops == pytest.approx(rnn_plan.total_flops, rel=1e-9)
        assert stacked.memory.peak_total < rnn_plan.memory.peak_total


class TestHalfPrecisionStorage:
    def test_rescales_the_trace_without_touching_execution(self, resnet_plan):
        halved = HalfPrecisionStorageTransform().apply(resnet_plan)
        assert halved.execution is resnet_plan.execution
        assert halved.timings is resnet_plan.timings
        before, after = _bytes_by_tag(resnet_plan), _bytes_by_tag(halved)
        assert after[AllocationTag.FEATURE_MAPS] == pytest.approx(
            before[AllocationTag.FEATURE_MAPS] * 0.5
        )
        assert after[AllocationTag.WEIGHT_GRADIENTS] == pytest.approx(
            before[AllocationTag.WEIGHT_GRADIENTS] * 0.5
        )
        assert after[AllocationTag.WEIGHTS] == pytest.approx(
            before[AllocationTag.WEIGHTS] * 1.5
        )
        assert after.get(AllocationTag.WORKSPACE, 0.0) == before.get(
            AllocationTag.WORKSPACE, 0.0
        )


class TestFeatureMapOffload:
    @pytest.mark.parametrize("fraction", (-0.1, 1.5))
    def test_rejects_out_of_range_fractions(self, fraction):
        with pytest.raises(ValueError, match=r"offload fraction"):
            FeatureMapOffloadTransform(fraction)

    def test_offloading_monotonically_frees_memory(self, resnet_plan):
        peaks = [
            FeatureMapOffloadTransform(f).apply(resnet_plan).memory.peak_total
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(b < a for a, b in zip(peaks, peaks[1:]))
        assert peaks[0] <= resnet_plan.memory.peak_total

    def test_keeps_kernels_and_timings(self, resnet_plan):
        offloaded = FeatureMapOffloadTransform(0.5).apply(resnet_plan)
        assert offloaded.kernels is resnet_plan.kernels
        assert offloaded.makespan_s == resnet_plan.makespan_s


class TestResNetDepth:
    def test_declares_nonconservation_and_grows_the_network(self, resnet_plan):
        deeper = ResNetDepthTransform(23).apply(resnet_plan)
        assert not ResNetDepthTransform.preserves_flops
        assert not ResNetDepthTransform.preserves_weight_bytes
        assert deeper.graph.model_name == "ResNet-101"
        assert deeper.total_flops > resnet_plan.total_flops
        assert deeper.graph.total_weight_bytes > resnet_plan.graph.total_weight_bytes


class TestContractEnforcement:
    def test_lying_flop_contract_is_caught(self, resnet_plan):
        class LyingDepth(ResNetDepthTransform):
            name = "lying-depth"
            preserves_flops = True
            preserves_weight_bytes = False

        with pytest.raises(TransformContractError, match=r"FLOP preservation"):
            LyingDepth(23).apply(resnet_plan)

    def test_lying_weight_byte_contract_is_caught(self, resnet_plan):
        class GrowsWeights(PlanTransform):
            name = "grows-weights"
            preserves_flops = False  # the extra sgd_update kernels add FLOPs
            preserves_weight_bytes = True

            def rewrite(self, plan):
                grown = copy.deepcopy(plan.graph)
                grown.layers[0].weight_elements += 1024
                return compiler.compile_graph(grown, plan.framework, plan.gpu)

        with pytest.raises(TransformContractError, match=r"weight-byte"):
            GrowsWeights().apply(resnet_plan)

    def test_honest_transforms_pass_every_contract(self, rnn_plan, resnet_plan):
        for transform, plan in (
            (FusedRNNTransform(), rnn_plan),
            (HalfPrecisionStorageTransform(), resnet_plan),
            (FeatureMapOffloadTransform(0.5), resnet_plan),
            (ResNetDepthTransform(10), resnet_plan),
        ):
            transform.apply(plan)  # must not raise

    def test_apply_emits_a_transform_span(self, resnet_plan):
        with telemetry() as run:
            HalfPrecisionStorageTransform().apply(resnet_plan)
        span = run.tracer.roots[0]
        assert span.name == "plan.transform"
        assert span.attributes["transform"] == "fp16-storage"
        assert span.attributes["kernels_before"] == len(resnet_plan.kernels)
        assert span.attributes["kernels_after"] == len(resnet_plan.kernels)
