"""Unit tests for the core suite, metrics, analysis pipeline, and report
renderers."""

import pytest

from repro.core import metrics as M
from repro.core.analysis import AnalysisPipeline
from repro.core.report import (
    format_percent,
    render_bar_chart,
    render_series,
    render_table,
)
from repro.core.suite import TBDSuite, standard_suite
from repro.hardware.devices import TITAN_XP


class TestMetricFormulas:
    def test_throughput(self):
        assert M.throughput(64, 0.5) == 128.0
        with pytest.raises(ValueError):
            M.throughput(64, 0.0)
        with pytest.raises(ValueError):
            M.throughput(-1, 1.0)

    def test_gpu_utilization_eq1(self):
        assert M.gpu_utilization(0.5, 1.0) == 0.5
        assert M.gpu_utilization(2.0, 1.0) == 1.0  # clamped
        with pytest.raises(ValueError):
            M.gpu_utilization(-0.1, 1.0)

    def test_fp32_utilization_eq2(self):
        assert M.fp32_utilization(5e12, 1e13, 1.0) == 0.5
        assert M.fp32_utilization(1.0, 1e13, 0.0) == 0.0
        with pytest.raises(ValueError):
            M.fp32_utilization(1.0, 0.0, 1.0)

    def test_cpu_utilization_eq3(self):
        assert M.cpu_utilization(14.0, 28, 1.0) == 0.5
        with pytest.raises(ValueError):
            M.cpu_utilization(1.0, 0, 1.0)

    def test_from_profile(self, resnet_mxnet_32):
        record = M.IterationMetrics.from_profile(resnet_mxnet_32)
        assert record.model == "ResNet-50"
        assert record.throughput == pytest.approx(resnet_mxnet_32.throughput)
        assert "ResNet-50" in record.format_row()


class TestSuite:
    def test_run_returns_metrics(self, suite):
        result = suite.run("resnet-50", "mxnet", 16)
        assert result.batch_size == 16
        assert result.throughput > 0

    def test_sweep_marks_oom(self, suite):
        points = suite.sweep("sockeye", "mxnet", (64, 128))
        assert not points[0].oom
        assert points[1].oom
        assert points[1].metrics is None

    def test_compare_frameworks(self, suite):
        results = suite.compare_frameworks("resnet-50", 16)
        assert set(results) == {"tensorflow", "mxnet", "cntk"}

    def test_configurations_count_matches_fig7(self, suite):
        assert sum(1 for _ in suite.configurations()) == 14

    def test_throughput_units(self, suite):
        assert suite.run("transformer", "tensorflow", 256).throughput_unit == "tokens/s"
        assert (
            suite.run("deep-speech-2", "mxnet", 1).throughput_unit
            == "audio seconds/s"
        )

    def test_suite_on_other_gpu(self):
        xp = TBDSuite(gpu=TITAN_XP)
        assert xp.run("resnet-50", "mxnet", 16).device == "TITAN Xp"

    def test_dataset_bindings(self, suite):
        suite.validate_dataset_bindings()

    def test_run_all_covers_every_configuration(self):
        results = standard_suite().run_all()
        assert len(results) == 14


class TestAnalysisPipeline:
    def test_full_report(self):
        pipeline = AnalysisPipeline("resnet-50", "mxnet", sample_iterations=100)
        report = pipeline.run(16)
        assert report.metrics.model == "ResNet-50"
        assert report.sampled_iterations >= 50
        assert report.stable_start_iteration > 0
        assert report.stable_throughput == pytest.approx(
            report.metrics.throughput, rel=0.1
        )
        assert report.memory.total_gib > 0
        assert len(report.kernel_trace.longest_low_utilization_kernels(5)) == 5

    def test_summary_text(self):
        report = AnalysisPipeline("wgan", "tensorflow").run(16)
        text = report.summary()
        assert "WGAN" in text
        assert "throughput" in text
        assert "feature maps" in text


class TestReportRenderers:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_render_table_validation(self):
        with pytest.raises(ValueError):
            render_table((), [])
        with pytest.raises(ValueError):
            render_table(("a",), [(1, 2)])

    def test_render_series_marks_oom(self):
        text = render_series("s", (1, 2), (1.0, None))
        assert "OOM" in text

    def test_render_series_validation(self):
        with pytest.raises(ValueError):
            render_series("s", (1,), (1.0, 2.0))

    def test_render_bar_chart(self):
        text = render_bar_chart("T", ["a", "b"], [1.0, 2.0])
        assert "##" in text

    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"
