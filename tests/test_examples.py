"""Freshness tests: every example script runs to completion in-process.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's module is executed with ``runpy`` (so its
``__main__`` guard fires) with stdout captured, and key output markers are
asserted.
"""

import os
import runpy
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


@pytest.fixture(autouse=True)
def _run_in_tmpdir(tmp_path, monkeypatch):
    """Every example executes from a throwaway cwd, so artifact-writing
    scripts can never dirty the repo and tests stay order-independent."""
    monkeypatch.chdir(tmp_path)

#: (script, substring that must appear in its stdout)
_EXAMPLES = (
    ("quickstart.py", "headline metrics"),
    ("memory_planning.py", "memory-vs-throughput planning"),
    ("train_minimodels.py", "image classification"),
    ("distributed_whatif.py", "fabric sweep"),
    ("observations_report.py", "13/13 reproduce"),
    ("optimization_advisor.py", "fused-RNN rewrite"),
    ("hardware_history.py", "memory wall"),
    ("scaling_study.py", "time-to-accuracy"),
    ("plan_inspect.py", "compiled plan"),
    ("fault_sweep.py", "fault injection on the simulated cluster"),
    ("conformance_check.py", "byte-identical report"),
    ("bench_compare.py", "identical across same-seed runs"),
    ("serve_clients.py", "sweep-as-a-service demo"),
    ("schedule_sweep.py", "adaptive batch schedules as a sweep dimension"),
)


def _run_example(name: str, capsys, argv=None) -> str:
    path = os.path.join(_EXAMPLES_DIR, name)
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize("script,marker", _EXAMPLES)
def test_example_runs_and_produces_output(script, marker, capsys):
    output = _run_example(script, capsys)
    assert marker in output, f"{script} output missing {marker!r}"
    assert len(output) > 200


def test_full_evaluation_selected_exhibits(capsys):
    output = _run_example("full_evaluation.py", capsys, argv=["table4", "fig10"])
    assert "Quadro P4000" in output
    assert "Fig. 10" in output


def test_full_evaluation_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        _run_example("full_evaluation.py", capsys, argv=["fig99"])


def test_trace_run_archives_and_diffs(tmp_path, capsys):
    output = _run_example("trace_run.py", capsys)
    assert "spans.jsonl byte-identical across runs: True" in output
    assert "all headline metrics within tolerance" in output
    runs_dir = tmp_path / "artifacts" / "runs"
    assert (runs_dir / "resnet-50-mxnet-b16-002" / "trace.json").exists()


def test_parallel_sweep_proves_engine_equality(tmp_path, capsys):
    output = _run_example("parallel_sweep.py", capsys)
    assert "parallel sweep engine" in output
    assert "parallel == serial: True" in output
    assert "cached   == cold:   True" in output
    assert "exported JSONL byte-identical: True" in output
    assert "computed 0, hits 9" in output
    assert (tmp_path / "artifacts" / "sweep_cold.jsonl").exists()
    assert (tmp_path / "artifacts" / "sweep-cache").is_dir()


def test_export_traces_writes_artifacts(tmp_path, capsys):
    output = _run_example("export_traces.py", capsys)
    assert "suite metrics" in output
    assert (tmp_path / "artifacts" / "resnet50_trace.json").exists()
    assert (tmp_path / "artifacts" / "suite_metrics.csv").exists()


def test_quickstart_accepts_arguments(capsys):
    output = _run_example("quickstart.py", capsys, argv=["wgan", "tensorflow", "16"])
    assert "WGAN" in output
