"""Tests for the model inspector."""

import pytest

from repro.models.inspect import (
    render_summary,
    summarize_by_kind,
    summarize_graph,
)
from repro.models.registry import get_model


class TestSummaries:
    @pytest.fixture(scope="class")
    def resnet_graph(self):
        return get_model("resnet-50").build(8)

    def test_per_layer_count_matches_graph(self, resnet_graph):
        layers = summarize_graph(resnet_graph)
        assert len(layers) == resnet_graph.layer_count

    def test_totals_consistent_with_graph(self, resnet_graph):
        layers = summarize_graph(resnet_graph)
        assert sum(l.parameters for l in layers) == resnet_graph.total_weight_elements
        assert sum(l.kernels for l in layers) == sum(
            layer.kernel_count for layer in resnet_graph.layers
        )

    def test_inplace_marked(self, resnet_graph):
        layers = summarize_graph(resnet_graph)
        assert any(l.inplace for l in layers if l.kind == "activation")

    def test_by_kind_sorted_by_flops(self, resnet_graph):
        kinds = summarize_by_kind(resnet_graph)
        flops = [k.gflops for k in kinds]
        assert flops == sorted(flops, reverse=True)
        assert kinds[0].kind == "conv"  # ResNet is conv-dominated

    def test_ds2_kernel_explosion_visible(self):
        graph = get_model("deep-speech-2").build(4)
        kinds = {k.kind: k for k in summarize_by_kind(graph)}
        assert kinds["rnn"].kernels > 10_000  # Obs. 5/7's mechanism, visible

    def test_render_for_key_and_for_graph(self, resnet_graph):
        by_key = render_summary("resnet-50", 8)
        by_graph = render_summary(resnet_graph)
        assert by_key == by_graph
        assert "totals:" in by_key
        assert "by layer kind" in by_key

    def test_render_truncates_long_graphs(self):
        text = render_summary("faster-rcnn", 1, max_layers=10)
        assert "heaviest 10 shown" in text
