"""Unit tests for the model zoo (Table 2 fidelity and graph invariants)."""

import pytest

from repro.models.a3c import build_a3c
from repro.models.deepspeech import build_deep_speech2
from repro.models.faster_rcnn import build_faster_rcnn
from repro.models.inception import build_inception_v3
from repro.models.resnet import build_resnet50, build_resnet101
from repro.models.seq2seq import build_nmt, build_seq2seq, build_sockeye
from repro.models.transformer import build_transformer
from repro.models.wgan import build_wgan
from repro.models.registry import get_model, model_catalog, model_keys

_GFLOP = 1e9


class TestResNet50:
    def test_parameter_count_close_to_published(self):
        graph = build_resnet50(1)
        # Published ResNet-50: 25.6M parameters.
        assert graph.total_weight_elements == pytest.approx(25.6e6, rel=0.02)

    def test_forward_flops_close_to_published(self):
        graph = build_resnet50(1)
        forward = sum(
            k.flops for layer in graph.layers for k in layer.forward_kernels
        )
        # Published: ~3.8-4.1 GMACs => 7.6-8.2 GFLOPs forward.
        assert 6.5 * _GFLOP < forward < 9.5 * _GFLOP

    def test_feature_maps_scale_with_batch(self):
        small = build_resnet50(8)
        large = build_resnet50(32)
        assert large.total_feature_map_bytes == pytest.approx(
            4 * small.total_feature_map_bytes, rel=0.01
        )

    def test_weights_do_not_scale_with_batch(self):
        assert build_resnet50(8).total_weight_elements == build_resnet50(
            32
        ).total_weight_elements

    def test_resnet101_roughly_twice_the_params(self):
        r50 = build_resnet50(1).total_weight_elements
        r101 = build_resnet101(1).total_weight_elements
        assert 1.5 * r50 < r101 < 2.0 * r50

    def test_dominant_layer_is_conv(self):
        assert build_resnet50(4).dominant_layer_kind() == "conv"


class TestInceptionV3:
    def test_parameter_count_close_to_published(self):
        graph = build_inception_v3(1)
        # Published Inception-v3: ~23.9M parameters (w/o aux head: ~22-24M).
        assert 19e6 < graph.total_weight_elements < 28e6

    def test_forward_flops_close_to_published(self):
        graph = build_inception_v3(1)
        forward = sum(
            k.flops for layer in graph.layers for k in layer.forward_kernels
        )
        # Published: ~5.7 GMACs => ~11.4 GFLOPs forward.
        assert 8 * _GFLOP < forward < 15 * _GFLOP

    def test_more_layers_than_resnet(self):
        assert build_inception_v3(1).layer_count > build_resnet50(1).layer_count


class TestSeq2Seq:
    def test_five_lstm_layers(self):
        graph = build_nmt(4)
        lstm_layers = [l for l in graph.layers if l.kind == "lstm"]
        assert len(lstm_layers) == 5  # Table 2

    def test_dominant_layer_is_lstm(self):
        assert build_nmt(16).dominant_layer_kind() == "lstm"

    def test_sockeye_overallocates_more_than_nmt(self):
        assert (
            build_sockeye(16).feature_map_overallocation
            > build_nmt(16).feature_map_overallocation
        )

    def test_custom_dimensions(self):
        graph = build_seq2seq(2, hidden=64, seq_len=5, encoder_layers=1, decoder_layers=1)
        assert any(l.kind == "lstm" for l in graph.layers)

    def test_kernel_count_scales_with_sequence(self):
        short = build_seq2seq(2, seq_len=10)
        long = build_seq2seq(2, seq_len=20)
        assert len(long.iteration_kernels()) > 1.5 * len(short.iteration_kernels())


class TestTransformer:
    def test_attention_dominates(self):
        graph = build_transformer(2048)
        assert graph.dominant_layer_kind() in ("attention", "feedforward")

    def test_no_recurrent_layers(self):
        graph = build_transformer(1024)
        assert not any(l.kind in ("lstm", "gru", "rnn") for l in graph.layers)

    def test_token_batch_accounting(self):
        graph = build_transformer(2048)
        assert graph.batch_size == 2048
        assert graph.samples_per_iteration is not None

    def test_tiny_token_budget_still_builds(self):
        graph = build_transformer(8)
        assert graph.layer_count > 10

    def test_layer_count_matches_table2(self):
        graph = build_transformer(1024)
        attention_blocks = [l for l in graph.layers if l.kind == "attention"]
        # 6 encoder self-attn + 6 decoder masked + 6 decoder cross = 18.
        assert len(attention_blocks) == 18


class TestFasterRCNN:
    def test_batch_fixed_at_one(self):
        with pytest.raises(ValueError, match="one image"):
            build_faster_rcnn(2)

    def test_uses_resnet101_scale_backbone(self):
        graph = build_faster_rcnn(1)
        conv_layers = [l for l in graph.layers if l.kind == "conv"]
        assert len(conv_layers) > 60  # ResNet-101 stages 1-4 + RPN + heads

    def test_heaviest_model_per_sample(self):
        frcnn_flops = build_faster_rcnn(1).iteration_flops()
        resnet_flops = build_resnet50(1).iteration_flops()
        assert frcnn_flops > 5 * resnet_flops


class TestDeepSpeech2:
    def test_five_bidirectional_rnn_layers(self):
        graph = build_deep_speech2(2)
        rnn_layers = [l for l in graph.layers if l.kind == "rnn"]
        assert len(rnn_layers) == 5  # MXNet default per Table 2 footnote

    def test_throughput_unit_is_audio_seconds(self):
        graph = build_deep_speech2(4)
        assert graph.samples_per_iteration == pytest.approx(4 * 12.8)

    def test_huge_kernel_count(self):
        graph = build_deep_speech2(1)
        assert len(graph.iteration_kernels()) > 10_000


class TestWGANAndA3C:
    def test_wgan_has_generator_and_critic(self):
        graph = build_wgan(16)
        names = [l.name for l in graph.layers]
        assert any(n.startswith("gen") for n in names)
        assert any(n.startswith("critic") for n in names)

    def test_wgan_critic_work_exceeds_generator(self):
        graph = build_wgan(16)
        critic = sum(l.flops for l in graph.layers if l.name.startswith("critic"))
        generator = sum(l.flops for l in graph.layers if l.name.startswith("gen"))
        assert critic > generator

    def test_a3c_is_tiny(self):
        graph = build_a3c(32)
        assert graph.total_weight_elements < 5e6
        assert graph.layer_count < 15


class TestRegistry:
    def test_eight_models_plus_seq2seq_split(self):
        # Table 2 lists 8 models; Seq2Seq appears as two implementations.
        assert len(model_keys()) == 9

    def test_aliases(self):
        assert get_model("ResNet").key == "resnet-50"
        assert get_model("ds2").key == "deep-speech-2"
        assert get_model("seq2seq").key == "nmt"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("vgg-16")

    def test_framework_bindings_match_table2(self):
        catalog = model_catalog()
        assert catalog["resnet-50"].frameworks == ("tensorflow", "mxnet", "cntk")
        assert catalog["transformer"].frameworks == ("tensorflow",)
        assert catalog["deep-speech-2"].frameworks == ("mxnet",)
        assert catalog["a3c"].frameworks == ("mxnet",)
        assert catalog["faster-rcnn"].frameworks == ("tensorflow", "mxnet")

    def test_paper_layer_counts(self):
        catalog = model_catalog()
        assert catalog["resnet-50"].paper_layer_count == 50
        assert catalog["inception-v3"].paper_layer_count == 42
        assert catalog["transformer"].paper_layer_count == 12
        assert catalog["faster-rcnn"].paper_layer_count == 101
        assert catalog["deep-speech-2"].paper_layer_count == 9
        assert catalog["a3c"].paper_layer_count == 4

    def test_every_model_builds_at_reference_batch(self):
        for spec in model_catalog().values():
            graph = spec.build(spec.reference_batch)
            assert graph.layer_count > 0
            assert graph.iteration_flops() > 0

    def test_supports(self):
        assert get_model("resnet-50").supports("TENSORFLOW")
        assert not get_model("wgan").supports("mxnet")
