"""The ``--transforms`` mini-language and the composed pipeline rewrite.

Covers the three layers the pipeline adds on top of the individual plan
transforms:

- the parser: aliases, per-transform argument typing and domains,
  loud :class:`TransformSpecError` messages for every malformed shape;
- normalization: token order never matters — every permutation of a spec
  shares one canonical spelling (the cache dimension) and one result;
- contracts: a transform that violates its declared FLOP conservation is
  caught per-stage, and a stage that *skips its own check* is still
  caught by the composition-wide check in ``TransformPipeline.apply``.
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.plan import (
    TransformArgumentError,
    TransformContractError,
    TransformPipeline,
    TransformSpecError,
    canonical_transform_spec,
    parse_transform_spec,
    transform_catalog,
)
from repro.plan.transform import (
    FeatureMapOffloadTransform,
    PlanTransform,
    ResNetDepthTransform,
)
from repro.training.session import TrainingSession

SEED = 20180923


class TestParser:
    def test_empty_and_whitespace_are_the_empty_pipeline(self):
        for text in ("", "   ", "\t"):
            pipeline = parse_transform_spec(text)
            assert not pipeline
            assert len(pipeline) == 0
            assert pipeline.canonical == ""

    def test_single_tokens_parse_to_their_transform(self):
        assert parse_transform_spec("fp16").canonical == "fp16"
        assert parse_transform_spec("fused_rnn").canonical == "fused_rnn"
        assert parse_transform_spec("depth:23").canonical == "depth:23"

    def test_offload_defaults_its_fraction(self):
        assert parse_transform_spec("offload").canonical == "offload:0.5"
        assert parse_transform_spec("offload:0.25").canonical == "offload:0.25"

    def test_aliases_and_case_normalize(self):
        assert canonical_transform_spec("FUSED-RNN") == "fused_rnn"
        assert canonical_transform_spec("fp16-storage") == "fp16"
        assert canonical_transform_spec("resnet-depth:23") == "depth:23"
        assert canonical_transform_spec("feature-map-offload:0.5") == "offload:0.5"

    def test_unknown_transform_names_the_known_set(self):
        with pytest.raises(TransformSpecError, match="unknown transform 'magic'"):
            parse_transform_spec("magic")
        with pytest.raises(TransformSpecError, match="depth, fp16, fused_rnn, offload"):
            parse_transform_spec("fp16+magic")

    def test_empty_token_is_rejected(self):
        with pytest.raises(TransformSpecError, match="empty transform token"):
            parse_transform_spec("fp16++offload")
        with pytest.raises(TransformSpecError, match="empty transform token"):
            parse_transform_spec("+fp16")

    def test_duplicate_transform_is_rejected_even_via_alias(self):
        with pytest.raises(TransformSpecError, match="more than once"):
            parse_transform_spec("fp16+fp16")
        with pytest.raises(TransformSpecError, match="more than once"):
            parse_transform_spec("offload:0.25+feature-map-offload:0.5")

    def test_depth_requires_its_argument(self):
        with pytest.raises(TransformSpecError, match="depth:<conv4_blocks>"):
            parse_transform_spec("depth")

    def test_bad_argument_types_are_named(self):
        with pytest.raises(TransformSpecError, match="expected int"):
            parse_transform_spec("depth:deep")
        with pytest.raises(TransformSpecError, match="expected float"):
            parse_transform_spec("offload:half")

    def test_argument_on_no_arg_transform_is_rejected(self):
        with pytest.raises(TransformSpecError, match="takes no argument"):
            parse_transform_spec("fp16:0.5")

    def test_out_of_domain_arguments_surface_as_spec_errors(self):
        with pytest.raises(TransformSpecError, match=r"offload fraction"):
            parse_transform_spec("offload:1.5")
        with pytest.raises(TransformSpecError, match="conv4 block count"):
            parse_transform_spec("depth:0")

    def test_spec_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            parse_transform_spec("magic")


class TestTypedTransformArguments:
    """The transforms themselves validate their domains (not just the
    parser), so programmatic construction fails as loudly as specs."""

    @pytest.mark.parametrize("fraction", [-0.1, 1.0001, 2.0])
    def test_offload_fraction_domain(self, fraction):
        with pytest.raises(TransformArgumentError, match=r"in \[0, 1\]"):
            FeatureMapOffloadTransform(fraction)

    def test_offload_fraction_must_be_numeric(self):
        with pytest.raises(TransformArgumentError, match="must be a number"):
            FeatureMapOffloadTransform("half")

    def test_offload_boundaries_are_legal(self):
        assert FeatureMapOffloadTransform(0.0).offload_fraction == 0.0
        assert FeatureMapOffloadTransform(1.0).offload_fraction == 1.0

    @pytest.mark.parametrize("blocks", ["deep", 2.5, True])
    def test_depth_blocks_must_be_an_integer(self, blocks):
        with pytest.raises(TransformArgumentError, match="must be an integer"):
            ResNetDepthTransform(blocks)

    def test_depth_blocks_must_be_positive(self):
        with pytest.raises(TransformArgumentError, match=">= 1"):
            ResNetDepthTransform(0)

    def test_argument_errors_are_value_errors(self):
        # test_plan_transforms relies on ValueError matching; keep it true.
        assert issubclass(TransformArgumentError, ValueError)


class TestNormalization:
    FULL = ["fused_rnn", "depth:23", "offload:0.25", "fp16"]

    def test_canonical_order_is_rank_order(self):
        spec = canonical_transform_spec("fp16+offload:0.25+depth:23+fused_rnn")
        assert spec == "fused_rnn+depth:23+offload:0.25+fp16"

    def test_every_permutation_shares_one_canonical_spelling(self):
        rng = random.Random(SEED)
        reference = canonical_transform_spec("+".join(self.FULL))
        for _ in range(25):
            shuffled = list(self.FULL)
            rng.shuffle(shuffled)
            assert canonical_transform_spec("+".join(shuffled)) == reference

    def test_catalog_is_sorted_by_rank(self):
        ranks = [entry.rank for entry in transform_catalog()]
        assert ranks == sorted(ranks)
        assert [entry.name for entry in transform_catalog()] == [
            "fused_rnn",
            "depth",
            "offload",
            "fp16",
        ]

    def test_permuted_specs_produce_bit_identical_plans(self):
        from repro.plan.symbolic import plan_difference

        session = TrainingSession("nmt", "tensorflow")
        base = session.compile(64)
        reference = parse_transform_spec("fused_rnn+offload:0.5+fp16").apply(base)
        permuted = parse_transform_spec("fp16+offload:0.5+fused_rnn").apply(base)
        assert plan_difference(reference, permuted) is None

    def test_describe_lists_stages_in_application_order(self):
        text = parse_transform_spec("fp16+fused_rnn").describe()
        lines = text.splitlines()
        assert lines[0] == "pipeline: fused_rnn+fp16"
        assert "1. fused_rnn" in lines[1]
        assert "2. fp16" in lines[2]
        assert parse_transform_spec("").describe() == "pipeline: (empty)"


class _LeakyTransform(PlanTransform):
    """Declares FLOP preservation but leaks work through ``rewrite`` —
    the base class's per-stage contract check must catch it."""

    name = "leaky"

    def rewrite(self, plan):
        clone = copy.copy(plan)
        clone.total_flops = plan.total_flops * 1.25
        return clone


class _CheatingTransform(_LeakyTransform):
    """Same leak, but overrides ``apply`` to skip the per-stage check —
    only the pipeline's composition-wide check can catch this one."""

    name = "cheating"

    def apply(self, plan):
        return self.rewrite(plan)


class TestContracts:
    @pytest.fixture(scope="class")
    def plan(self):
        return TrainingSession("resnet-50", "mxnet").compile(16)

    def test_flop_violation_is_caught_per_stage(self, plan):
        pipeline = TransformPipeline.from_transforms([_LeakyTransform()])
        with pytest.raises(TransformContractError, match="leaky"):
            pipeline.apply(plan)

    def test_flop_violation_is_caught_composition_wide(self, plan):
        # The stage's own check is bypassed; the pipeline still refuses.
        pipeline = TransformPipeline.from_transforms([_CheatingTransform()])
        with pytest.raises(TransformContractError, match="declares FLOP"):
            pipeline.apply(plan)

    def test_cheating_stage_cannot_hide_behind_honest_stages(self, plan):
        pipeline = TransformPipeline.from_transforms(
            [parse_transform_spec("fp16").transforms[0], _CheatingTransform()]
        )
        with pytest.raises(TransformContractError, match="declares FLOP"):
            pipeline.apply(plan)

    def test_unregistered_stages_sort_after_registered_ones(self):
        honest = parse_transform_spec("fp16").transforms[0]
        pipeline = TransformPipeline.from_transforms([_CheatingTransform(), honest])
        assert [stage.token for stage in pipeline] == ["fp16-storage", "cheating"]

    def test_empty_pipeline_apply_is_identity(self, plan):
        assert TransformPipeline().apply(plan) is plan

    def test_pipeline_apply_equals_sequential_stage_application(self):
        from repro.plan.symbolic import plan_difference

        session = TrainingSession("sockeye", "mxnet")
        base = session.compile(64)
        pipeline = parse_transform_spec("fused_rnn+offload:0.25+fp16")
        composed = pipeline.apply(base)
        sequential = base
        for stage in pipeline:
            sequential = stage.transform.apply(sequential)
        assert plan_difference(composed, sequential) is None
