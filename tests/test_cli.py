"""Tests for the ``tbd`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCommands:
    def test_run(self, capsys):
        code, out = run_cli(capsys, "run", "resnet-50", "-f", "mxnet", "-b", "16")
        assert code == 0
        assert "ResNet-50" in out and "samples/s" in out

    def test_run_on_other_gpu(self, capsys):
        code, out = run_cli(
            capsys, "run", "resnet-50", "-f", "mxnet", "-b", "16", "-g", "titan xp"
        )
        assert code == 0

    def test_sweep_marks_oom(self, capsys):
        code, out = run_cli(capsys, "sweep", "sockeye", "-f", "mxnet")
        assert code == 0
        assert out.count("b=") >= 0
        assert "Sockeye" in out

    def test_analyze_prints_recommendations(self, capsys):
        code, out = run_cli(capsys, "analyze", "nmt", "-f", "tensorflow", "-b", "64")
        assert code == 0
        assert "throughput" in out
        assert "recommendations" in out

    def test_exhibit_single(self, capsys):
        code, out = run_cli(capsys, "exhibit", "table4")
        assert code == 0
        assert "Quadro P4000" in out

    def test_exhibit_unknown(self, capsys):
        code, out = run_cli(capsys, "exhibit", "fig99")
        assert code == 2

    def test_observations(self, capsys):
        code, out = run_cli(capsys, "observations")
        assert code == 0
        assert out.count("[PASS]") == 13

    def test_memory(self, capsys):
        code, out = run_cli(capsys, "memory", "wgan", "-f", "tensorflow", "-b", "32")
        assert code == 0
        assert "feature maps" in out

    def test_distributed(self, capsys):
        code, out = run_cli(capsys, "distributed")
        assert code == 0
        assert "2M1G (ethernet)" in out

    def test_report(self, capsys, tmp_path):
        out_path = str(tmp_path / "r.html")
        code, out = run_cli(
            capsys, "report", "-o", out_path, "--no-observations"
        )
        assert code == 0
        assert "wrote" in out
        import os

        assert os.path.getsize(out_path) > 10_000

    def test_compare(self, capsys):
        code, out = run_cli(
            capsys, "compare", "resnet-50", "mxnet", "tensorflow", "-b", "32"
        )
        assert code == 0
        assert "faster" in out or "indistinguishable" in out

    def test_catalog_listings(self, capsys):
        for command, needle in (
            ("models", "resnet-50"),
            ("frameworks", "TensorFlow"),
            ("datasets", "imagenet1k"),
        ):
            code, out = run_cli(capsys, command)
            assert code == 0
            assert needle in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
