"""Tests for the ``tbd`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCommands:
    def test_run(self, capsys):
        code, out = run_cli(capsys, "run", "resnet-50", "-f", "mxnet", "-b", "16")
        assert code == 0
        assert "ResNet-50" in out and "samples/s" in out

    def test_run_on_other_gpu(self, capsys):
        code, out = run_cli(
            capsys, "run", "resnet-50", "-f", "mxnet", "-b", "16", "-g", "titan xp"
        )
        assert code == 0

    def test_sweep_marks_oom(self, capsys):
        code, out = run_cli(capsys, "sweep", "sockeye", "-f", "mxnet")
        assert code == 0
        assert out.count("b=") >= 0
        assert "Sockeye" in out

    def test_analyze_prints_recommendations(self, capsys):
        code, out = run_cli(capsys, "analyze", "nmt", "-f", "tensorflow", "-b", "64")
        assert code == 0
        assert "throughput" in out
        assert "recommendations" in out

    def test_exhibit_single(self, capsys):
        code, out = run_cli(capsys, "exhibit", "table4")
        assert code == 0
        assert "Quadro P4000" in out

    def test_exhibit_unknown(self, capsys):
        code, out = run_cli(capsys, "exhibit", "fig99")
        assert code == 2

    @pytest.mark.slow
    def test_observations(self, capsys):
        code, out = run_cli(capsys, "observations")
        assert code == 0
        assert out.count("[PASS]") == 13

    def test_memory(self, capsys):
        code, out = run_cli(capsys, "memory", "wgan", "-f", "tensorflow", "-b", "32")
        assert code == 0
        assert "feature maps" in out

    def test_distributed(self, capsys):
        code, out = run_cli(capsys, "distributed")
        assert code == 0
        assert "2M1G (ethernet)" in out

    @pytest.mark.slow
    def test_report(self, capsys, tmp_path):
        out_path = str(tmp_path / "r.html")
        code, out = run_cli(
            capsys, "report", "-o", out_path, "--no-observations"
        )
        assert code == 0
        assert "wrote" in out
        import os

        assert os.path.getsize(out_path) > 10_000

    def test_plan_show(self, capsys):
        code, out = run_cli(
            capsys, "plan", "show", "resnet-50", "-f", "mxnet", "-b", "16"
        )
        assert code == 0
        assert "compiled plan" in out
        assert "ResNet-50" in out and "allocation trace" in out

    def test_plan_show_on_other_gpu(self, capsys):
        code, out = run_cli(
            capsys, "plan", "show", "resnet-50", "-f", "mxnet", "-g", "titan xp"
        )
        assert code == 0
        assert "TITAN Xp" in out

    def test_compare(self, capsys):
        code, out = run_cli(
            capsys, "compare", "resnet-50", "mxnet", "tensorflow", "-b", "32"
        )
        assert code == 0
        assert "faster" in out or "indistinguishable" in out

    def test_catalog_listings(self, capsys):
        for command, needle in (
            ("models", "resnet-50"),
            ("frameworks", "TensorFlow"),
            ("datasets", "imagenet1k"),
        ):
            code, out = run_cli(capsys, command)
            assert code == 0
            assert needle in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTraceAndRuns:
    def test_trace_archives_and_prints_tree(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "trace", "resnet-50", "-f", "mxnet", "-b", "16",
            "--dir", str(tmp_path),
        )
        assert code == 0
        assert "pipeline.stage.profile" in out
        assert "kernel events" in out  # attached simulated timelines
        assert "archived run resnet-50-mxnet-b16-001" in out
        run_dir = tmp_path / "resnet-50-mxnet-b16-001"
        for artifact in ("manifest.json", "spans.jsonl", "trace.json", "metrics.prom"):
            assert (run_dir / artifact).exists(), artifact

    def test_trace_no_archive(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "trace", "wgan", "-f", "tensorflow", "-b", "8",
            "--dir", str(tmp_path), "--no-archive",
        )
        assert code == 0
        assert "(not archived)" in out
        assert not (tmp_path / "wgan-tensorflow-b8-001").exists()

    def test_runs_list_empty(self, capsys, tmp_path):
        code, out = run_cli(capsys, "runs", "--dir", str(tmp_path), "list")
        assert code == 0
        assert "no archived runs" in out

    def test_runs_list_show_diff(self, capsys, tmp_path):
        for _ in range(2):
            run_cli(
                capsys,
                "trace", "resnet-50", "-f", "mxnet", "-b", "16",
                "--dir", str(tmp_path),
            )
        code, out = run_cli(capsys, "runs", "--dir", str(tmp_path), "list")
        assert code == 0
        assert "resnet-50-mxnet-b16-001" in out
        assert "resnet-50-mxnet-b16-002" in out
        assert "samples/s" in out

        code, out = run_cli(
            capsys, "runs", "--dir", str(tmp_path), "show", "resnet-50-mxnet-b16-001"
        )
        assert code == 0
        assert '"run_id": "resnet-50-mxnet-b16-001"' in out
        assert '"throughput"' in out

        code, out = run_cli(
            capsys,
            "runs", "--dir", str(tmp_path), "diff",
            "resnet-50-mxnet-b16-001", "resnet-50-mxnet-b16-002",
        )
        assert code == 0  # identical simulated runs never drift
        assert "all headline metrics within tolerance" in out
        assert "throughput" in out

    def test_runs_diff_flags_drift(self, capsys, tmp_path):
        from repro.observability.archive import RunArchive, RunManifest

        archive = RunArchive(str(tmp_path))
        for run_id, throughput in (("x-001", 100.0), ("x-002", 80.0)):
            archive.record(
                RunManifest(
                    run_id=run_id,
                    model="resnet-50",
                    framework="mxnet",
                    device="Quadro P4000",
                    batch_size=16,
                    seed=0,
                    git="test",
                    created_at="2026-08-06T00:00:00+00:00",
                    metrics={"throughput": throughput},
                )
            )
        code, out = run_cli(
            capsys, "runs", "--dir", str(tmp_path), "diff", "x-001", "x-002"
        )
        assert code == 1
        assert "outside tolerance" in out
        assert "-20.0" in out


class TestEngineCli:
    def test_sweep_cold_then_warm_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold = run_cli(
            capsys, "sweep", "a3c", "-f", "mxnet", "--cache-dir", cache_dir
        )
        assert code == 0
        assert "0 hit(s)" in cold and "computed" in cold
        code, warm = run_cli(
            capsys, "sweep", "a3c", "-f", "mxnet", "--cache-dir", cache_dir
        )
        assert code == 0
        assert "0 computed" in warm and "hit(s)" in warm
        # The table rows themselves are identical either way.
        rows = lambda out: [l for l in out.splitlines() if not l.startswith("engine:")]
        assert rows(cold) == rows(warm)

    def test_sweep_parallel_matches_serial_output(self, capsys, tmp_path):
        serial_args = ("sweep", "resnet-50", "-f", "tensorflow", "--no-cache")
        code, serial = run_cli(capsys, *serial_args)
        assert code == 0
        code, parallel = run_cli(capsys, *serial_args, "--jobs", "2")
        assert code == 0
        rows = lambda out: [l for l in out.splitlines() if not l.startswith("engine:")]
        assert rows(serial) == rows(parallel)

    def test_sweep_no_cache_reports_cache_off(self, capsys):
        code, out = run_cli(capsys, "sweep", "a3c", "-f", "mxnet", "--no-cache")
        assert code == 0
        assert "(cache off)" in out

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(capsys, "sweep", "a3c", "-f", "mxnet", "--cache-dir", cache_dir)
        code, out = run_cli(capsys, "cache", "--dir", cache_dir, "stats")
        assert code == 0
        assert "entries: 5" in out and "a3c" in out
        code, out = run_cli(capsys, "cache", "--dir", cache_dir, "clear")
        assert code == 0
        assert "cleared 5 cached point(s)" in out
        code, out = run_cli(capsys, "cache", "--dir", cache_dir, "stats")
        assert code == 0
        assert "entries: 0" in out

    def test_cache_defaults_to_env_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("TBD_CACHE_DIR", str(tmp_path / "env-cache"))
        run_cli(capsys, "sweep", "a3c", "-f", "mxnet")
        code, out = run_cli(capsys, "cache", "stats")
        assert code == 0
        assert "entries: 5" in out and "env-cache" in out


class TestBenchCommand:
    def test_compare_prints_verdict(self, capsys):
        code, out = run_cli(
            capsys, "bench", "compare", "nmt", "fused-rnn",
            "-b", "64", "--samples", "20", "--seed", "7",
        )
        assert code == 0
        assert "improvement" in out and "speedup" in out

    def test_run_records_trajectory_and_history_reads_it(self, capsys, tmp_path):
        directory = str(tmp_path)
        code, out = run_cli(
            capsys, "bench", "run", "noop",
            "--seed", "7", "--samples", "20", "--dir", directory,
        )
        assert code == 0
        assert "BENCH_noop.json" in out
        code, out = run_cli(capsys, "bench", "history", "noop", "--dir", directory)
        assert code == 0
        assert "seed=7" in out and "gate=PASS" in out

    def test_history_lists_suites(self, capsys, tmp_path):
        code, out = run_cli(capsys, "bench", "history", "--list", "--dir", str(tmp_path))
        assert code == 0
        assert "fused-rnn" in out and "slowdown5" in out

    def test_gate_exit_codes(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench", "gate", "noop",
            "--seed", "7", "--samples", "20", "--dir", str(tmp_path),
        )
        assert code == 0
        assert "gate PASS" in out
        # An alpha of ~1 makes every wobble "significant", but the noop
        # control expects 'indistinguishable' verdicts -- the mismatch
        # must fail the gate.
        code, out = run_cli(
            capsys, "bench", "gate", "noop",
            "--seed", "7", "--samples", "20", "--dir", str(tmp_path),
            "--alpha", "0.999", "--min-effect", "0.0",
        )
        assert code == 1
        assert "gate FAIL" in out
