"""Tests for the energy model, the golden-baseline regression system, and
graph linting."""

import json

import pytest

from repro.core.regression import (
    DEFAULT_PATH,
    TOLERANCES,
    capture_baselines,
    detect_drift,
    load_baselines,
    save_baselines,
)
from repro.graph.layer import Layer, LayerGraph
from repro.graph.validation import assert_valid, lint_graph
from repro.hardware.devices import GTX_580, QUADRO_P4000, TITAN_XP
from repro.hardware.energy import (
    HOST_POWER_WATTS,
    energy_profile,
    energy_to_accuracy_j,
    perf_per_watt_comparison,
    tdp_of,
)
from repro.models.registry import extension_catalog, model_catalog
from repro.training.session import TrainingSession


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def resnet_energy(self):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration(32)
        return energy_profile(profile, QUADRO_P4000)

    def test_tdp_lookup(self):
        assert tdp_of(QUADRO_P4000) == 105.0
        assert tdp_of(TITAN_XP) == 250.0
        with pytest.raises(KeyError):
            from repro.hardware.devices import GPUSpec

            tdp_of(
                GPUSpec("H100", 1, 1, 1.0, 1.0, 1.0, "x", 1.0, "x", 1.0)
            )

    def test_power_bounded_by_tdp_plus_host(self, resnet_energy):
        assert resnet_energy.gpu_power_watts <= 105.0
        assert resnet_energy.gpu_power_watts > 0.12 * 105.0  # above idle
        assert resnet_energy.total_power_watts == pytest.approx(
            resnet_energy.gpu_power_watts + HOST_POWER_WATTS
        )

    def test_energy_accounting(self, resnet_energy):
        assert resnet_energy.energy_per_iteration_j > 0
        assert resnet_energy.samples_per_joule == pytest.approx(
            1.0 / resnet_energy.joules_per_sample
        )

    def test_titan_xp_faster_but_not_proportionally_more_efficient(self):
        """The efficiency flip side of Obs. 10: the Titan Xp's 2x throughput
        costs ~2.4x the TDP, so perf/watt does not double."""
        comparison = perf_per_watt_comparison(
            "resnet-50", "mxnet", 32, (QUADRO_P4000, TITAN_XP)
        )
        p4, xp = comparison
        assert xp.throughput > 1.8 * p4.throughput
        assert xp.samples_per_joule < 1.8 * p4.samples_per_joule

    def test_gtx580_era_was_far_less_efficient(self):
        comparison = perf_per_watt_comparison(
            "alexnet", "mxnet", 32, (GTX_580, QUADRO_P4000)
        )
        old, new = comparison
        assert new.samples_per_joule > 2.0 * old.samples_per_joule

    def test_energy_to_accuracy(self):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration(32)
        energy = energy_profile(profile, QUADRO_P4000)
        to_60 = energy_to_accuracy_j("resnet-50", energy, 60.0)
        to_70 = energy_to_accuracy_j("resnet-50", energy, 70.0)
        assert to_70 > to_60 > 0


class TestRegressionBaselines:
    def test_checked_in_baselines_exist_and_cover_the_suite(self):
        baselines = load_baselines()
        assert len(baselines) == 14
        assert "resnet-50/mxnet" in baselines

    def test_no_drift_against_checked_in_baselines(self):
        """The calibration gate: current simulator output matches the
        golden file within tolerance."""
        drifts = detect_drift()
        assert not drifts, "calibration drift: " + "; ".join(map(str, drifts))

    def test_capture_matches_live_run(self, suite):
        captured = capture_baselines(suite)
        entry = captured["wgan/tensorflow"]
        live = suite.run("wgan", "tensorflow")
        assert entry["throughput"] == pytest.approx(live.throughput)

    def test_detect_drift_flags_changes(self, tmp_path, suite):
        path = str(tmp_path / "baselines.json")
        save_baselines(path, suite)
        data = json.load(open(path))
        data["resnet-50/mxnet"]["throughput"] *= 1.5
        data["ghost/config"] = data["resnet-50/mxnet"]
        json.dump(data, open(path, "w"))
        drifts = detect_drift(path, suite)
        kinds = {(d.configuration, d.metric) for d in drifts}
        assert ("resnet-50/mxnet", "throughput") in kinds
        assert ("ghost/config", "<missing>") in kinds

    def test_tolerances_sane(self):
        assert set(TOLERANCES) == {
            "throughput",
            "gpu_utilization",
            "fp32_utilization",
            "cpu_utilization",
        }
        assert all(0 < t < 0.2 for t in TOLERANCES.values())

    def test_default_path_is_package_local(self):
        assert DEFAULT_PATH.endswith("baselines.json")


class TestGraphLinting:
    def test_whole_zoo_lints_clean(self):
        specs = list(model_catalog().values()) + list(extension_catalog().values())
        for spec in specs:
            for batch in (spec.batch_sizes[0], spec.reference_batch):
                graph = spec.build(batch)
                findings = lint_graph(graph)
                assert not findings, (spec.key, batch, list(map(str, findings)))

    def test_empty_graph_flagged(self):
        findings = lint_graph(LayerGraph("empty", 1))
        rules = {finding.rule for finding in findings}
        assert "empty graph" in rules
        assert "no computation" in rules

    def test_untrainable_weights_flagged(self):
        graph = LayerGraph(
            "bad", 1, layers=[Layer("w", "dense", weight_elements=10)]
        )
        rules = {finding.rule for finding in lint_graph(graph)}
        assert "untrainable weights" in rules

    def test_missing_recurrent_geometry_flagged(self):
        graph = LayerGraph("bad", 1, layers=[Layer("l", "lstm", weight_elements=0)])
        rules = {finding.rule for finding in lint_graph(graph)}
        assert "missing recurrent geometry" in rules

    def test_assert_valid_raises_with_details(self):
        with pytest.raises(ValueError, match="empty graph"):
            assert_valid(LayerGraph("empty", 1))

    def test_assert_valid_passes_for_real_model(self):
        from repro.models.resnet import build_resnet50

        assert_valid(build_resnet50(4))


class TestDeepSpeechCellOption:
    def test_gru_variant_builds_and_costs_more(self):
        from repro.models.deepspeech import build_deep_speech2

        rnn = build_deep_speech2(2, cell="rnn")
        gru = build_deep_speech2(2, cell="gru")
        assert gru.iteration_flops() > 2.0 * rnn.iteration_flops()
        assert any(l.kind == "gru" for l in gru.layers)

    def test_invalid_cell_rejected(self):
        from repro.models.deepspeech import build_deep_speech2

        with pytest.raises(ValueError, match="cell"):
            build_deep_speech2(2, cell="lstm")
