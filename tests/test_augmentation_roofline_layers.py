"""Tests for data augmentation, the ASCII roofline chart, and the newer
real-engine layers (GRU, LayerNorm, MaxPool2d module)."""

import numpy as np
import pytest

from repro.data.augmentation import (
    AugmentationPipeline,
    center_crop,
    normalize,
    random_crop,
    random_horizontal_flip,
)
from repro.hardware.devices import QUADRO_P4000
from repro.profiling.kernel_trace import trace_from_profile
from repro.profiling.roofline_chart import (
    points_from_trace,
    render_roofline,
    roofline_for,
)
from repro.tensor import GRUCell, LayerNorm, MaxPool2d
from repro.tensor.optim import Adam
from repro.tensor.tensor import Tensor
from repro.training.session import TrainingSession


def _images(batch=4, channels=3, size=16, seed=0):
    return np.random.default_rng(seed).normal(
        0, 1, size=(batch, channels, size, size)
    ).astype(np.float32)


class TestAugmentation:
    def test_random_crop_shape_and_content(self):
        rng = np.random.default_rng(0)
        images = _images(size=16)
        cropped = random_crop(images, 8, rng)
        assert cropped.shape == (4, 3, 8, 8)
        # Every crop is a contiguous window of the original.
        flat = images[0].reshape(3, -1)
        assert np.isin(cropped[0].ravel(), flat.ravel()).all()

    def test_crop_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_crop(_images(size=8), 16, np.random.default_rng(0))
        with pytest.raises(ValueError):
            center_crop(_images(size=8), 16)

    def test_center_crop_is_deterministic(self):
        images = _images()
        assert np.array_equal(center_crop(images, 8), center_crop(images, 8))

    def test_flip_probability_extremes(self):
        rng = np.random.default_rng(0)
        images = _images()
        never = random_horizontal_flip(images, rng, probability=0.0)
        assert np.array_equal(never, images)
        always = random_horizontal_flip(images, rng, probability=1.0)
        assert np.array_equal(always, images[:, :, :, ::-1])

    def test_flip_preserves_pixel_multiset(self):
        rng = np.random.default_rng(1)
        images = _images()
        flipped = random_horizontal_flip(images, rng, probability=0.5)
        assert np.allclose(np.sort(images.ravel()), np.sort(flipped.ravel()))

    def test_normalize(self):
        images = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = normalize(images, mean=(1.0, 1.0, 1.0), std=(2.0, 2.0, 2.0))
        assert np.allclose(out, 0.0)
        with pytest.raises(ValueError):
            normalize(images, (0, 0, 0), (0, 1, 1))

    def test_pipeline_train_vs_eval(self):
        pipeline = AugmentationPipeline(crop_size=8, seed=3)
        images = _images(size=16)
        trained = pipeline(images, training=True)
        evaluated = pipeline(images, training=False)
        assert trained.shape == evaluated.shape == (4, 3, 8, 8)
        # Eval path is deterministic; train path generally differs.
        assert np.array_equal(evaluated, pipeline(images, training=False))

    def test_pipeline_validation(self):
        with pytest.raises(ValueError):
            AugmentationPipeline(crop_size=0)


class TestRooflineChart:
    @pytest.fixture(scope="class")
    def trace(self):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration(16)
        return trace_from_profile(profile)

    def test_points_extracted_with_shares(self, trace):
        points = points_from_trace(trace, top=8)
        assert 1 <= len(points) <= 8
        assert all(0 < p.time_share <= 1 for p in points)
        shares = [p.time_share for p in points]
        assert shares == sorted(shares, reverse=True)

    def test_bn_kernels_sit_in_the_bandwidth_region(self, trace):
        points = {p.name: p for p in points_from_trace(trace, top=10)}
        bn = next(p for name, p in points.items() if "bn_" in name)
        breakeven = (
            QUADRO_P4000.peak_fp32_flops / QUADRO_P4000.memory_bandwidth_bytes
        )
        assert bn.arithmetic_intensity < breakeven  # memory-bound side

    def test_render_contains_roof_and_labels(self, trace):
        text = render_roofline(points_from_trace(trace, top=5), QUADRO_P4000)
        assert "roofline: Quadro P4000" in text
        assert "/" in text and "-" in text  # both roof segments
        assert "a:" in text

    def test_render_validation(self, trace):
        with pytest.raises(ValueError):
            render_roofline([], QUADRO_P4000, width=10)
        with pytest.raises(ValueError):
            points_from_trace(trace, top=0)

    def test_convenience_wrapper(self):
        text = roofline_for(TrainingSession("wgan", "tensorflow"), 16, top=4)
        assert "GFLOP/s" in text


class TestNewLayers:
    def test_gru_cell_trains_on_recall_task(self):
        """The GRU must learn to carry the first input bit through five
        steps of distractors — a memory task a memoryless head cannot do."""
        rng = np.random.default_rng(0)
        cell = GRUCell(4, 16)
        from repro.tensor.layers import Dense
        from repro.tensor import functional as F

        head = Dense(16, 2)
        parameters = cell.parameters() + head.parameters()
        optimizer = Adam(parameters, learning_rate=0.02)
        first = None
        for _ in range(60):
            bits = rng.integers(0, 2, size=(16, 5))
            target = bits[:, 0]
            inputs = np.zeros((16, 5, 4), dtype=np.float32)
            inputs[:, :, 0] = bits
            h = cell.initial_state(16)
            for step in range(5):
                h = cell(Tensor(inputs[:, step, :]), h)
            loss = F.cross_entropy(head(h), target)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.8 * first

    def test_gru_state_bounded(self):
        cell = GRUCell(4, 8)
        h = cell.initial_state(2)
        x = Tensor(np.random.default_rng(0).normal(0, 5, (2, 4)).astype(np.float32))
        for _ in range(20):
            h = cell(x, h)
        assert np.abs(h.data).max() <= 1.0 + 1e-5

    def test_layernorm_normalizes_last_axis(self):
        layer = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(3, 4, (2, 5, 6)).astype(np.float32))
        out = layer(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradients(self):
        layer = LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(0, 1, (3, 4)).astype(np.float32), requires_grad=True)
        (layer(x) ** 2.0).sum().backward()
        assert x.grad is not None
        assert layer.gamma.grad is not None

    def test_maxpool_module(self):
        layer = MaxPool2d(kernel=2)
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = layer(x)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 1, 1] == 15.0
