"""Fault-matrix regression tests: every nasty corner of the fault space
must end in a defined result or a typed ``UnrecoverableFaultError`` —
never a hang, never a silent garbage number.

The matrix: crash at step 0, crash at the final step, every worker
straggling at once, total (100%) packet loss both bounded and
open-ended, timeout storms beyond the retry budget, back-to-back
faults, and a crash that takes the whole cluster.
"""

import math

import pytest

from repro.faults import (
    AllReduceTimeout,
    BackoffPolicy,
    CheckpointPolicy,
    FaultPlan,
    FaultSpecError,
    FaultTolerantTrainer,
    LinkFault,
    RecoveryConfig,
    StragglerFault,
    UnrecoverableFaultError,
    WorkerCrash,
    parse_fault_spec,
)
from repro.hardware.cluster import parse_configuration


def _trainer(plan, configuration="4M1G", recovery=None, batch=16):
    cluster = parse_configuration(configuration, fabric="infiniband")
    return FaultTolerantTrainer(
        "resnet-50", "mxnet", cluster, batch, plan=plan, recovery=recovery
    )


def _assert_sane(result, steps):
    assert result.steps_completed == steps
    assert math.isfinite(result.wall_clock_s)
    assert result.wall_clock_s > 0
    assert result.samples > 0


class TestCrashCorners:
    def test_crash_at_step_zero_recovers_and_shrinks(self):
        plan = FaultPlan(events=(WorkerCrash(step=0),))
        result = _trainer(plan).run(steps=20)
        _assert_sane(result, 20)
        assert result.final_machines == 3
        assert result.shrank
        assert any(event.kind == "crash" for event in result.events)

    def test_crash_at_the_final_step_still_finishes(self):
        plan = FaultPlan(events=(WorkerCrash(step=19),))
        result = _trainer(plan).run(steps=20)
        _assert_sane(result, 20)
        assert result.final_machines == 3

    def test_crash_taking_every_machine_is_unrecoverable(self):
        plan = FaultPlan(events=(WorkerCrash(step=5, machines=4),))
        with pytest.raises(UnrecoverableFaultError) as excinfo:
            _trainer(plan).run(steps=20)
        assert excinfo.value.kind == "crash"
        assert excinfo.value.step == 5

    def test_back_to_back_crashes_shrink_twice(self):
        plan = FaultPlan(events=(WorkerCrash(step=5), WorkerCrash(step=6)))
        result = _trainer(plan).run(steps=20)
        _assert_sane(result, 20)
        assert result.final_machines == 2
        assert sum(1 for event in result.events if event.kind == "crash") == 2

    def test_crash_rollback_never_loses_progress_permanently(self):
        # Rollback to the checkpoint replays steps; the run still reaches
        # the requested step count and costs more wall-clock than clean.
        plan = FaultPlan(events=(WorkerCrash(step=13),))
        recovery = RecoveryConfig(checkpoint=CheckpointPolicy(interval_steps=5))
        faulted = _trainer(plan, recovery=recovery).run(steps=20)
        clean = _trainer(None).run(steps=20)
        _assert_sane(faulted, 20)
        assert faulted.wall_clock_s > clean.wall_clock_s
        assert faulted.lost_s > 0


class TestStragglerCorners:
    def test_every_worker_straggling_is_just_a_slow_run(self):
        events = tuple(
            StragglerFault(worker=worker, factor=2.0, start_step=0)
            for worker in range(4)
        )
        result = _trainer(FaultPlan(events=events)).run(steps=20)
        clean = _trainer(None).run(steps=20)
        _assert_sane(result, 20)
        assert result.wall_clock_s > clean.wall_clock_s
        assert result.final_machines == 4

    def test_extreme_straggler_factor_stays_finite(self):
        plan = FaultPlan(
            events=(StragglerFault(worker=0, factor=1000.0, start_step=0),)
        )
        result = _trainer(plan).run(steps=10)
        _assert_sane(result, 10)

    def test_straggler_factor_below_one_is_rejected(self):
        with pytest.raises(ValueError):
            StragglerFault(worker=0, factor=0.5)


class TestLinkOutageCorners:
    def test_bounded_total_loss_drains_and_recovers(self):
        plan = FaultPlan(
            events=(LinkFault(packet_loss=1.0, start_step=5, end_step=7),)
        )
        result = _trainer(plan).run(steps=20)
        _assert_sane(result, 20)
        assert result.lost_s > 0
        assert any(event.kind == "link-outage" for event in result.events)

    def test_open_ended_total_loss_is_unrecoverable(self):
        plan = FaultPlan(events=(LinkFault(packet_loss=1.0, start_step=5),))
        with pytest.raises(UnrecoverableFaultError) as excinfo:
            _trainer(plan).run(steps=20)
        assert excinfo.value.kind == "link-outage"

    def test_severe_but_partial_loss_is_survivable(self):
        plan = FaultPlan(
            events=(LinkFault(packet_loss=0.99, start_step=0),)
        )
        result = _trainer(plan).run(steps=10)
        _assert_sane(result, 10)

    def test_huge_step_count_past_last_fault_uses_the_closed_form(self):
        # A million steps after the fault window must return immediately
        # via the closed-form tail — this test hanging IS the failure.
        plan = FaultPlan(
            events=(LinkFault(packet_loss=1.0, start_step=2, end_step=4),)
        )
        result = _trainer(plan).run(steps=1_000_000)
        _assert_sane(result, 1_000_000)


class TestTimeoutCorners:
    def test_timeout_within_budget_backs_off_and_recovers(self):
        plan = FaultPlan(events=(AllReduceTimeout(step=3, failures=2),))
        result = _trainer(plan).run(steps=10)
        _assert_sane(result, 10)
        assert any(event.action == "backoff" for event in result.events)

    def test_timeout_storm_beyond_retry_budget_is_unrecoverable(self):
        recovery = RecoveryConfig(backoff=BackoffPolicy(max_retries=3))
        plan = FaultPlan(events=(AllReduceTimeout(step=3, failures=9),))
        with pytest.raises(UnrecoverableFaultError) as excinfo:
            _trainer(plan, recovery=recovery).run(steps=10)
        assert excinfo.value.kind == "timeout"
        assert excinfo.value.step == 3

    def test_timeouts_fire_exactly_once(self):
        plan = FaultPlan(events=(AllReduceTimeout(step=3, failures=1),))
        result = _trainer(plan).run(steps=10)
        assert sum(1 for event in result.events if event.kind == "timeout") == 1


class TestBackToBackEverything:
    def test_crash_outage_timeout_and_straggler_together(self):
        plan = FaultPlan(
            events=(
                StragglerFault(worker=1, factor=1.5, start_step=0, end_step=15),
                LinkFault(packet_loss=1.0, start_step=4, end_step=6),
                AllReduceTimeout(step=8, failures=2),
                WorkerCrash(step=10),
            ),
            seed=7,
        )
        result = _trainer(plan).run(steps=25)
        _assert_sane(result, 25)
        assert result.final_machines == 3
        kinds = {event.kind for event in result.events}
        assert {"link-outage", "timeout", "crash"} <= kinds

    def test_run_until_samples_terminates_under_faults(self):
        plan = FaultPlan(
            events=(WorkerCrash(step=4), AllReduceTimeout(step=8, failures=1))
        )
        trainer = _trainer(plan)
        target = trainer.baseline.samples_per_iteration * 40
        result = trainer.run_until_samples(target)
        assert result.samples >= target
        assert math.isfinite(result.wall_clock_s)


class TestSpecParsingErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "straggler=banana",
            "crash=@",
            "degrade=bw0@0",
            "steps=-5",
            "cluster=",
            "unknown=1@2",
            "timeout=2x@3",
        ],
    )
    def test_malformed_specs_raise_typed_errors(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(text)

    def test_valid_spec_round_trips_through_describe(self):
        scenario = parse_fault_spec(
            "cluster=4M1G:infiniband; steps=30; seed=9; "
            "straggler=1x1.5@5:20; crash=1@25"
        )
        assert scenario.steps == 30
        assert scenario.plan.seed == 9
        assert len(scenario.plan.events) == 2
        assert "straggler" in scenario.describe().lower()
