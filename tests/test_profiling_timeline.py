"""Unit tests for timeline reconstruction and trace export."""

import json

import pytest

from repro.profiling.export import (
    kernel_stats_to_csv,
    metrics_to_csv,
    timeline_to_chrome_trace,
    write_chrome_trace,
)
from repro.profiling.kernel_trace import trace_from_profile
from repro.profiling.timeline import build_timeline, timeline_for
from repro.core.metrics import IterationMetrics
from repro.training.session import TrainingSession


@pytest.fixture(scope="module")
def cnn_timeline():
    return timeline_for(TrainingSession("resnet-50", "mxnet"), 32)


@pytest.fixture(scope="module")
def rnn_timeline():
    return timeline_for(TrainingSession("nmt", "tensorflow"), 64)


class TestTimelineConstruction:
    def test_events_are_ordered_and_non_overlapping(self, cnn_timeline):
        events = cnn_timeline.events
        for before, after in zip(events, events[1:]):
            assert after.start_s >= before.end_s - 1e-12

    def test_busy_plus_idle_bounds_makespan(self, cnn_timeline):
        combined = cnn_timeline.busy_s + cnn_timeline.idle_s
        assert combined <= cnn_timeline.makespan_s + 1e-9
        assert combined >= 0.95 * cnn_timeline.makespan_s

    def test_matches_session_utilization(self):
        session = TrainingSession("sockeye", "mxnet")
        profile = session.run_iteration(64)
        timeline = timeline_for(session, 64)
        # The timeline excludes pipeline/host exposure, so compare against
        # the kernel-level quantities.
        assert timeline.busy_s == pytest.approx(profile.gpu_busy_time_s, rel=1e-9)

    def test_event_fields(self, cnn_timeline):
        event = cnn_timeline.events[10]
        assert event.end_s > event.start_s
        assert event.queue_delay_s >= 0.0

    def test_rnn_timeline_has_host_sync_gaps(self, rnn_timeline):
        causes = rnn_timeline.idle_by_cause()
        assert causes.get("host sync", 0.0) > 0.0
        # host syncs dominate the idle time for dynamic_rnn-style graphs
        assert causes["host sync"] > causes.get("dispatch", 0.0)

    def test_cnn_timeline_has_little_idle(self, cnn_timeline):
        assert cnn_timeline.gpu_utilization > 0.9

    def test_busy_by_category_sums_to_busy(self, cnn_timeline):
        assert sum(cnn_timeline.busy_by_category().values()) == pytest.approx(
            cnn_timeline.busy_s
        )

    def test_longest_gaps_sorted(self, rnn_timeline):
        gaps = rnn_timeline.longest_gaps(5)
        durations = [gap.duration_s for gap in gaps]
        assert durations == sorted(durations, reverse=True)
        with pytest.raises(ValueError):
            rnn_timeline.longest_gaps(0)

    def test_build_timeline_empty(self):
        from repro.frameworks.registry import TENSORFLOW

        timeline = build_timeline([], TENSORFLOW)
        assert timeline.busy_s == 0.0
        assert timeline.gpu_utilization == 0.0


class TestGapAttribution:
    """Pin the dispatch/host-sync gap attribution and queue delays on a
    hand-computable host-sync-heavy kernel stream."""

    @pytest.fixture(scope="class")
    def synthetic_timeline(self):
        from repro.frameworks.base import Framework, MomentumAllocation
        from repro.hardware.roofline import KernelTiming
        from repro.kernels.base import Kernel, KernelCategory

        framework = Framework(
            name="synthetic",
            version="0",
            dispatch_cost_s=10e-6,
            frontend_cost_s=50e-6,
            pool_overhead=1.0,
            workspace_factor=1.0,
            momentum_allocation=MomentumAllocation.STATIC,
        )  # sync_latency_s defaults to 200e-6

        def timing(name, duration_us, host_sync=False):
            kernel = Kernel(
                name=name,
                category=KernelCategory.ELEMENTWISE,
                flops=1.0,
                bytes_accessed=1.0,
                host_sync=host_sync,
            )
            duration = duration_us * 1e-6
            return KernelTiming(
                kernel=kernel,
                duration_s=duration,
                compute_time_s=duration,
                memory_time_s=0.0,
                launch_latency_s=0.0,
            )

        timings = [
            timing("k1", 500),
            timing("k2", 50),
            timing("k3", 40, host_sync=True),
            timing("k4", 30),
            timing("k5", 20, host_sync=True),
            timing("k6", 5),
            timing("k7", 5),
        ]
        return build_timeline(timings, framework)

    def test_gap_causes_and_extents(self, synthetic_timeline):
        us = 1e-6
        gaps = [
            (gap.cause, gap.start_s / us, gap.end_s / us)
            for gap in synthetic_timeline.gaps
        ]
        assert gaps == [
            ("frontend", pytest.approx(0.0), pytest.approx(60.0)),
            ("host sync", pytest.approx(650.0), pytest.approx(860.0)),
            ("host sync", pytest.approx(910.0), pytest.approx(1120.0)),
            ("dispatch", pytest.approx(1125.0), pytest.approx(1130.0)),
        ]

    def test_idle_by_cause_totals(self, synthetic_timeline):
        causes = synthetic_timeline.idle_by_cause()
        assert causes["host sync"] == pytest.approx(420e-6)
        assert causes["dispatch"] == pytest.approx(5e-6)
        assert causes["frontend"] == pytest.approx(60e-6)
        # Host syncs dominate dispatch starvation in a sync-heavy stream.
        assert causes["host sync"] > causes["dispatch"]

    def test_queue_delays(self, synthetic_timeline):
        delays = {
            event.name: event.queue_delay_s for event in synthetic_timeline.events
        }
        # k1 opens the stream, k4/k6/k7 start CPU-bound: no queueing.
        assert delays["k1"] == pytest.approx(0.0)
        assert delays["k4"] == pytest.approx(0.0)
        assert delays["k6"] == pytest.approx(0.0)
        assert delays["k7"] == pytest.approx(0.0)
        # k2/k3 were issued while the 500us kernel still ran; k5 queued
        # briefly behind k4.
        assert delays["k2"] == pytest.approx(490e-6)
        assert delays["k3"] == pytest.approx(530e-6)
        assert delays["k5"] == pytest.approx(20e-6)

    def test_makespan_and_busy(self, synthetic_timeline):
        assert synthetic_timeline.busy_s == pytest.approx(650e-6)
        assert synthetic_timeline.makespan_s == pytest.approx(1135e-6)
        assert synthetic_timeline.idle_s == pytest.approx(485e-6)


class TestDeterministicExport:
    def test_chrome_trace_is_byte_stable(self, cnn_timeline, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(cnn_timeline, str(first))
        write_chrome_trace(cnn_timeline, str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_timestamps_have_fixed_precision(self, cnn_timeline):
        trace = timeline_to_chrome_trace(cnn_timeline)
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert event["ts"] == round(event["ts"], 3)
            assert event["dur"] == round(event["dur"], 3)


class TestChromeTraceExport:
    def test_trace_structure(self, cnn_timeline):
        trace = timeline_to_chrome_trace(cnn_timeline, process_name="test")
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(cnn_timeline.events) + len(cnn_timeline.gaps)
        assert all(e["dur"] >= 0 for e in complete)

    def test_round_trips_through_json(self, cnn_timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(cnn_timeline, str(path))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) > 100

    def test_idle_events_on_separate_track(self, rnn_timeline):
        trace = timeline_to_chrome_trace(rnn_timeline)
        idle = [e for e in trace["traceEvents"] if e.get("cat") == "idle"]
        assert idle
        assert all(e["tid"] == 1 for e in idle)


class TestCSVExport:
    def test_kernel_stats_csv(self, tmp_path):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration(16)
        trace = trace_from_profile(profile)
        path = tmp_path / "kernels.csv"
        text = kernel_stats_to_csv(trace, str(path))
        lines = text.strip().splitlines()
        assert lines[0].startswith("kernel,launches")
        assert len(lines) > 10
        assert path.read_text() == text

    def test_kernel_stats_csv_to_buffer(self):
        import io

        profile = TrainingSession("wgan", "tensorflow").run_iteration(8)
        buffer = io.StringIO()
        kernel_stats_to_csv(trace_from_profile(profile), buffer)
        assert "kernel" in buffer.getvalue()

    def test_metrics_csv(self):
        profile = TrainingSession("a3c", "mxnet").run_iteration(32)
        text = metrics_to_csv([IterationMetrics.from_profile(profile)])
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert "A3C" in lines[1]
