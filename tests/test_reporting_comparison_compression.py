"""Tests for the HTML report, A/B comparison harness, and gradient
compression wrappers."""

import pytest

from repro.core.html_report import build_report, write_report
from repro.distributed.compression import (
    HalfPrecisionGradients,
    TopKSparsification,
)
from repro.distributed.data_parallel import DataParallelTrainer
from repro.distributed.parameter_server import ParameterServerExchange
from repro.hardware.cluster import parse_configuration
from repro.profiling.comparison import ab_compare

_GRAD = 100e6
_SLOW = parse_configuration("2M1G", fabric="1gbe")


class TestCompression:
    def test_fp16_halves_the_wire_time(self):
        base = ParameterServerExchange()
        plain = base.cost(_GRAD, _SLOW)
        compressed = HalfPrecisionGradients(base).cost(_GRAD, _SLOW)
        assert compressed.inter_machine_s == pytest.approx(
            plain.inter_machine_s / 2.0, rel=0.01
        )

    def test_topk_cuts_wire_time_but_charges_selection(self):
        base = ParameterServerExchange()
        compressed = TopKSparsification(base, 0.01).cost(_GRAD, _SLOW)
        plain = base.cost(_GRAD, _SLOW)
        assert compressed.inter_machine_s < 0.05 * plain.inter_machine_s
        assert compressed.compression_s > 0

    def test_topk_keep_one_doubles_volume(self):
        """keep=1.0 still sends indices, so it is *worse* than no
        compression — the wrapper does not pretend otherwise."""
        base = ParameterServerExchange()
        everything = TopKSparsification(base, 1.0).cost(_GRAD, _SLOW)
        plain = base.cost(_GRAD, _SLOW)
        assert everything.inter_machine_s > plain.inter_machine_s

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKSparsification(ParameterServerExchange(), 0.0)

    def test_names_compose(self):
        wrapped = HalfPrecisionGradients(ParameterServerExchange())
        assert "fp16" in wrapped.name

    def test_end_to_end_with_trainer(self):
        plain = DataParallelTrainer("resnet-50", "mxnet", _SLOW).run_iteration(32)
        compressed = DataParallelTrainer(
            "resnet-50",
            "mxnet",
            _SLOW,
            exchange=TopKSparsification(ParameterServerExchange(), 0.01),
        ).run_iteration(32)
        assert compressed.throughput > 3.0 * plain.throughput


class TestABComparison:
    def test_clear_difference_detected(self):
        report = ab_compare("resnet-50", "mxnet", "tensorflow", 32, iterations=150)
        assert report.result.significant
        assert report.result.faster == "mxnet"
        assert "faster" in report.verdict

    def test_same_configuration_indistinguishable(self):
        report = ab_compare("wgan", "tensorflow", "tensorflow", 16, iterations=100)
        assert not report.result.significant
        assert "indistinguishable" in report.verdict

    def test_means_match_point_estimates(self, suite):
        report = ab_compare("resnet-50", "mxnet", "tensorflow", 32, iterations=150)
        point = suite.run("resnet-50", "mxnet", 32).throughput
        assert report.mean_a == pytest.approx(point, rel=0.05)

    def test_explicit_samples_override(self):
        report = ab_compare("resnet-50", "mxnet", "tensorflow", 32, samples=80)
        assert report.samples == 80
        with pytest.raises(ValueError):
            ab_compare("resnet-50", "mxnet", "tensorflow", 32, samples=80, iterations=90)

    def test_adaptive_sizing_reports_its_sample_count(self):
        report = ab_compare("resnet-50", "mxnet", "tensorflow", 32)
        assert 50 <= report.samples <= 1000
        assert report.result.p_value < 0.05


class TestHTMLReport:
    def test_selected_exhibits_only(self):
        text = build_report(observations=False, exhibits=["table4"])
        assert "Quadro P4000" in text
        assert "Fig. 10" not in text
        assert text.startswith("<!doctype html>")

    def test_observation_checklist_included(self):
        text = build_report(observations=True, exhibits=[])
        assert text.count("PASS") == 13
        assert "feature maps are the dominant consumers" in text.lower()

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(KeyError):
            build_report(exhibits=["fig99"])

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.html"
        write_report(str(path), observations=False, exhibits=["table1"])
        content = path.read_text()
        assert "categorized" in content

    def test_escaping(self):
        # Kernel names contain '<...>' template arguments; they must be
        # escaped, not swallowed as tags.
        text = build_report(observations=False, exhibits=["table5_6"])
        assert "&lt;relu&gt;" in text
