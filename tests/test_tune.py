"""Tests for the cost-model-guided autotuner (``tbd tune``).

The tuner's contract, layer by layer: the enumeration only proposes
applicable families; the ranking's winner strictly beats the baseline
under the analytic cost model and the OOM boundary; the A/B confirmation
attaches a seeded statistical verdict; winners persist in the
content-addressed cache so retuning is a hit; and the advisor cites a
cached tuned config ahead of its heuristics.
"""

from __future__ import annotations

import pytest

from repro.bench.noise import NoiseModel
from repro.bench.runner import InterleavedRunner
from repro.cli import main
from repro.core.analysis import AnalysisPipeline
from repro.core.recommendations import advise
from repro.engine.cache import ResultCache
from repro.engine.keys import point_key
from repro.hardware.devices import TITAN_XP
from repro.tune import (
    Autotuner,
    TuneResult,
    load_tuned,
    store_tuned,
    tuned_key,
)


def _runner(seed: int = 7) -> InterleavedRunner:
    return InterleavedRunner(noise=NoiseModel(seed=seed))


class TestEnumeration:
    def test_rnn_workload_gets_fusion_but_not_depth(self):
        specs = Autotuner("nmt", "tensorflow", batch_size=64).candidate_specs()
        assert any("fused_rnn" in spec for spec in specs)
        assert not any("depth" in spec for spec in specs)

    def test_resnet_gets_depth_but_not_fusion(self):
        specs = Autotuner("resnet-50", "mxnet", batch_size=16).candidate_specs()
        assert any("depth:23" in spec for spec in specs)
        assert any("depth:36" in spec for spec in specs)
        assert not any("fused_rnn" in spec for spec in specs)

    def test_specs_are_canonical_and_non_empty(self):
        from repro.plan.pipeline import canonical_transform_spec

        for spec in Autotuner("nmt", "tensorflow", batch_size=64).candidate_specs():
            assert spec
            assert canonical_transform_spec(spec) == spec


class TestRanking:
    @pytest.fixture(scope="class")
    def nmt_result(self):
        return Autotuner("nmt", "tensorflow", batch_size=64).rank()

    def test_winner_is_a_multi_transform_pipeline(self, nmt_result):
        assert nmt_result.winner is not None
        assert "+" in nmt_result.winner.spec
        assert "fused_rnn" in nmt_result.winner.spec

    def test_winner_beats_the_baseline_and_fits(self, nmt_result):
        winner = nmt_result.winner
        assert winner.fits
        assert winner.makespan_s < nmt_result.baseline_makespan_s
        assert nmt_result.modeled_speedup > 1.5

    def test_candidates_are_ranked_best_first(self, nmt_result):
        keys = [Autotuner._rank_key(c) for c in nmt_result.candidates]
        assert keys == sorted(keys)
        assert all(candidate.fits for candidate in nmt_result.candidates)

    def test_budget_truncates_the_enumeration(self):
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        full = tuner.rank()
        capped = tuner.rank(budget=2)
        assert len(capped.candidates) + capped.pruned == 2
        assert len(full.candidates) + full.pruned == len(tuner.candidate_specs())

    def test_zero_budget_keeps_the_baseline(self):
        result = Autotuner("nmt", "tensorflow", batch_size=64).rank(budget=0)
        assert result.winner is None
        assert result.modeled_speedup == 1.0

    def test_oom_candidates_are_pruned_not_ranked(self):
        # depth:36 blows past the P4000 at resnet-50's largest batch.
        result = Autotuner("resnet-50", "mxnet", batch_size=64).rank()
        assert result.pruned > 0
        # The bare depth rewrites bust the P4000; with offload+fp16
        # reclaiming the footprint, the same depths fit again.
        fitting = [c.spec for c in result.candidates]
        assert "depth:36" not in fitting
        assert "depth:36+offload:0.5+fp16" in fitting

    def test_gpu_changes_the_boundary(self):
        p4000 = Autotuner("resnet-50", "mxnet", batch_size=64).rank()
        titan = Autotuner("resnet-50", "mxnet", gpu=TITAN_XP, batch_size=64).rank()
        assert titan.pruned < p4000.pruned


class TestConfirmation:
    def test_confirmation_attaches_a_seeded_verdict(self):
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        result = tuner.confirm(tuner.rank(), runner=_runner(), samples=30)
        assert result.confirmation is not None
        assert result.confirmation["verdict"] == "improvement"
        assert result.confirmation["speedup"] > 1.5
        assert result.confirmation["samples_per_side"] == 30

    def test_confirming_a_winnerless_result_is_a_no_op(self):
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        result = tuner.confirm(tuner.rank(budget=0), runner=_runner())
        assert result.confirmation is None


class TestPersistence:
    def test_tune_persists_and_retunes_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        cold = tuner.tune(cache=cache, runner=_runner(), samples=30)
        assert cold.cached is False
        warm = tuner.tune(cache=cache, runner=_runner(), samples=30)
        assert warm.cached is True
        assert warm.to_doc() == cold.to_doc()

    def test_retune_forces_a_fresh_search(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        tuner.tune(cache=cache, confirm=False)
        fresh = tuner.tune(cache=cache, confirm=False, retune=True)
        assert fresh.cached is False

    def test_from_doc_roundtrips(self):
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        result = tuner.confirm(tuner.rank(), runner=_runner(), samples=30)
        rebuilt = TuneResult.from_doc(result.to_doc())
        assert rebuilt.cached is True
        assert rebuilt.winner == result.winner
        assert rebuilt.to_doc() == result.to_doc()

    def test_tuned_key_moves_with_every_identity_leg(self):
        base = tuned_key("nmt", "tensorflow", 64)
        assert tuned_key("nmt", "tensorflow", 32) != base
        assert tuned_key("nmt", "mxnet", 64) != base
        assert tuned_key("sockeye", "tensorflow", 64) != base
        assert tuned_key("nmt", "tensorflow", 64, gpu=TITAN_XP) != base

    def test_tuned_key_never_collides_with_point_keys(self):
        assert tuned_key("nmt", "tensorflow", 64) != point_key("nmt", "tensorflow", 64)

    def test_load_tuned_misses_cleanly(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert load_tuned(cache, "nmt", "tensorflow", 64) is None

    def test_load_tuned_ignores_non_tuned_documents(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = tuned_key("nmt", "tensorflow", 64)
        cache.store(key, {"oom": False, "metrics": {}}, config={})
        assert load_tuned(cache, "nmt", "tensorflow", 64) is None

    def test_store_tuned_roundtrips_through_load(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        tuner = Autotuner("nmt", "tensorflow", batch_size=64)
        result = tuner.rank()
        store_tuned(cache, result, spec=tuner.spec)
        doc = load_tuned(cache, "nmt", "tensorflow", 64)
        assert doc is not None
        assert doc["winner"]["spec"] == result.winner.spec


class TestAdvisorIntegration:
    @pytest.fixture(scope="class")
    def report(self):
        return AnalysisPipeline("nmt", "tensorflow").run(64)

    def test_advise_cites_the_measured_config_first(self, report, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        Autotuner("nmt", "tensorflow", batch_size=64).tune(
            cache=cache, runner=_runner(), samples=30
        )
        recommendations = advise(report, cache=cache)
        first = recommendations[0]
        assert first.rule == "measured tuned config"
        assert "fused_rnn" in first.advice
        assert "A/B-confirmed" in first.evidence

    def test_advise_falls_back_to_heuristics_without_a_tuned_config(
        self, report, tmp_path
    ):
        cache = ResultCache(str(tmp_path / "empty-cache"))
        recommendations = advise(report, cache=cache)
        rules = [r.rule for r in recommendations]
        assert "measured tuned config" not in rules
        assert rules[0] == "launch-bound recurrence"


class TestCLI:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_tune_searches_and_reports(self, capsys):
        code, out = self.run_cli(
            capsys, "tune", "nmt", "-f", "tensorflow", "-b", "64",
            "--samples", "30", "--seed", "7",
        )
        assert code == 0
        assert "winner: fused_rnn+offload:0.5+fp16" in out
        assert "confirmed:" in out
        assert "improvement" in out

    def test_tune_second_run_is_a_cache_hit(self, capsys):
        argv = ["tune", "nmt", "-f", "tensorflow", "-b", "64", "--no-confirm"]
        assert main(list(argv)) == 0
        capsys.readouterr()
        code, out = self.run_cli(capsys, *argv)
        assert code == 0
        assert "(cached)" in out

    def test_tune_report_file_is_canonical_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "tune.json"
        code, out = self.run_cli(
            capsys, "tune", "nmt", "-f", "tensorflow", "-b", "64",
            "--no-confirm", "--budget", "3", "--no-cache", "--report", str(path),
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["kind"] == "tuned-config"
        assert doc["model"] == "nmt"

    def test_sweep_accepts_transforms(self, capsys):
        code, out = self.run_cli(
            capsys, "sweep", "nmt", "-f", "tensorflow",
            "--transforms", "fused_rnn+fp16",
        )
        assert code == 0
        assert "NMT" in out


class TestTuneBenchSuite:
    @pytest.mark.slow
    def test_tune_suite_winners_all_verify_as_improvements(self):
        from repro.bench.gate import evaluate_gate
        from repro.bench.suites import get_suite, run_suite

        suite = get_suite("tune")
        assert len(suite.cases) == 3
        assert all(case.treatment.startswith("pipeline:") for case in suite.cases)
        results = run_suite(suite, noise=NoiseModel(seed=7), samples=30)
        report = evaluate_gate(suite, results)
        assert report.passed
        assert all(result.verdict == "improvement" for result in results)
