"""Unit tests for interconnect models and cluster topology."""

import pytest

from repro.hardware.cluster import (
    ClusterSpec,
    MachineSpec,
    PAPER_TESTBED,
    parse_configuration,
)
from repro.hardware.devices import TITAN_XP
from repro.hardware.interconnect import (
    ETHERNET_10G,
    ETHERNET_1G,
    INFINIBAND_100G,
    Interconnect,
    PCIE_3_X16,
    get_interconnect,
)


class TestInterconnect:
    def test_transfer_time_is_latency_plus_bandwidth_term(self):
        link = Interconnect("test", bandwidth_gbs=1.0, latency_s=1e-3, efficiency=1.0)
        assert link.transfer_time(1e9) == pytest.approx(1e-3 + 1.0)

    def test_zero_bytes_is_free(self):
        assert PCIE_3_X16.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_3_X16.transfer_time(-1)

    def test_infiniband_much_faster_than_ethernet(self):
        bytes_ = 100e6  # ~ResNet-50 gradients
        assert INFINIBAND_100G.transfer_time(bytes_) < 0.02 * ETHERNET_1G.transfer_time(
            bytes_
        )

    def test_efficiency_discounts_bandwidth(self):
        assert ETHERNET_10G.effective_bandwidth_bytes == pytest.approx(
            1.25e9 * 0.70
        )

    def test_lookup_aliases(self):
        assert get_interconnect("ib") is INFINIBAND_100G
        assert get_interconnect("PCIe") is PCIE_3_X16
        with pytest.raises(KeyError):
            get_interconnect("carrier-pigeon")

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect("bad", bandwidth_gbs=0.0, latency_s=0.0)
        with pytest.raises(ValueError):
            Interconnect("bad", bandwidth_gbs=1.0, latency_s=-1.0)
        with pytest.raises(ValueError):
            Interconnect("bad", bandwidth_gbs=1.0, latency_s=0.0, efficiency=0.0)


class TestClusterSpec:
    def test_paper_testbed_shape(self):
        assert PAPER_TESTBED.machine_count == 16
        assert PAPER_TESTBED.machine.cpu.core_count == 28
        assert PAPER_TESTBED.total_gpus == 64

    def test_parse_configuration(self):
        cluster = parse_configuration("1M4G")
        assert cluster.machine_count == 1
        assert cluster.machine.gpu_count == 4
        assert not cluster.is_distributed

    def test_parse_distributed_with_fabric(self):
        cluster = parse_configuration("2M1G", fabric="infiniband")
        assert cluster.is_distributed
        assert cluster.inter_link is INFINIBAND_100G
        assert cluster.name == "2M1G (InfiniBand 100Gb)"

    def test_parse_with_custom_gpu(self):
        cluster = parse_configuration("1M2G", gpu=TITAN_XP)
        assert cluster.machine.gpu is TITAN_XP

    def test_parse_rejects_garbage(self):
        for bad in ("2M", "MG", "0M1G", "2machines"):
            with pytest.raises(ValueError):
                parse_configuration(bad)

    def test_single_machine_name_has_no_fabric(self):
        assert parse_configuration("1M2G").name == "1M2G"

    def test_machine_gpu_count_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(gpu_count=-1)
        with pytest.raises(ValueError):
            ClusterSpec(machine_count=0)
