"""Mutant self-test for the schedule conformance invariants.

Following ``test_conformance_mutants``: inject one deliberate bug into
the schedule layer, then assert that *exactly* the intended invariant
fires and that the shrinker reduces the counterexample to the minimal
spec.  The clean simulator must fire nothing, including the two new
schedule invariants.

Every runner uses ``jobs=1`` and ``cache=None``: patches are not visible
to pool workers, and a warm cache would mask the injected bug.
"""

from __future__ import annotations

import pytest

import repro.plan.symbolic as plan_symbolic
import repro.schedule.integrator as integrator
from repro.conformance import ConformanceRunner, invariant_registry, shrink
from repro.conformance.generator import simplicity_order
from repro.engine.executor import PointSpec
from repro.models.registry import get_model


def _fresh_runner() -> ConformanceRunner:
    # Built AFTER the patch is applied: the runner memoizes sessions, and
    # the process-wide symbolic trace cache must never carry clean traces
    # into a mutant test.
    plan_symbolic.shared_plan_sets_clear()
    return ConformanceRunner(jobs=1, cache=None, include_grid=False, budget=0)


def _fired_point(spec: PointSpec, gpu: str = "p4000") -> list:
    runner = _fresh_runner()
    evidence = runner._gather_point(spec.model, spec.framework, spec.batch_size, gpu)
    assert evidence is not None
    return sorted(
        inv.name for inv in invariant_registry("point") if inv.check(evidence)
    )


def _patch_segment_accounting(monkeypatch):
    """Bug class: an off-by-one in segment sample accounting — each
    non-final segment's recorded end drifts one sample below the next
    segment's start, so the tiling leaks samples at every boundary."""
    import dataclasses

    orig = integrator.build_segments

    def leaky(schedule, base_batch, total_samples, model=None):
        segments = orig(schedule, base_batch, total_samples, model=model)
        broken = []
        for segment in segments:
            if segment.index < len(segments) - 1:
                segment = dataclasses.replace(
                    segment, end_samples=segment.end_samples - 1.0
                )
            broken.append(segment)
        return tuple(broken)

    monkeypatch.setattr(integrator, "build_segments", leaky)


class TestScheduleInvariantsRegistered:
    def test_both_schedule_invariants_are_point_scope(self):
        names = {inv.name for inv in invariant_registry("point")}
        assert "schedule-sample-conservation" in names
        assert "schedule-fixed-equivalence" in names


class TestScheduleMutants:
    def test_clean_baseline_fires_nothing(self):
        assert _fired_point(PointSpec("resnet-50", "mxnet", 32, "")) == []

    def test_clean_baseline_fires_nothing_on_the_simplest_model(self):
        assert _fired_point(PointSpec("a3c", "mxnet", 8, "")) == []

    def test_models_without_curves_are_exempt(self):
        # deep-speech-2 has no convergence curve, so the schedule
        # invariants must pass vacuously rather than error.
        assert _fired_point(PointSpec("deep-speech-2", "mxnet", 4, "")) == []

    def test_segment_accounting_mutant_fires_exactly_conservation(
        self, monkeypatch
    ):
        _patch_segment_accounting(monkeypatch)
        fired = _fired_point(PointSpec("resnet-50", "mxnet", 32, ""))
        assert fired == ["schedule-sample-conservation"]

    def test_segment_accounting_mutant_fires_on_the_simplest_model_too(
        self, monkeypatch
    ):
        _patch_segment_accounting(monkeypatch)
        fired = _fired_point(PointSpec("a3c", "mxnet", 8, ""))
        assert fired == ["schedule-sample-conservation"]


class TestScheduleShrinker:
    def test_accounting_mutant_shrinks_to_minimal_spec(self, monkeypatch):
        _patch_segment_accounting(monkeypatch)
        runner = _fresh_runner()
        # A deliberately baroque starting point: big model, faulted
        # scenario, the bigger GPU.
        start = PointSpec(
            "inception-v3",
            "tensorflow",
            32,
            "cluster=2M1G:infiniband; steps=10; seed=3; crash=1@5",
        )
        assert runner.violates("schedule-sample-conservation", start, "titan xp")

        minimal, gpu, evals = shrink(
            start,
            "titan xp",
            lambda spec, g: runner.violates(
                "schedule-sample-conservation", spec, g
            ),
        )
        # The bug is global to the integrator, so the search must land on
        # THE simplest configuration: first model in the simplicity order,
        # its first framework, the smallest declared batch, no faults,
        # default GPU.
        simplest = simplicity_order()[0]
        assert minimal.model == simplest == "a3c"
        assert minimal.framework == get_model(simplest).frameworks[0]
        assert minimal.batch_size == min(get_model(simplest).batch_sizes)
        assert minimal.faults == ""
        assert gpu == "p4000"
        assert evals <= 24
        # And the minimal spec still reproduces the violation.
        assert runner.violates("schedule-sample-conservation", minimal, gpu)

    def test_shrink_is_identity_on_clean_simulator(self):
        runner = _fresh_runner()
        spec = PointSpec("a3c", "mxnet", 8, "")
        assert not runner.violates("schedule-sample-conservation", spec, "p4000")
        assert not runner.violates("schedule-fixed-equivalence", spec, "p4000")


class TestConservationMessages:
    """The invariant reports the precise boundary it caught, so a fuzzing
    report names the broken segment rather than just 'conservation'."""

    def test_messages_name_the_probe_and_the_leak(self, monkeypatch):
        _patch_segment_accounting(monkeypatch)
        runner = _fresh_runner()
        evidence = runner._gather_point("resnet-50", "mxnet", 32, "p4000")
        [invariant] = [
            inv
            for inv in invariant_registry("point")
            if inv.name == "schedule-sample-conservation"
        ]
        messages = invariant.check(evidence)
        assert messages
        for message in messages:
            assert message.startswith("schedule ")
