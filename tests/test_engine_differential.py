"""The differential harness: parallel == serial == cached, byte for byte.

A reduced Figs. 4-6 grid (two image panels, an RNN panel, and the A3C
panel — 22 points) is executed four ways:

- serially through the plain ``TBDSuite`` path (the reference),
- through the engine with ``jobs=2`` and a cold cache,
- through the engine with ``jobs=4`` and **no** cache (pure fan-out),
- through the engine serially against the now-warm cache.

Every way must produce identical ``IterationMetrics`` field-by-field,
identical ``SweepSeries`` for all three paper metrics, and byte-identical
exported JSONL artifacts; the warm-cache way must execute zero
``TrainingSession.run_iteration`` calls.
"""

import dataclasses

import pytest

from repro.core.metrics import IterationMetrics
from repro.engine import SweepEngine, grid_for, write_grid_jsonl
from repro.experiments.common import run_sweeps
from repro.training.session import TrainingSession

#: The reduced Figs. 4-6 grid: every panel family, trimmed for test time.
REDUCED_PANELS = (
    ("resnet-50", ("tensorflow", "mxnet")),
    ("nmt", ("tensorflow",)),
    ("a3c", ("mxnet",)),
)

METRICS = ("throughput", "gpu_utilization", "fp32_utilization")


@pytest.fixture(scope="module")
def grid():
    return grid_for(REDUCED_PANELS)


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("engine-cache"))


@pytest.fixture(scope="module")
def serial_series(suite):
    """The reference result: the plain, engine-free serial path."""
    return {
        metric: run_sweeps(metric, suite, panels=REDUCED_PANELS)
        for metric in METRICS
    }


@pytest.fixture(scope="module")
def serial_points(suite):
    """Per-panel reference sweeps through the plain serial path."""
    return {
        (model, framework): suite.sweep(model, framework)
        for model, frameworks in REDUCED_PANELS
        for framework in frameworks
    }


@pytest.fixture(scope="module")
def jobs2_cold(cache_root):
    """jobs=2 against a cold cache; populates ``cache_root`` for the
    warm-cache fixtures below."""
    engine = SweepEngine(jobs=2, cache=cache_root)
    series = {
        metric: run_sweeps(metric, engine=engine, panels=REDUCED_PANELS)
        for metric in METRICS
    }
    return engine, series


@pytest.fixture(scope="module")
def jobs4_uncached(grid):
    """jobs=4 with the cache disabled: pure fan-out, every point computed."""
    engine = SweepEngine(jobs=4, cache=None)
    return engine, engine.run_grid(grid)


class TestParallelEqualsSerial:
    def test_jobs2_matches_serial_for_all_metrics(self, serial_series, jobs2_cold):
        _engine, series = jobs2_cold
        for metric in METRICS:
            assert series[metric] == serial_series[metric]

    def test_jobs2_computed_each_point_exactly_once(self, jobs2_cold, grid):
        engine, _series = jobs2_cold
        # Three metric extractions share one grid: the first run computes
        # every point, the other two hit the cache (plus nothing else).
        assert engine.stats.points_computed == len(grid)
        assert engine.stats.cache_hits == 2 * len(grid)

    def test_jobs4_uncached_matches_serial(self, serial_points, jobs4_uncached, grid):
        _engine, points = jobs4_uncached
        by_panel = {}
        for spec, point in zip(grid, points):
            by_panel.setdefault((spec.model, spec.framework), []).append(point)
        for (model, framework), engine_points in by_panel.items():
            assert engine_points == serial_points[(model, framework)]

    def test_metrics_equal_field_by_field(self, serial_points, grid, jobs4_uncached):
        _engine, points = jobs4_uncached
        reference = serial_points
        cursor = {}
        for spec, point in zip(grid, points):
            panel = reference[(spec.model, spec.framework)]
            expected = panel[cursor.setdefault((spec.model, spec.framework), 0)]
            cursor[(spec.model, spec.framework)] += 1
            assert point.batch_size == expected.batch_size
            assert point.oom == expected.oom
            if expected.oom:
                assert point.metrics is None
                continue
            for metric_field in dataclasses.fields(IterationMetrics):
                assert getattr(point.metrics, metric_field.name) == getattr(
                    expected.metrics, metric_field.name
                ), metric_field.name


class TestWarmCacheEqualsCold:
    def test_warm_run_matches_serial_and_computes_nothing(
        self, serial_series, jobs2_cold, cache_root, monkeypatch
    ):
        _cold_engine, _ = jobs2_cold  # ensure the cache is populated
        calls = []
        original = TrainingSession.run_iteration

        def counting(self, batch_size=None):
            calls.append((self.spec.key, self.framework.key, batch_size))
            return original(self, batch_size)

        monkeypatch.setattr(TrainingSession, "run_iteration", counting)
        warm = SweepEngine(jobs=1, cache=cache_root)
        for metric in METRICS:
            series = run_sweeps(metric, engine=warm, panels=REDUCED_PANELS)
            assert series == serial_series[metric]
        assert calls == [], "warm cache must not execute any training session"
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_misses == 0

    def test_warm_parallel_run_also_computes_nothing(
        self, jobs2_cold, cache_root, grid
    ):
        _cold_engine, _ = jobs2_cold
        warm = SweepEngine(jobs=4, cache=cache_root)
        warm.run_grid(grid)
        assert warm.stats.points_computed == 0
        assert warm.stats.cache_hits == len(grid)


class TestExportsByteIdentical:
    def test_serial_parallel_and_cached_exports_are_identical(
        self, tmp_path, grid, serial_points, jobs4_uncached, jobs2_cold, cache_root
    ):
        _engine, parallel_points = jobs4_uncached
        _cold_engine, _ = jobs2_cold

        flat_serial = []
        for model, frameworks in REDUCED_PANELS:
            for framework in frameworks:
                flat_serial.extend(serial_points[(model, framework)])
        warm_points = SweepEngine(jobs=1, cache=cache_root).run_grid(grid)

        paths = {}
        for label, points in (
            ("serial", flat_serial),
            ("parallel", parallel_points),
            ("cached", warm_points),
        ):
            path = tmp_path / f"{label}.jsonl"
            assert write_grid_jsonl(str(path), grid, points) == len(grid)
            paths[label] = path.read_bytes()

        assert paths["serial"] == paths["parallel"]
        assert paths["serial"] == paths["cached"]
        assert paths["serial"].count(b"\n") == len(grid)

    def test_export_rejects_mismatched_grid(self, tmp_path, grid, jobs4_uncached):
        _engine, points = jobs4_uncached
        with pytest.raises(ValueError, match="length mismatch"):
            write_grid_jsonl(str(tmp_path / "bad.jsonl"), grid[:-1], points)


class TestEngineSuiteParity:
    # These tests use per-test cache dirs (not the module-scoped, already
    # warm ``cache_root``) so each one proves parity from a cold cache and
    # stays independent of collection order.
    def test_suite_sweep_with_engine_delegates(self, suite, tmp_path):
        engine = suite.engine(jobs=2, cache=str(tmp_path / "cache"))
        via_suite = suite.sweep("resnet-50", "tensorflow", engine=engine)
        plain = suite.sweep("resnet-50", "tensorflow")
        assert via_suite == plain

    def test_suite_run_with_engine_matches_plain_run(self, suite, tmp_path):
        engine = suite.engine(cache=str(tmp_path / "cache"))
        assert suite.run("resnet-50", "mxnet", 16, engine=engine) == suite.run(
            "resnet-50", "mxnet", 16
        )

    def test_engine_rejects_unknown_implementation(self, suite):
        engine = suite.engine()
        with pytest.raises(ValueError, match="no cntk implementation"):
            engine.run("nmt", "cntk")
