"""Unit tests for the kernel catalog."""

import pytest

from repro.kernels import attention, conv, elementwise, gemm, misc, norm, rnn
from repro.kernels.base import Kernel, KernelCategory, fp32_bytes
from repro.kernels.conv import ConvShape


class TestKernelRecord:
    def test_arithmetic_intensity(self):
        kernel = Kernel("k", KernelCategory.GEMM, flops=100.0, bytes_accessed=50.0)
        assert kernel.arithmetic_intensity == 2.0

    def test_intensity_with_zero_bytes(self):
        kernel = Kernel("k", KernelCategory.GEMM, flops=100.0, bytes_accessed=0.0)
        assert kernel.arithmetic_intensity == float("inf")

    def test_scaled(self):
        kernel = Kernel("k", KernelCategory.GEMM, flops=100.0, bytes_accessed=50.0)
        scaled = kernel.scaled(2.0)
        assert scaled.flops == 200.0
        assert scaled.bytes_accessed == 100.0
        assert kernel.flops == 100.0  # original untouched

    def test_scaled_rejects_nonpositive(self):
        kernel = Kernel("k", KernelCategory.GEMM, flops=1.0, bytes_accessed=1.0)
        with pytest.raises(ValueError):
            kernel.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Kernel("k", KernelCategory.GEMM, flops=-1.0, bytes_accessed=0.0)
        with pytest.raises(ValueError):
            Kernel("k", KernelCategory.GEMM, flops=0.0, bytes_accessed=-1.0)
        with pytest.raises(ValueError):
            Kernel("k", KernelCategory.GEMM, 0.0, 0.0, max_compute_efficiency=1.5)

    def test_fp32_bytes(self):
        assert fp32_bytes(10) == 40


class TestGemm:
    def test_flop_count(self):
        kernel = gemm.gemm(8, 16, 32)
        assert kernel.flops == 2 * 8 * 16 * 32

    def test_traffic_counts_three_operands(self):
        kernel = gemm.gemm(8, 16, 32)
        assert kernel.bytes_accessed == fp32_bytes(8 * 32 + 32 * 16 + 8 * 16)

    def test_narrow_output_lowers_efficiency_ceiling(self):
        narrow = gemm.gemm(4, 4096, 1024)
        square = gemm.gemm(2048, 2048, 1024)
        assert narrow.max_compute_efficiency < 0.2 * square.max_compute_efficiency

    def test_batched_gemm_scales_single(self):
        single = gemm.gemm(16, 16, 16, name="x")
        batched = gemm.batched_gemm(10, 16, 16, 16, name="x")
        assert batched.flops == pytest.approx(10 * single.flops)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gemm.gemm(0, 1, 1)
        with pytest.raises(ValueError):
            gemm.batched_gemm(0, 1, 1, 1)


class TestConv:
    def test_output_geometry(self):
        shape = ConvShape(2, 3, 8, 32, 32, 3, 3, stride=1, padding=1)
        assert (shape.out_h, shape.out_w) == (32, 32)
        strided = ConvShape(2, 3, 8, 32, 32, 3, 3, stride=2, padding=1)
        assert (strided.out_h, strided.out_w) == (16, 16)

    def test_asymmetric_padding(self):
        shape = ConvShape(1, 4, 4, 17, 17, 1, 7, padding_h=0, padding_w=3)
        assert (shape.out_h, shape.out_w) == (17, 17)

    def test_asymmetric_stride(self):
        shape = ConvShape(1, 4, 4, 16, 16, 3, 3, padding=1, stride_h=2, stride_w=1)
        assert (shape.out_h, shape.out_w) == (8, 16)

    def test_macs(self):
        shape = ConvShape(1, 2, 4, 8, 8, 3, 3, padding=1)
        assert shape.macs == 4 * 8 * 8 * 2 * 9

    def test_forward_flops_are_twice_macs(self):
        shape = ConvShape(1, 2, 4, 8, 8, 3, 3, padding=1)
        assert conv.conv2d_forward(shape).flops == 2 * shape.macs

    def test_algorithm_selection(self):
        three = ConvShape(1, 4, 4, 8, 8, 3, 3, padding=1)
        assert "winograd" in conv.conv2d_forward(three).name.lower()
        one = ConvShape(1, 4, 4, 8, 8, 1, 1)
        assert "implicit" in conv.conv2d_forward(one).name

    def test_backward_filter_slower_ceiling(self):
        shape = ConvShape(1, 4, 4, 8, 8, 3, 3, padding=1)
        fw = conv.conv2d_forward(shape)
        wgrad = conv.conv2d_backward_filter(shape)
        assert wgrad.max_compute_efficiency < fw.max_compute_efficiency

    def test_workspace_positive_and_algorithm_dependent(self):
        shape = ConvShape(8, 64, 64, 28, 28, 3, 3, padding=1)
        winograd = conv.conv_workspace_bytes(shape, "winograd")
        explicit = conv.conv_workspace_bytes(shape, "gemm")
        implicit = conv.conv_workspace_bytes(shape, "implicit_gemm")
        assert explicit > winograd > implicit > 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ConvShape(0, 1, 1, 8, 8, 3, 3)
        with pytest.raises(ValueError):
            ConvShape(1, 1, 1, 2, 2, 5, 5)  # empty output

    def test_unknown_algorithm_rejected(self):
        shape = ConvShape(1, 1, 1, 8, 8, 3, 3, padding=1)
        with pytest.raises(ValueError):
            conv.conv2d_forward(shape, algorithm="fft9000")


class TestNormAndElementwise:
    def test_bn_names_match_tables_5_and_6(self):
        assert norm.batchnorm_forward(100, 4).name == (
            "cudnn::detail::bn_fw_tr_1C11_kernel_new"
        )
        assert norm.batchnorm_backward(100, 4).name == (
            "cudnn::detail::bn_bw_1C11_kernel_new"
        )

    def test_bn_is_bandwidth_heavy(self):
        kernel = norm.batchnorm_forward(1_000_000, 64)
        assert kernel.arithmetic_intensity < 1.0

    def test_bn_backward_costs_more(self):
        fw = norm.batchnorm_forward(1000, 4)
        bw = norm.batchnorm_backward(1000, 4)
        assert bw.flops > fw.flops
        assert bw.bytes_accessed > fw.bytes_accessed

    def test_layernorm(self):
        assert norm.layernorm_forward(100).flops > 0
        assert norm.layernorm_backward(100).flops > norm.layernorm_forward(100).flops

    def test_elementwise_traffic(self):
        kernel = elementwise.elementwise(100, reads=2, writes=1)
        assert kernel.bytes_accessed == fp32_bytes(300)

    def test_activation_kinds(self):
        relu = elementwise.activation_forward(100, "relu")
        tanh = elementwise.activation_forward(100, "tanh")
        assert tanh.flops > relu.flops

    def test_pooling(self):
        fw = elementwise.pooling_forward(400, 100)
        bw = elementwise.pooling_backward(400, 100)
        assert bw.bytes_accessed > fw.bytes_accessed

    def test_softmax(self):
        kernel = elementwise.softmax(10, 100)
        assert kernel.flops == pytest.approx(5 * 1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            elementwise.elementwise(0)
        with pytest.raises(ValueError):
            norm.batchnorm_forward(0, 1)
        with pytest.raises(ValueError):
            elementwise.softmax(0, 4)


class TestRNNKernels:
    def test_lstm_pointwise_scales_with_batch_and_hidden(self):
        small = rnn.lstm_cell_pointwise(4, 256)
        large = rnn.lstm_cell_pointwise(8, 512)
        assert large.flops == pytest.approx(4 * small.flops)

    def test_backward_costs_more(self):
        fw = rnn.lstm_cell_pointwise(4, 256)
        bw = rnn.lstm_cell_pointwise(4, 256, backward=True)
        assert bw.flops > fw.flops

    def test_cell_cost_ordering(self):
        lstm = rnn.lstm_cell_pointwise(4, 256)
        gru = rnn.gru_cell_pointwise(4, 256)
        vanilla = rnn.vanilla_rnn_pointwise(4, 256)
        assert lstm.flops > gru.flops > vanilla.flops

    def test_validation(self):
        with pytest.raises(ValueError):
            rnn.lstm_cell_pointwise(0, 1)


class TestAttentionAndMisc:
    def test_attention_scores_flops(self):
        kernel = attention.attention_scores(16, 25, 25, 64)
        assert kernel.flops == pytest.approx(16 * 2 * 25 * 25 * 64)

    def test_attention_backward_doubles(self):
        fw = attention.attention_scores(16, 25, 25, 64)
        bw = attention.attention_scores(16, 25, 25, 64, backward=True)
        assert bw.flops == pytest.approx(2 * fw.flops)

    def test_embedding_scatter_is_inefficient(self):
        kernel = misc.embedding_lookup(100, 64)
        assert kernel.max_memory_efficiency < 0.5

    def test_sgd_momentum_traffic(self):
        with_momentum = misc.sgd_update(1000, momentum=True)
        without = misc.sgd_update(1000, momentum=False)
        assert with_momentum.bytes_accessed > without.bytes_accessed

    def test_adam_heavier_than_sgd(self):
        assert misc.adam_update(1000).bytes_accessed > misc.sgd_update(1000).bytes_accessed

    def test_ctc_low_parallelism(self):
        kernel = misc.ctc_loss(4, 600, 180, 29)
        assert kernel.max_compute_efficiency <= 0.10

    def test_memcpy_models_pcie(self):
        kernel = misc.memcpy_h2d(1e6)
        assert kernel.flops == 0.0
        assert kernel.category is KernelCategory.MEMCPY
        assert kernel.bytes_accessed > 1e6  # scaled to express PCIe rate

    def test_memcpy_directions(self):
        assert "HtoD" in misc.memcpy_h2d(10).name
        assert "DtoH" in misc.memcpy_d2h(10).name
