"""Property and metamorphic tests for the schedule integrator.

Seeded random draws over (model, base batch, schedule) check the
invariants every consumer leans on:

- **monotonicity** — growth schedules never shrink the batch;
- **conservation** — segments tile ``[0, total_samples]`` exactly, with
  contiguous boundaries and span-equal sample accounting;
- **affine invariance** — plateau triggers see only gap *fractions*, so
  rescaling the curve's metric axis never moves a boundary (metamorphic);
- **closed form** — arbitrarily deep targets (10^12+ samples) integrate
  in bounded work, and ``time_to_metric``'s legacy path is bit-identical
  to the ``schedule="fixed"`` spelling.
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.schedule.integrator import (
    MAX_SEGMENTS,
    Segment,
    build_segments,
    integrate_schedule,
)
from repro.schedule.spec import (
    GeometricSchedule,
    GnsSchedule,
    PlateauSchedule,
    parse_schedule_spec,
)
from repro.training.convergence import FIG2_MODELS, time_to_metric

REL_TOL = 1e-9

_MODELS = tuple(sorted(FIG2_MODELS))


def _random_adaptive(rng: random.Random, base_batch: int):
    ceiling = base_batch * rng.choice((1, 2, 4, 8, 16))
    kind = rng.choice(("geometric", "plateau", "gns"))
    if kind == "geometric":
        return GeometricSchedule(
            factor=rng.choice((1.0, 1.5, 2.0, 3.0)),
            every=rng.randint(1, 200),
            ceiling=ceiling,
        )
    if kind == "plateau":
        return PlateauSchedule(
            factor=rng.choice((1.5, 2.0, 4.0)),
            patience=rng.randint(1, 200),
            ceiling=ceiling,
        )
    return GnsSchedule(ceiling=ceiling, every=rng.randint(1, 200))


def _assert_conserves(segments, total_samples: float) -> None:
    assert segments[0].start_samples == 0.0
    for before, after in zip(segments, segments[1:]):
        assert after.start_samples == before.end_samples
        assert after.index == before.index + 1
    assert segments[-1].end_samples == float(total_samples)
    tiled = math.fsum(segment.samples for segment in segments)
    assert abs(tiled - total_samples) <= REL_TOL * max(total_samples, 1.0)


class TestConservationProperty:
    def test_random_integrations_tile_exactly(self):
        rng = random.Random(1234)
        for _ in range(150):
            model = rng.choice(_MODELS)
            base = rng.choice((4, 8, 16, 32, 64))
            schedule = _random_adaptive(rng, base)
            integration = integrate_schedule(model, schedule, base)
            assert len(integration.segments) <= MAX_SEGMENTS
            _assert_conserves(integration.segments, integration.total_samples)

    def test_fixed_and_none_produce_the_single_legacy_segment(self):
        for schedule in (None, parse_schedule_spec("fixed")):
            segments = build_segments(schedule, 32, 1e6)
            assert segments == (Segment(0, 32, 0.0, 1e6),)

    def test_total_steps_sums_per_segment_steps(self):
        integration = integrate_schedule("resnet-50", "gns:ceiling=256", 32)
        assert integration.total_steps == pytest.approx(
            math.fsum(s.samples / s.batch_size for s in integration.segments)
        )


class TestMonotonicityProperty:
    def test_growth_schedules_never_shrink_the_batch(self):
        rng = random.Random(4321)
        for _ in range(150):
            model = rng.choice(_MODELS)
            base = rng.choice((4, 8, 16, 32, 64))
            schedule = _random_adaptive(rng, base)
            integration = integrate_schedule(model, schedule, base)
            batches = [s.batch_size for s in integration.segments]
            assert batches[0] == base
            for before, after in zip(batches, batches[1:]):
                assert after >= before
            assert batches[-1] <= max(schedule.ceiling, base)

    def test_ceiling_at_or_below_base_freezes_the_batch(self):
        for spec in ("geometric:ceiling=32", "gns:ceiling=32", "gns:ceiling=8"):
            integration = integrate_schedule("resnet-50", spec, 32)
            assert [s.batch_size for s in integration.segments] == [32]

    def test_factor_one_never_grows(self):
        integration = integrate_schedule(
            "resnet-50", "geometric:factor=1,ceiling=1024", 32
        )
        assert [s.batch_size for s in integration.segments] == [32]

    def test_distinct_batches_in_first_use_order(self):
        integration = integrate_schedule("resnet-50", "gns:ceiling=256", 32)
        batches = integration.batch_sizes
        assert batches == tuple(sorted(set(batches)))
        assert batches[0] == 32
        assert integration.final_batch == batches[-1]


class TestPlateauAffineInvariance:
    """Metamorphic relation: the plateau trigger sees only gap fractions,
    so an affine remap ``metric -> a*metric + b`` of the curve's axis must
    reproduce the exact same segment boundaries."""

    @pytest.mark.parametrize("scale,shift", [(100.0, 0.0), (0.01, -5.0), (3.0, 40.0)])
    def test_rescaled_curve_keeps_boundaries(self, scale, shift):
        rng = random.Random(777)
        for _ in range(40):
            model_key = rng.choice(_MODELS)
            base = rng.choice((8, 16, 32))
            schedule = PlateauSchedule(
                factor=2.0, patience=rng.randint(5, 100), ceiling=base * 8
            )
            curve = FIG2_MODELS[model_key]
            rescaled = dataclasses.replace(
                curve,
                initial=scale * curve.initial + shift,
                final=scale * curve.final + shift,
            )
            total = curve.samples_to_fraction(0.95)
            original = build_segments(schedule, base, total, model=curve)
            remapped = build_segments(schedule, base, total, model=rescaled)
            assert remapped == original

    def test_trigger_fires_at_the_same_fraction_not_value(self):
        # Sanity leg of the metamorphic test: the rescaled curve reports
        # different metric *values* but identical gap fractions.
        curve = FIG2_MODELS["resnet-50"]
        rescaled = dataclasses.replace(
            curve, initial=curve.initial / 100.0, final=curve.final / 100.0
        )
        for samples in (0.0, 1e5, 5e6, 9e8):
            assert rescaled.value_at(samples) != curve.value_at(samples) or samples == 0
            assert rescaled.fraction_at(samples) == pytest.approx(
                curve.fraction_at(samples), rel=1e-12
            )


class TestBuildSegmentsValidation:
    def test_adaptive_without_a_model_is_an_error(self):
        with pytest.raises(ValueError, match="convergence curve"):
            build_segments(GnsSchedule(ceiling=64), 32, 1e6)

    def test_bad_base_batch_and_negative_totals_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            build_segments(None, 0, 1e6)
        with pytest.raises(ValueError, match="cannot be negative"):
            build_segments(None, 32, -1.0)

    def test_unknown_model_names_the_known_curves(self):
        with pytest.raises(KeyError, match="deep-speech-2"):
            integrate_schedule("deep-speech-2", "gns:ceiling=64", 16)

    def test_segment_rejects_inverted_span(self):
        with pytest.raises(ValueError, match="end before it starts"):
            Segment(0, 32, 10.0, 5.0)


class TestTimeToMetricEdgeCases:
    def test_fixed_spelling_is_bit_identical_to_legacy(self):
        curve = FIG2_MODELS["resnet-50"]
        target = curve.initial + 0.95 * (curve.final - curve.initial)
        legacy = time_to_metric("resnet-50", 1000.0, target)
        for spelling in ("fixed", "", None):
            assert (
                time_to_metric("resnet-50", 1000.0, target, schedule=spelling)
                == legacy
            )

    def test_adaptive_with_constant_throughput_matches_direct_integration(self):
        curve = FIG2_MODELS["resnet-50"]
        target = curve.initial + 0.9 * (curve.final - curve.initial)
        via_api = time_to_metric(
            "resnet-50", 500.0, target, schedule="gns:ceiling=128", base_batch=32
        )
        integration = integrate_schedule(
            "resnet-50", "gns:ceiling=128", 32, target=target
        )
        assert via_api == pytest.approx(integration.total_samples / 500.0)

    def test_batch_aware_throughput_prices_each_segment(self):
        curve = FIG2_MODELS["resnet-50"]
        target = curve.initial + 0.9 * (curve.final - curve.initial)
        flat = time_to_metric(
            "resnet-50", 500.0, target, schedule="gns:ceiling=128", base_batch=32
        )
        faster_big_batches = time_to_metric(
            "resnet-50",
            500.0,
            target,
            schedule="gns:ceiling=128",
            base_batch=32,
            throughput_for_batch=lambda batch: 500.0 * (batch / 32.0),
        )
        assert faster_big_batches < flat

    def test_unreachable_target_raises_for_both_paths(self):
        curve = FIG2_MODELS["resnet-50"]
        beyond = curve.final + 1.0
        with pytest.raises(ValueError, match="outside achievable range"):
            time_to_metric("resnet-50", 1000.0, beyond)
        with pytest.raises(ValueError, match="outside achievable range"):
            time_to_metric(
                "resnet-50", 1000.0, beyond, schedule="gns:ceiling=64"
            )

    def test_asymptote_target_raises_in_closed_form(self):
        # The adaptive path sees "unreachable" analytically — no bisection
        # blow-up, the curve inverse itself rejects the asymptote.
        with pytest.raises(ValueError, match="asymptote"):
            time_to_metric(
                "resnet-50",
                1000.0,
                FIG2_MODELS["resnet-50"].final,
                schedule="gns:ceiling=64",
            )

    def test_non_positive_throughput_rejected(self):
        curve = FIG2_MODELS["resnet-50"]
        target = curve.initial + 0.5 * (curve.final - curve.initial)
        with pytest.raises(ValueError, match="positive"):
            time_to_metric(
                "resnet-50", 0.0, target, schedule="gns:ceiling=64"
            )

    def test_zero_length_run_is_one_zero_segment_priced_at_zero(self):
        segments = build_segments(
            GnsSchedule(ceiling=64), 32, 0.0, model=FIG2_MODELS["resnet-50"]
        )
        assert len(segments) == 1
        assert segments[0].samples == 0.0
        assert segments[0].steps == 0.0
        integration = integrate_schedule(
            "resnet-50", "gns:ceiling=64", 32, target=FIG2_MODELS["resnet-50"].initial
        )
        assert integration.total_samples == 0.0
        assert integration.time_with(lambda batch: 1000.0) == 0.0

    def test_huge_sample_counts_resolve_in_closed_form(self):
        # A target 1e-9 shy of the asymptote needs ~10^13 samples; the
        # integration must stay bounded (segments capped, no stepping).
        curve = FIG2_MODELS["resnet-50"]
        integration = integrate_schedule(
            "resnet-50",
            "gns:ceiling=1024,every=1",
            4,
            target_fraction=1.0 - 1e-9,
        )
        assert integration.total_samples > 1e12
        assert len(integration.segments) <= MAX_SEGMENTS
        _assert_conserves(integration.segments, integration.total_samples)
        assert math.isfinite(integration.total_steps)

    def test_bad_target_fraction_rejected(self):
        with pytest.raises(ValueError, match="target fraction"):
            integrate_schedule("resnet-50", "gns:ceiling=64", 32, target_fraction=1.0)
