"""Unit tests for serve admission control and the fair scheduler.

Covers the typed rejection taxonomy (every refusal names its cause), the
smooth weighted-round-robin pick order, per-tenant FIFO rotation inside
a class, and the scheduler's bookkeeping counters.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionError,
    FairScheduler,
    QueuedJob,
    QueueFullError,
    ServerClosedError,
    TenantQuotaError,
    UnknownPriorityError,
)
from repro.serve.jobs import DEFAULT_PRIORITY, PRIORITIES, priority_weight


def _job(job_id, tenant="t0", priority=DEFAULT_PRIORITY):
    return QueuedJob(job_id=job_id, tenant=tenant, priority=priority)


class TestAdmissionConfig:
    def test_defaults_are_sane(self):
        config = AdmissionConfig()
        assert config.max_depth >= config.tenant_depth > 0
        assert set(config.classes) == set(PRIORITIES)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_depth=4, tenant_depth=8)
        with pytest.raises(ValueError):
            AdmissionConfig(weights=(("interactive", 0),))

    def test_weight_lookup_matches_jobs_module(self):
        config = AdmissionConfig()
        for name in PRIORITIES:
            assert config.weight(name) == priority_weight(name)


class TestTypedRejections:
    def test_unknown_priority(self):
        scheduler = FairScheduler()
        with pytest.raises(UnknownPriorityError) as excinfo:
            scheduler.admit(_job("j0", priority="platinum"))
        assert excinfo.value.code == "unknown-priority"

    def test_queue_full(self):
        scheduler = FairScheduler(AdmissionConfig(max_depth=2, tenant_depth=2))
        scheduler.admit(_job("j0", tenant="a"))
        scheduler.admit(_job("j1", tenant="b"))
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.admit(_job("j2", tenant="c"))
        assert excinfo.value.code == "queue-full"
        assert len(scheduler) == 2

    def test_tenant_quota(self):
        scheduler = FairScheduler(AdmissionConfig(max_depth=8, tenant_depth=1))
        scheduler.admit(_job("j0", tenant="a"))
        with pytest.raises(TenantQuotaError) as excinfo:
            scheduler.admit(_job("j1", tenant="a"))
        assert excinfo.value.code == "tenant-quota"
        # Another tenant is unaffected by a's quota.
        scheduler.admit(_job("j2", tenant="b"))

    def test_every_code_is_an_admission_error(self):
        for exc in (
            QueueFullError,
            TenantQuotaError,
            UnknownPriorityError,
            ServerClosedError,
        ):
            assert issubclass(exc, AdmissionError)

    def test_rejection_counters(self):
        scheduler = FairScheduler(AdmissionConfig(max_depth=2, tenant_depth=1))
        scheduler.admit(_job("j0", tenant="a"))
        with pytest.raises(TenantQuotaError):
            scheduler.admit(_job("j1", tenant="a"))
        scheduler.admit(_job("j2", tenant="b"))
        with pytest.raises(QueueFullError):
            scheduler.admit(_job("j3", tenant="c"))
        assert scheduler.rejected["tenant-quota"] == 1
        assert scheduler.rejected["queue-full"] == 1


class TestFairScheduling:
    def test_empty_pick_returns_none(self):
        assert FairScheduler().pick() is None

    def test_single_class_is_fifo(self):
        scheduler = FairScheduler()
        for i in range(4):
            scheduler.admit(_job(f"j{i}", tenant="a"))
        order = [scheduler.pick().job_id for _ in range(4)]
        assert order == ["j0", "j1", "j2", "j3"]

    def test_weighted_share_over_a_window(self):
        """With all classes backlogged, picks track the 4:2:1 weights."""
        config = AdmissionConfig(max_depth=300, tenant_depth=300)
        scheduler = FairScheduler(config)
        for i in range(70):
            scheduler.admit(_job(f"i{i}", tenant="a", priority="interactive"))
            scheduler.admit(_job(f"s{i}", tenant="a", priority="standard"))
            scheduler.admit(_job(f"b{i}", tenant="a", priority="batch"))
        window = [scheduler.pick().priority for _ in range(70)]
        counts = {name: window.count(name) for name in PRIORITIES}
        assert counts["interactive"] == 40
        assert counts["standard"] == 20
        assert counts["batch"] == 10

    def test_batch_is_never_starved(self):
        """Smooth WRR guarantees the lowest class a slot every cycle."""
        scheduler = FairScheduler(
            AdmissionConfig(max_depth=100, tenant_depth=100)
        )
        for i in range(20):
            scheduler.admit(_job(f"i{i}", tenant="a", priority="interactive"))
        scheduler.admit(_job("b0", tenant="a", priority="batch"))
        first_batch = next(
            idx
            for idx in range(21)
            if scheduler.pick().priority == "batch"
        )
        assert first_batch <= 5

    def test_tenant_rotation_within_class(self):
        scheduler = FairScheduler()
        scheduler.admit(_job("a0", tenant="a"))
        scheduler.admit(_job("a1", tenant="a"))
        scheduler.admit(_job("b0", tenant="b"))
        scheduler.admit(_job("b1", tenant="b"))
        order = [scheduler.pick().job_id for _ in range(4)]
        # Tenants alternate rather than draining a's backlog first.
        assert order == ["a0", "b0", "a1", "b1"]

    def test_depth_bookkeeping(self):
        scheduler = FairScheduler()
        scheduler.admit(_job("j0", tenant="a", priority="interactive"))
        scheduler.admit(_job("j1", tenant="a", priority="batch"))
        scheduler.admit(_job("j2", tenant="b", priority="batch"))
        assert len(scheduler) == 3
        assert scheduler.depth_of("a") == 2
        assert scheduler.depth_of("b") == 1
        assert scheduler.class_depths() == {
            "interactive": 1,
            "standard": 0,
            "batch": 2,
        }
        scheduler.pick()
        assert len(scheduler) == 2

    def test_snapshot_shape(self):
        scheduler = FairScheduler()
        scheduler.admit(_job("j0"))
        snap = scheduler.snapshot()
        assert snap["depth"] == 1
        assert set(snap["classes"]) == set(PRIORITIES)
        assert all(count == 0 for count in snap["rejected"].values())
        assert snap["admitted_total"] == 1

    def test_drained_class_forfeits_credit(self):
        """A class that empties must not bank credit while idle: after a
        drain, a refilled low class cannot immediately dominate."""
        scheduler = FairScheduler(
            AdmissionConfig(max_depth=100, tenant_depth=100)
        )
        scheduler.admit(_job("b0", tenant="a", priority="batch"))
        assert scheduler.pick().job_id == "b0"  # drains batch
        # A long interactive burst while batch sits empty...
        for i in range(10):
            scheduler.admit(_job(f"i{i}", tenant="a", priority="interactive"))
        for _ in range(5):
            scheduler.pick()
        # ...then batch refills; it gets its fair slot soon, but not an
        # immediate burst of back-to-back picks.
        scheduler.admit(_job("b1", tenant="a", priority="batch"))
        scheduler.admit(_job("b2", tenant="a", priority="batch"))
        window = [scheduler.pick().priority for _ in range(5)]
        assert window.count("batch") <= 2
