"""Unit tests for the sharded result cache's eviction and accounting.

Three families:

- **LRU order**: under interleaved multi-tenant access patterns the
  entry evicted is always the least-recently-*used* (loads refresh
  recency, not just stores);
- **byte accounting**: the tracked ledger equals what is actually on
  disk — exactly — including under concurrent inserts from many
  threads, and the budget is never exceeded at any observable moment;
- **mutant detection**: if ``_entry_bytes`` under-reports (the classic
  accounting bug that silently blows a cache budget), the
  ``serve-cache-budget`` conformance invariant fires.
"""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.conformance.invariants import ServeEvidence, get_invariant
from repro.serve.shardcache import ShardedResultCache


def _key(tag) -> str:
    return hashlib.sha256(f"cache-test-{tag}".encode()).hexdigest()


def _payload(tag, pad=64) -> dict:
    return {"tag": str(tag), "pad": "x" * pad}


def _single_shard(tmp_path, byte_budget=None, name="cache"):
    """shards=1 gives deterministic eviction order for LRU assertions."""
    return ShardedResultCache(
        str(tmp_path / name), shards=1, byte_budget=byte_budget
    )


class TestConstruction:
    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path / "a"), shards=0)
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path / "b"), shards=4, byte_budget=3)

    def test_shard_routing_is_stable_and_total(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path / "c"), shards=4)
        keys = [_key(i) for i in range(64)]
        shards = {cache.shard_for(key) for key in keys}
        assert shards <= set(range(4))
        assert len(shards) > 1  # sha256 prefixes spread across shards
        for key in keys:
            assert cache.shard_for(key) == cache.shard_for(key)


class TestLRUOrder:
    def test_store_only_evicts_oldest_insert(self, tmp_path):
        entry = _entry_size(tmp_path)
        cache = _single_shard(tmp_path, byte_budget=entry * 3)
        for i in range(3):
            cache.store(_key(i), _payload(i))
        assert cache.entry_count() == 3
        cache.store(_key(3), _payload(3))
        assert cache.load(_key(0)) is None  # oldest fell off
        assert cache.load(_key(3)) is not None

    def test_load_refreshes_recency(self, tmp_path):
        entry = _entry_size(tmp_path)
        cache = _single_shard(tmp_path, byte_budget=entry * 3)
        for i in range(3):
            cache.store(_key(i), _payload(i))
        assert cache.load(_key(0)) is not None  # 0 becomes most recent
        cache.store(_key(3), _payload(3))
        # 1 (not 0) is now the least recently used and must be the victim.
        assert cache.load(_key(1)) is None
        assert cache.load(_key(0)) is not None
        assert cache.evictions == 1

    def test_interleaved_tenant_access_protects_hot_set(self, tmp_path):
        """Tenant A keeps touching its entries while tenant B churns:
        only B's cold entries are ever evicted."""
        entry = _entry_size(tmp_path)
        cache = _single_shard(tmp_path, byte_budget=entry * 4)
        hot = [_key(("a", i)) for i in range(2)]
        for i, key in enumerate(hot):
            cache.store(key, _payload(("a", i)))
        for i in range(12):
            cache.store(_key(("b", i)), _payload(("b", i)))
            for key in hot:  # tenant A touches its working set
                assert cache.load(key) is not None, f"hot key evicted (i={i})"
        # Every victim was one of B's (payload sizes vary by a few
        # bytes with the tag text, so the count is a floor, not exact).
        assert cache.evictions >= 10

    def test_restore_reinsert_updates_in_place(self, tmp_path):
        entry = _entry_size(tmp_path)
        cache = _single_shard(tmp_path, byte_budget=entry * 8)
        cache.store(_key(0), _payload(0))
        before = cache.total_bytes()
        cache.store(_key(0), _payload(0, pad=256))
        assert cache.entry_count() == 1
        assert cache.total_bytes() > before
        assert cache.total_bytes() == cache.disk_bytes()


class TestByteAccounting:
    def test_ledger_matches_disk_exactly(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path / "acct"), shards=4)
        for i in range(32):
            cache.store(_key(i), _payload(i, pad=i * 7))
        assert cache.total_bytes() == cache.disk_bytes()
        with pytest.warns(Warning):  # discard reports the damaged entry
            cache.discard(_key(3), reason="test")
        assert cache.total_bytes() == cache.disk_bytes()

    def test_budget_never_exceeded(self, tmp_path):
        budget = 4096
        cache = ShardedResultCache(
            str(tmp_path / "budget"), shards=2, byte_budget=budget
        )
        for i in range(64):
            cache.store(_key(i), _payload(i, pad=(i % 13) * 31))
            assert cache.total_bytes() <= budget
            assert cache.peak_bytes <= budget
        assert cache.evictions > 0
        assert cache.total_bytes() == cache.disk_bytes()

    def test_concurrent_inserts_keep_exact_accounting(self, tmp_path):
        cache = ShardedResultCache(
            str(tmp_path / "conc"), shards=4, byte_budget=16384
        )
        errors = []

        def worker(worker_id):
            try:
                for i in range(40):
                    key = _key((worker_id, i))
                    cache.store(key, _payload((worker_id, i), pad=i * 5))
                    cache.load(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.total_bytes() == cache.disk_bytes()
        assert cache.peak_bytes <= 16384
        stats = cache.stats()
        assert stats["entries"] == cache.entry_count()

    def test_stats_document(self, tmp_path):
        cache = ShardedResultCache(
            str(tmp_path / "stats"), shards=2, byte_budget=8192
        )
        cache.store(_key("s"), _payload("s"))
        cache.load(_key("s"))
        cache.load(_key("missing"))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["shards"] == 2
        assert stats["byte_budget"] == 8192
        assert stats["bytes"] == cache.disk_bytes()


class TestAccountingMutant:
    def test_undercounting_mutant_trips_conformance_invariant(
        self, tmp_path, monkeypatch
    ):
        """Patch ``_entry_bytes`` to report half the real size: the
        budget silently overflows on disk, and the serve-cache-budget
        invariant must catch the books/disk divergence."""
        import os

        monkeypatch.setattr(
            ShardedResultCache,
            "_entry_bytes",
            staticmethod(lambda path: os.path.getsize(path) // 2),
        )
        budget = 2048
        cache = ShardedResultCache(
            str(tmp_path / "mutant"), shards=1, byte_budget=budget
        )
        for i in range(48):
            cache.store(_key(("m", i)), _payload(("m", i), pad=48))
        evidence = ServeEvidence(
            loadgen={},
            byte_budget=budget,
            peak_bytes=max(cache.peak_bytes, cache.disk_bytes()),
            tracked_bytes=cache.total_bytes(),
            disk_bytes=cache.disk_bytes(),
        )
        messages = get_invariant("serve-cache-budget").check(evidence)
        assert messages, "accounting mutant escaped the invariant"

    def test_honest_accounting_passes_invariant(self, tmp_path):
        budget = 2048
        cache = ShardedResultCache(
            str(tmp_path / "honest"), shards=1, byte_budget=budget
        )
        for i in range(48):
            cache.store(_key(("h", i)), _payload(("h", i), pad=48))
        evidence = ServeEvidence(
            loadgen={},
            byte_budget=budget,
            peak_bytes=cache.peak_bytes,
            tracked_bytes=cache.total_bytes(),
            disk_bytes=cache.disk_bytes(),
        )
        assert get_invariant("serve-cache-budget").check(evidence) == []


def _entry_size(tmp_path) -> int:
    """Size on disk of one canonical test entry (payload pad=64)."""
    probe = ShardedResultCache(str(tmp_path / "probe"), shards=1)
    probe.store(_key("probe"), _payload("probe"))
    return probe.disk_bytes()
