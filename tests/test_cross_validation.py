"""Cross-validation: the simulator's analytic models vs. the real engine.

The repository has two halves — analytic kernel/layer models that drive the
performance study, and a real autodiff engine.  Wherever both describe the
same computation, they must agree; these tests bind them together so
neither half can drift.
"""

import numpy as np
import pytest

from repro.graph.lowering import (
    conv_layer,
    dense_layer,
    embedding_layer,
    lstm_layer,
)
from repro.kernels.conv import ConvShape
from repro.tensor import functional as F
from repro.tensor.attention import MultiHeadAttention
from repro.tensor.layers import Conv2d, Dense, Embedding, LSTMCell
from repro.tensor.tensor import Tensor


class TestConvAgreement:
    @pytest.mark.parametrize(
        "batch,in_c,out_c,size,kernel,stride,padding",
        [
            (2, 3, 8, 16, 3, 1, 1),
            (4, 8, 16, 12, 3, 2, 1),
            (1, 4, 4, 9, 1, 1, 0),
            (2, 2, 6, 11, 5, 2, 2),
        ],
    )
    def test_output_geometry_matches_real_conv(
        self, batch, in_c, out_c, size, kernel, stride, padding
    ):
        shape = ConvShape(batch, in_c, out_c, size, size, kernel, kernel, stride, padding)
        x = Tensor(np.zeros((batch, in_c, size, size), dtype=np.float32))
        layer = Conv2d(in_c, out_c, kernel, stride=stride, padding=padding)
        out = layer(x)
        assert out.shape == (batch, out_c, shape.out_h, shape.out_w)
        assert shape.output_elements == out.size

    def test_weight_count_matches_real_conv(self):
        shape = ConvShape(1, 5, 7, 8, 8, 3, 3, 1, 1)
        analytic = conv_layer("c", shape, bias=True)
        real = Conv2d(5, 7, 3, padding=1, bias=True)
        assert analytic.weight_elements == real.parameter_count()

    def test_flop_count_matches_actual_multiplies(self):
        """The analytic MAC count equals the im2col GEMM's element count."""
        shape = ConvShape(2, 3, 4, 6, 6, 3, 3, 1, 1)
        # im2col matrix: (b*oh*ow) x (in_c*k*k); GEMM against (in_c*k*k, out_c)
        rows = shape.batch * shape.out_h * shape.out_w
        inner = shape.in_channels * shape.kernel_h * shape.kernel_w
        assert shape.macs == rows * inner * shape.out_channels


class TestDenseAndEmbeddingAgreement:
    def test_dense_weights(self):
        analytic = dense_layer("fc", 4, 32, 10, bias=True)
        real = Dense(32, 10, bias=True)
        assert analytic.weight_elements == real.parameter_count()

    def test_dense_output_elements(self):
        analytic = dense_layer("fc", 4, 32, 10)
        real = Dense(32, 10)
        out = real(Tensor(np.zeros((4, 32), dtype=np.float32)))
        assert analytic.output_elements == out.size

    def test_embedding_weights_and_output(self):
        analytic = embedding_layer("emb", tokens=6, vocab=50, embed_dim=8)
        real = Embedding(50, 8)
        assert analytic.weight_elements == real.parameter_count()
        out = real(np.zeros((2, 3), dtype=np.int64))
        assert analytic.output_elements == out.size


class TestLSTMAgreement:
    def test_weight_count_matches_real_cell(self):
        analytic = lstm_layer("l", batch=4, seq_len=1, input_size=24, hidden=32)
        real = LSTMCell(24, 32)
        assert analytic.weight_elements == real.parameter_count()

    def test_bidirectional_doubles_real_equivalent(self):
        analytic = lstm_layer(
            "l", batch=4, seq_len=1, input_size=24, hidden=32, bidirectional=True
        )
        real = LSTMCell(24, 32)
        assert analytic.weight_elements == 2 * real.parameter_count()

    def test_step_gemm_flops_match_real_matmul(self):
        """The lowering's per-step GEMM flops equal twice the multiply count
        of the real cell's concatenated matmul."""
        batch, input_size, hidden = 4, 24, 32
        analytic = lstm_layer("l", batch, 1, input_size, hidden)
        step_gemm = analytic.forward_kernels[0]
        multiplies = batch * (input_size + hidden) * 4 * hidden
        assert step_gemm.flops == 2 * multiplies


class TestAttentionAgreement:
    def test_projection_weights_match(self):
        from repro.graph.lowering import attention_layer

        analytic = attention_layer("a", batch=2, heads=4, seq_q=5, seq_k=5, model_dim=16)
        real = MultiHeadAttention(16, 4)
        real_weights = sum(p.size for p in real.parameters() if p.ndim == 2)
        assert analytic.weight_elements == real_weights  # biases excluded

    def test_scores_flops_match_real_matmul(self):
        from repro.kernels.attention import attention_scores

        batch, heads, seq, model_dim = 2, 4, 5, 16
        head_dim = model_dim // heads
        kernel = attention_scores(batch * heads, seq, seq, head_dim)
        # Real scores matmul: (b*h, seq, hd) @ (b*h, hd, seq).
        multiplies = batch * heads * seq * seq * head_dim
        assert kernel.flops == 2 * multiplies


class TestLossAgreement:
    def test_cross_entropy_batch_convention(self):
        """The simulated loss kernel's element count equals the real
        logits tensor size."""
        from repro.kernels.misc import cross_entropy_loss

        kernel = cross_entropy_loss(8, 100)
        logits = Tensor(np.zeros((8, 100), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.zeros(8, dtype=np.int64))
        assert kernel.flops == pytest.approx(6.0 * logits.size)
        assert loss.size == 1
