"""Unit tests for the dataset registry and synthetic generators."""

import numpy as np
import pytest

from repro.data.base import DatasetSpec
from repro.data.pipeline import DataPipelineModel
from repro.data.registry import dataset_catalog, get_dataset
from repro.frameworks.registry import CNTK, MXNET, TENSORFLOW


class TestRegistry:
    def test_six_datasets(self):
        assert len(dataset_catalog()) == 6  # Table 3

    def test_table3_values(self):
        imagenet = get_dataset("imagenet1k")
        assert imagenet.num_samples == 1_200_000
        iwslt = get_dataset("iwslt15")
        assert iwslt.num_samples == 133_000
        assert "17188" in iwslt.special
        voc = get_dataset("voc2007")
        assert voc.num_samples == 5011
        assert "12608" in voc.special

    def test_variable_length_marked(self):
        assert get_dataset("iwslt15").variable_length
        assert get_dataset("librispeech").variable_length
        assert not get_dataset("imagenet1k").variable_length

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("mnist")


class TestGenerators:
    @pytest.mark.parametrize("key", sorted(dataset_catalog()))
    def test_every_dataset_synthesizes(self, key):
        batch = get_dataset(key).synthesize(4, seed=1)
        assert batch.batch_size == 4
        assert np.isfinite(batch.inputs).all()

    def test_deterministic_by_seed(self):
        a = get_dataset("imagenet1k").synthesize(2, seed=7)
        b = get_dataset("imagenet1k").synthesize(2, seed=7)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = get_dataset("imagenet1k").synthesize(2, seed=1)
        b = get_dataset("imagenet1k").synthesize(2, seed=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_image_labels_in_range(self):
        batch = get_dataset("imagenet1k").synthesize(16, seed=0)
        assert batch.targets.min() >= 0
        assert batch.targets.max() < 1000

    def test_translation_targets_derived_from_source(self):
        batch = get_dataset("iwslt15").synthesize(4, seed=3)
        expected = (batch.inputs[:, ::-1] + 1) % 17188
        assert np.array_equal(batch.targets, expected)

    def test_speech_geometry(self):
        batch = get_dataset("librispeech").synthesize(2, seed=0)
        assert batch.inputs.shape == (2, 1, 161, 1280)

    def test_atari_geometry(self):
        batch = get_dataset("atari2600").synthesize(3, seed=0)
        assert batch.inputs.shape == (3, 4, 84, 84)
        assert batch.targets.max() < 6

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            get_dataset("imagenet1k").synthesize(0)

    def test_missing_generator(self):
        spec = DatasetSpec(
            key="x",
            name="x",
            num_samples=1,
            sample_shape=(1,),
            size_description="",
            special="",
            cpu_decode_cost_s=0.0,
            sample_host_bytes=4,
        )
        with pytest.raises(NotImplementedError):
            spec.synthesize(1)


class TestPipelineModel:
    def test_cost_scales_with_batch(self):
        pipeline = DataPipelineModel(get_dataset("imagenet1k"))
        small = pipeline.cost(8, TENSORFLOW)
        large = pipeline.cost(32, TENSORFLOW)
        assert large.cpu_core_seconds == pytest.approx(4 * small.cpu_core_seconds)

    def test_cntk_pipeline_nearly_free(self):
        pipeline = DataPipelineModel(get_dataset("imagenet1k"))
        cntk = pipeline.cost(32, CNTK)
        mxnet = pipeline.cost(32, MXNET)
        assert cntk.cpu_core_seconds < 0.05 * mxnet.cpu_core_seconds

    def test_exposure_smaller_than_wall(self):
        pipeline = DataPipelineModel(get_dataset("imagenet1k"))
        cost = pipeline.cost(32, TENSORFLOW)
        assert 0 <= cost.exposed_seconds < cost.wall_seconds

    def test_validation(self):
        pipeline = DataPipelineModel(get_dataset("imagenet1k"))
        with pytest.raises(ValueError):
            pipeline.cost(0, TENSORFLOW)
        with pytest.raises(ValueError):
            DataPipelineModel(get_dataset("imagenet1k"), worker_threads=0)
