"""Unit and behaviour tests for the simulated training session."""

import pytest

from repro.hardware.devices import TITAN_XP
from repro.hardware.memory import AllocationTag, OutOfMemoryError
from repro.training.session import IterationProfile, TrainingSession


def _synthetic_profile(gpu_flops, busy_s, peak_flops):
    return IterationProfile(
        model="m",
        framework="f",
        device="d",
        batch_size=1,
        iteration_time_s=1.0,
        gpu_busy_time_s=busy_s,
        gpu_flops=gpu_flops,
        effective_samples=1.0,
        cpu_core_seconds=0.0,
        cpu_core_count=1,
        peak_fp32_flops=peak_flops,
    )


class TestFP32UtilizationClamp:
    """Eq. 2 is a fraction of peak: it must never report > 1, even when
    rounding in the roofline model nudges achieved FLOP/s past peak."""

    def test_exact_boundary_is_one(self):
        profile = _synthetic_profile(gpu_flops=2.0e12, busy_s=0.5, peak_flops=4.0e12)
        assert profile.fp32_utilization == 1.0

    def test_above_peak_clamps_to_one(self):
        profile = _synthetic_profile(gpu_flops=3.0e12, busy_s=0.5, peak_flops=4.0e12)
        assert profile.fp32_utilization == 1.0

    def test_below_peak_is_untouched(self):
        profile = _synthetic_profile(gpu_flops=1.0e12, busy_s=0.5, peak_flops=4.0e12)
        assert profile.fp32_utilization == 0.5

    def test_zero_busy_time_is_zero(self):
        profile = _synthetic_profile(gpu_flops=1.0e12, busy_s=0.0, peak_flops=4.0e12)
        assert profile.fp32_utilization == 0.0


class TestConstruction:
    def test_accepts_model_key_and_framework_alias(self):
        session = TrainingSession("resnet", "tf")
        assert session.spec.key == "resnet-50"
        assert session.framework.name == "TensorFlow"

    def test_rejects_unimplemented_pairs(self):
        # Table 2: WGAN exists only on TensorFlow.
        with pytest.raises(ValueError, match="no MXNet implementation"):
            TrainingSession("wgan", "mxnet")
        with pytest.raises(ValueError, match="no CNTK implementation"):
            TrainingSession("a3c", "cntk")


class TestIterationProfile:
    def test_metrics_are_consistent(self, resnet_mxnet_32):
        profile = resnet_mxnet_32
        assert profile.throughput == pytest.approx(
            profile.effective_samples / profile.iteration_time_s
        )
        assert 0 < profile.gpu_utilization <= 1
        assert 0 < profile.fp32_utilization < 1
        assert 0 < profile.cpu_utilization < 1
        assert profile.gpu_busy_time_s <= profile.iteration_time_s

    def test_default_batch_is_reference(self):
        profile = TrainingSession("resnet-50", "mxnet").run_iteration()
        assert profile.batch_size == 32

    def test_kernel_timings_attached(self, resnet_mxnet_32):
        assert len(resnet_mxnet_32.kernel_timings) > 300
        assert resnet_mxnet_32.gpu_flops == pytest.approx(
            sum(t.kernel.flops for t in resnet_mxnet_32.kernel_timings)
        )

    def test_memory_snapshot_attached(self, resnet_mxnet_32):
        snapshot = resnet_mxnet_32.memory
        assert snapshot.peak_total > 1024**3

    def test_memory_check_can_be_disabled(self):
        session = TrainingSession("resnet-50", "mxnet", check_memory=False)
        profile = session.run_iteration(128)  # would OOM with checking on
        assert profile.memory is None

    def test_oom_raises_with_checking(self):
        session = TrainingSession("resnet-50", "mxnet")
        with pytest.raises(OutOfMemoryError):
            session.run_iteration(128)


class TestBatchScaling:
    def test_throughput_monotone_in_batch(self):
        session = TrainingSession("inception-v3", "tensorflow")
        values = [session.run_iteration(b).throughput for b in (4, 8, 16, 32)]
        assert values == sorted(values)

    def test_cnn_saturates(self):
        session = TrainingSession("resnet-50", "cntk")
        t32 = session.run_iteration(32).throughput
        t64 = session.run_iteration(64).throughput
        assert t64 / t32 < 1.10  # Observation 2

    def test_rnn_does_not_saturate(self):
        session = TrainingSession("nmt", "tensorflow")
        t64 = session.run_iteration(64).throughput
        t128 = session.run_iteration(128).throughput
        assert t128 / t64 > 1.4  # Observation 2


class TestDeviceSensitivity:
    def test_titan_xp_faster_but_less_utilized(self):
        p4 = TrainingSession("inception-v3", "mxnet").run_iteration(32)
        xp = TrainingSession("inception-v3", "mxnet", gpu=TITAN_XP).run_iteration(32)
        assert xp.throughput > 1.5 * p4.throughput
        assert xp.fp32_utilization < p4.fp32_utilization
        assert xp.gpu_utilization < p4.gpu_utilization

    def test_rnn_gains_less_from_titan_than_cnn(self):
        cnn_gain = (
            TrainingSession("resnet-50", "mxnet", gpu=TITAN_XP).run_iteration(32).throughput
            / TrainingSession("resnet-50", "mxnet").run_iteration(32).throughput
        )
        rnn_gain = (
            TrainingSession("sockeye", "mxnet", gpu=TITAN_XP).run_iteration(64).throughput
            / TrainingSession("sockeye", "mxnet").run_iteration(64).throughput
        )
        assert rnn_gain < cnn_gain


class TestMemoryProfile:
    def test_five_way_breakdown_present(self):
        snapshot = TrainingSession("resnet-50", "mxnet").profile_memory(16)
        for tag in AllocationTag:
            assert tag in snapshot.peak_by_tag
        assert snapshot.peak_by_tag[AllocationTag.FEATURE_MAPS] > 0
        assert snapshot.peak_by_tag[AllocationTag.WEIGHTS] > 0
        assert snapshot.peak_by_tag[AllocationTag.WORKSPACE] > 0

    def test_momentum_dynamic_on_mxnet_static_on_tf(self):
        mxnet = TrainingSession("resnet-50", "mxnet").profile_memory(16)
        tf = TrainingSession("resnet-50", "tensorflow").profile_memory(16)
        assert mxnet.peak_by_tag[AllocationTag.DYNAMIC] > 0
        assert tf.peak_by_tag[AllocationTag.DYNAMIC] == 0

    def test_max_batch_size(self):
        session = TrainingSession("sockeye", "mxnet")
        assert session.max_batch_size((16, 32, 64, 128)) == 64

    def test_max_batch_size_custom_candidates(self):
        session = TrainingSession("deep-speech-2", "mxnet")
        assert session.max_batch_size((1, 2, 3, 4, 5, 6)) == 4


class TestPaperMaxBatches:
    """The memory-capacity limits the paper reports, exactly."""

    def test_nmt_tensorflow_max_128(self):
        session = TrainingSession("nmt", "tensorflow")
        session.profile_memory(128)
        with pytest.raises(OutOfMemoryError):
            session.profile_memory(256)

    def test_sockeye_mxnet_max_64(self):
        session = TrainingSession("sockeye", "mxnet")
        session.profile_memory(64)
        with pytest.raises(OutOfMemoryError):
            session.profile_memory(128)

    def test_image_models_fit_64(self):
        for framework in ("tensorflow", "mxnet", "cntk"):
            TrainingSession("resnet-50", framework).profile_memory(64)
            TrainingSession("inception-v3", framework).profile_memory(64)
