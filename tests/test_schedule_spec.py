"""The schedule mini-language: parsing, canonicalization, round-trips.

The canonical text is a cache dimension, so its stability is load-bearing:
``parse_schedule_spec(repr(s)) == s`` must hold for every constructible
schedule (checked here as a seeded-random property), and every spelling
of "don't change the batch" must normalize to the empty string.
"""

from __future__ import annotations

import random

import pytest

from repro.schedule.spec import (
    FixedSchedule,
    GeometricSchedule,
    GnsSchedule,
    PlateauSchedule,
    ScheduleSpecError,
    canonical_schedule_spec,
    normalized_schedule,
    parse_schedule_spec,
    schedule_names,
)


class TestParsing:
    def test_none_and_blank_mean_no_schedule(self):
        for text in (None, "", "   ", "\t"):
            assert parse_schedule_spec(text) is None

    def test_fixed_parses_to_the_fixed_schedule(self):
        schedule = parse_schedule_spec("fixed")
        assert isinstance(schedule, FixedSchedule)
        assert schedule.is_fixed

    def test_defaults_are_made_explicit(self):
        schedule = parse_schedule_spec("geometric")
        assert schedule == GeometricSchedule(factor=2.0, every=50, ceiling=1024)
        assert schedule.canonical == "geometric:factor=2,every=50,ceiling=1024"

    def test_arguments_override_defaults(self):
        schedule = parse_schedule_spec("plateau:patience=80,factor=3")
        assert schedule == PlateauSchedule(factor=3.0, patience=80, ceiling=1024)

    def test_aliases_and_case_and_dashes(self):
        assert parse_schedule_spec("GEO:factor=2") == parse_schedule_spec(
            "geometric:factor=2"
        )
        assert parse_schedule_spec("noise:ceiling=64") == GnsSchedule(
            ceiling=64, every=50
        )
        assert parse_schedule_spec("constant").is_fixed

    def test_whitespace_around_tokens_is_tolerated(self):
        assert parse_schedule_spec(
            " geometric : factor = 2 , every = 10 "
        ) == GeometricSchedule(factor=2.0, every=10, ceiling=1024)

    def test_unknown_schedule_lists_known_names(self):
        with pytest.raises(ScheduleSpecError, match="known schedules"):
            parse_schedule_spec("bogus")
        assert schedule_names() == ("fixed", "geometric", "gns", "plateau")

    def test_unknown_argument_rejected(self):
        with pytest.raises(ScheduleSpecError, match="takes no argument"):
            parse_schedule_spec("geometric:patience=5")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(ScheduleSpecError, match="duplicate argument"):
            parse_schedule_spec("geometric:factor=2,factor=3")

    def test_malformed_argument_rejected(self):
        for text in ("geometric:factor", "geometric:=2", "geometric:factor=,"):
            with pytest.raises(ScheduleSpecError):
                parse_schedule_spec(text)

    def test_stray_comma_rejected(self):
        with pytest.raises(ScheduleSpecError, match="stray comma"):
            parse_schedule_spec("geometric:factor=2,,every=10")

    def test_unparseable_value_rejected(self):
        with pytest.raises(ScheduleSpecError, match="bad value"):
            parse_schedule_spec("geometric:every=banana")

    def test_gns_requires_a_ceiling(self):
        with pytest.raises(ScheduleSpecError, match="requires argument 'ceiling'"):
            parse_schedule_spec("gns")
        assert parse_schedule_spec("gns:ceiling=256") == GnsSchedule(
            ceiling=256, every=50
        )


class TestValidation:
    def test_factor_below_one_rejected(self):
        # Schedules never shrink the batch — a shrinking schedule would
        # break the monotonicity property the integrator relies on.
        with pytest.raises(ScheduleSpecError, match="never shrink"):
            GeometricSchedule(factor=0.5)
        with pytest.raises(ScheduleSpecError, match="never shrink"):
            parse_schedule_spec("plateau:factor=0.9")

    def test_non_positive_integers_rejected(self):
        with pytest.raises(ScheduleSpecError):
            GeometricSchedule(every=0)
        with pytest.raises(ScheduleSpecError):
            PlateauSchedule(patience=-1)
        with pytest.raises(ScheduleSpecError):
            GnsSchedule(ceiling=0)

    def test_bools_are_not_integers(self):
        with pytest.raises(ScheduleSpecError):
            GnsSchedule(ceiling=True)


class TestCanonicalForm:
    def test_repr_is_the_canonical_text(self):
        schedule = GnsSchedule(ceiling=64, every=50)
        assert repr(schedule) == schedule.canonical == "gns:ceiling=64,every=50"

    def test_canonical_spec_makes_defaults_explicit(self):
        assert (
            canonical_schedule_spec("geo")
            == "geometric:factor=2,every=50,ceiling=1024"
        )
        assert canonical_schedule_spec("") == ""
        assert canonical_schedule_spec(None) == ""

    def test_float_factors_format_compactly(self):
        assert (
            parse_schedule_spec("geometric:factor=1.5").canonical
            == "geometric:factor=1.5,every=50,ceiling=1024"
        )
        # An integral float renders without the trailing .0 ({:g}).
        assert "factor=2," in parse_schedule_spec("geometric:factor=2.0").canonical

    def test_every_fixed_spelling_normalizes_to_empty(self):
        # The cache-dimension form: fixed is byte-invisible.
        for text in ("", None, "fixed", "FIXED", "constant", " fixed "):
            assert normalized_schedule(text) == ""

    def test_adaptive_spellings_normalize_to_canonical(self):
        assert (
            normalized_schedule("noise:ceiling=64")
            == "gns:ceiling=64,every=50"
        )


def _random_schedule(rng: random.Random):
    kind = rng.choice(("fixed", "geometric", "plateau", "gns"))
    if kind == "fixed":
        return FixedSchedule()
    factor = rng.choice((1.0, 1.25, 1.5, 2.0, 3.0, 7.5))
    every = rng.randint(1, 500)
    ceiling = rng.randint(1, 4096)
    if kind == "geometric":
        return GeometricSchedule(factor=factor, every=every, ceiling=ceiling)
    if kind == "plateau":
        return PlateauSchedule(factor=factor, patience=every, ceiling=ceiling)
    return GnsSchedule(ceiling=ceiling, every=every)


class TestRoundTripProperty:
    def test_parse_of_repr_is_identity_over_random_schedules(self):
        rng = random.Random(20260807)
        for _ in range(300):
            schedule = _random_schedule(rng)
            assert parse_schedule_spec(repr(schedule)) == schedule

    def test_canonicalization_is_idempotent_over_random_schedules(self):
        rng = random.Random(99)
        for _ in range(300):
            schedule = _random_schedule(rng)
            canonical = canonical_schedule_spec(schedule.canonical)
            assert canonical == schedule.canonical
            assert canonical_schedule_spec(canonical) == canonical

    def test_normalization_is_idempotent_over_random_schedules(self):
        rng = random.Random(7)
        for _ in range(300):
            text = normalized_schedule(repr(_random_schedule(rng)))
            assert normalized_schedule(text) == text
