"""Unit tests for the Fig. 2 convergence models."""

import numpy as np
import pytest

from repro.training.convergence import (
    ConvergenceModel,
    FIG2_MODELS,
    time_to_metric,
    training_curve,
)


class TestConvergenceModel:
    def test_starts_at_initial(self):
        model = FIG2_MODELS["resnet-50"]
        assert model.value_at(0) == pytest.approx(model.initial)

    def test_monotone_nondecreasing(self):
        model = FIG2_MODELS["nmt"]
        samples = np.logspace(2, 9, 40)
        values = [model.value_at(s) for s in samples]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_approaches_final(self):
        for key, model in FIG2_MODELS.items():
            value = model.value_at(1e12)
            assert value == pytest.approx(model.final, abs=abs(model.final) * 0.02 + 0.5), key

    def test_logistic_curve_starts_low(self):
        a3c = FIG2_MODELS["a3c"]
        assert a3c.value_at(1000) < -19.0  # far below final at the start

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            FIG2_MODELS["resnet-50"].value_at(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceModel("m", 0.0, 1.0, samples_to_half=0.0)
        with pytest.raises(ValueError):
            ConvergenceModel("m", 0.0, 1.0, samples_to_half=1.0, gamma=0.0)


class TestLiteratureEndpoints:
    """Section 3.3: training outcomes must match the literature."""

    def test_image_models_reach_75_to_80_top1(self):
        for key in ("resnet-50", "inception-v3"):
            final = FIG2_MODELS[key].final
            assert 75.0 <= final <= 80.0

    def test_translation_reaches_bleu_20(self):
        assert FIG2_MODELS["nmt"].final == pytest.approx(20.0, abs=1.0)
        assert FIG2_MODELS["sockeye"].final == pytest.approx(20.5, abs=1.0)

    def test_a3c_reaches_pong_19_to_20(self):
        assert 19.0 <= FIG2_MODELS["a3c"].final <= 20.0


class TestTrainingCurve:
    def test_shapes(self):
        times, values = training_curve("resnet-50", 100.0, 3600.0, points=16)
        assert len(times) == len(values) == 16
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(3600.0)

    def test_faster_training_reaches_higher_sooner(self):
        _, slow = training_curve("resnet-50", 50.0, 24 * 3600.0)
        _, fast = training_curve("resnet-50", 200.0, 24 * 3600.0)
        assert fast[10] > slow[10]

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            training_curve("alexnet", 100.0, 10.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            training_curve("resnet-50", 0.0, 10.0)
        with pytest.raises(ValueError):
            training_curve("resnet-50", 10.0, 0.0)


class TestTimeToMetric:
    def test_inverse_of_value_at(self):
        throughput = 100.0
        seconds = time_to_metric("resnet-50", throughput, 70.0)
        model = FIG2_MODELS["resnet-50"]
        assert model.value_at(seconds * throughput) == pytest.approx(70.0, abs=0.1)

    def test_faster_throughput_shortens_time(self):
        slow = time_to_metric("nmt", 100.0, 18.0)
        fast = time_to_metric("nmt", 400.0, 18.0)
        assert fast == pytest.approx(slow / 4.0, rel=0.01)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            time_to_metric("resnet-50", 100.0, 99.0)
