"""The compiled execution-plan layer: compilation, caching, and the views
every consumer reads (timeline, memory trace, gradient schedule)."""

import pytest

from repro.hardware.memory import AllocationTag, OutOfMemoryError
from repro.observability.runner import telemetry
from repro.plan import PlanCache, compile_graph, shared_plan_sets_clear
from repro.plan.executor import replay
from repro.profiling import timeline_for
from repro.training.session import TrainingSession


@pytest.fixture(scope="module")
def resnet_session():
    return TrainingSession("resnet-50", "mxnet")


@pytest.fixture(scope="module")
def resnet_plan(resnet_session):
    return resnet_session.compile(16)


class TestCompilation:
    def test_compile_is_deterministic_across_sessions(self):
        first = TrainingSession("resnet-50", "mxnet").compile(16)
        second = TrainingSession("resnet-50", "mxnet").compile(16)
        assert first.key == second.key
        assert first.total_flops == second.total_flops
        assert first.makespan_s == second.makespan_s
        assert first.gpu_busy_s == second.gpu_busy_s
        assert first.dispatch_cpu_s == second.dispatch_cpu_s
        assert [t.duration_s for t in first.timings] == [
            t.duration_s for t in second.timings
        ]
        assert first.allocations == second.allocations

    def test_kernel_stream_structure(self, resnet_session, resnet_plan):
        graph = resnet_plan.graph
        weighted = sum(1 for layer in graph.layers if layer.weight_elements > 0)
        assert len(resnet_plan.kernels) == 1 + len(graph.iteration_kernels()) + weighted
        assert "memcpy" in resnet_plan.kernels[0].name
        assert len(resnet_plan.timings) == len(resnet_plan.kernels)

    def test_total_flops_matches_stream_order_sum(self, resnet_plan):
        assert resnet_plan.total_flops == sum(
            t.kernel.flops for t in resnet_plan.timings
        )

    def test_execution_replay_matches_timeline(self, resnet_plan):
        replayed = replay(resnet_plan.timings, resnet_plan.framework)
        assert replayed.makespan_s == resnet_plan.makespan_s
        assert replayed.timeline.events == resnet_plan.timeline.events
        assert replayed.timeline.gaps == resnet_plan.timeline.gaps

    def test_describe_mentions_the_point(self, resnet_plan):
        text = resnet_plan.describe()
        assert "compiled plan" in text
        assert "ResNet-50" in text
        assert "Quadro P4000" in text


class TestPlanCache:
    def test_session_recompile_returns_same_object(self):
        session = TrainingSession("resnet-50", "mxnet")
        first = session.compile(16)
        assert session.compile(16) is first
        stats = session.plan_cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.compile_count == 1

    def test_distinct_batches_get_distinct_entries(self):
        session = TrainingSession("resnet-50", "mxnet")
        plans = {batch: session.compile(batch) for batch in (8, 16, 32)}
        assert len({id(plan) for plan in plans.values()}) == 3
        assert session.plan_cache.stats.misses == 3
        for batch, plan in plans.items():
            assert plan.graph.batch_size == batch
            assert session.compile(batch) is plan

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        built = []

        def factory(key):
            def build():
                built.append(key)
                return f"plan-{key}"

            return build

        assert cache.get("a", factory("a")) == "plan-a"
        assert cache.get("b", factory("b")) == "plan-b"
        assert cache.get("a", factory("a")) == "plan-a"  # refreshes "a"
        assert cache.get("c", factory("c")) == "plan-c"  # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get("b", factory("b")) == "plan-b"  # recompiled
        assert built == ["a", "b", "c", "b"]
        assert len(cache) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_lookup_emits_spans_and_counters(self):
        with telemetry() as run:
            session = TrainingSession("resnet-50", "mxnet")
            session.compile(16)
            session.compile(16)
        lookups = [
            root for root in run.tracer.roots if root.name == "plan.cache.lookup"
        ]
        assert [span.attributes["outcome"] for span in lookups] == ["miss", "hit"]
        hit = lookups[1]
        assert hit.find("plan.compile") is None  # the hit never recompiles
        assert hit.find("plan.symbolic.specialize") is None
        snap = run.metrics.snapshot()
        assert snap["plan_cache_hits_total"] == 1
        assert snap["plan_cache_misses_total"] == 1

    def test_compile_span_nests_under_miss_lookup(self):
        shared_plan_sets_clear()  # force a cold trace so the compile span appears
        with telemetry() as run:
            TrainingSession("resnet-50", "mxnet").compile(16)
        lookup = run.tracer.roots[0]
        assert lookup.name == "plan.cache.lookup"
        assert lookup.attributes["outcome"] == "miss"
        specialize_span = lookup.find("plan.symbolic.specialize")
        assert specialize_span is not None
        assert specialize_span.attributes["batch_size"] == 16
        # The first specialize traces the symbolic variant inside the span.
        assert specialize_span.find("plan.symbolic.compile") is not None
        assert run.metrics.snapshot()["plan_cache_misses_total"] == 1

    def test_concrete_session_compile_span_nests_under_miss_lookup(self):
        with telemetry() as run:
            TrainingSession("resnet-50", "mxnet", symbolic=False).compile(16)
        lookup = run.tracer.roots[0]
        assert lookup.name == "plan.cache.lookup"
        assert lookup.attributes["outcome"] == "miss"
        compile_span = lookup.find("plan.compile")
        assert compile_span is not None
        assert compile_span.attributes["batch_size"] == 16
        assert run.metrics.snapshot()["plan_cache_misses_total"] == 1


class TestMemoryView:
    def test_memory_snapshot_is_memoized(self, resnet_plan):
        first = resnet_plan.memory
        assert resnet_plan.memory is first
        assert first.peak_total > 0
        assert first.peak_by_tag[AllocationTag.FEATURE_MAPS] > 0

    def test_oom_outcome_is_memoized_and_reraised(self):
        plan = TrainingSession("resnet-50", "tensorflow").compile(512)
        capacity = plan.gpu.memory_bytes
        assert not plan.fits(capacity)
        with pytest.raises(OutOfMemoryError) as first:
            plan.check_memory(capacity)
        with pytest.raises(OutOfMemoryError) as second:
            plan.check_memory(capacity)
        assert first.value is second.value

    def test_fits_at_unconstrained_capacity(self, resnet_plan):
        assert resnet_plan.fits(float("inf"))

    def test_with_allocations_shares_execution(self, resnet_plan):
        sibling = resnet_plan.with_allocations(resnet_plan.allocations[:1])
        assert sibling.execution is resnet_plan.execution
        assert sibling.timings is resnet_plan.timings
        assert len(sibling.allocations) == 1
        assert sibling.memory.peak_total < resnet_plan.memory.peak_total


class TestGradientSchedule:
    def test_ready_times_are_monotone_and_within_makespan(self, resnet_plan):
        schedule = resnet_plan.gradient_ready_times()
        weighted = [
            layer.name
            for layer in resnet_plan.graph.layers
            if layer.weight_elements > 0
        ]
        assert [name for name, _ in schedule] == list(reversed(weighted))
        times = [ready for _, ready in schedule]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert 0.0 < times[0] and times[-1] <= resnet_plan.makespan_s

    def test_trainer_exposes_the_schedule(self):
        from repro.distributed import DataParallelTrainer
        from repro.distributed.topology import configuration

        trainer = DataParallelTrainer("resnet-50", "mxnet", configuration("1M2G"))
        schedule = trainer.gradient_schedule(16)
        assert schedule == trainer.session.compile(16).gradient_ready_times()
        assert len(schedule) > 50  # one entry per weighted ResNet-50 layer


class TestConsumersShareThePlan:
    def test_timeline_for_reads_the_cached_plan(self, resnet_session):
        plan = resnet_session.compile(16)
        assert timeline_for(resnet_session, 16) is plan.timeline

    def test_profile_and_plan_agree_bitwise(self):
        session = TrainingSession("resnet-50", "mxnet")
        profile = session.run_iteration(16)
        plan = session.compile(16)
        assert profile.gpu_busy_time_s == plan.gpu_busy_s
        assert profile.gpu_flops == plan.total_flops
        assert profile.kernel_timings is plan.timings
        assert profile.memory.peak_total == plan.memory.peak_total

    def test_standalone_compile_graph(self, resnet_session):
        graph = resnet_session.spec.build(8)
        plan = compile_graph(graph, resnet_session.framework, resnet_session.gpu)
        assert plan.key == ("ResNet-50", "mxnet", 8, "Quadro P4000")
        assert plan.makespan_s > plan.gpu_busy_s > 0
