"""Tests for the deterministic load generator, its SLO gate, and the
``tbd serve`` CLI surface.

The load generator is a discrete-event simulation on a virtual clock,
so every number it reports — per-class p50/p99 latency, throughput,
fairness, starvation — is a pure function of its config.  That is the
property the bench gate leans on, so it is proven here first.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve.loadgen import (
    DEFAULT_SLO,
    LoadGenConfig,
    LoadGenReport,
    evaluate_slo,
    jain_index,
    percentile,
    run_loadgen,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestHelpers:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([7.0], 0.5) == 7.0

    def test_jain_index(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadGenConfig(priority_mix=(("interactive", 0.0),))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = LoadGenConfig(clients=120, seed=13)
        assert run_loadgen(config).to_json() == run_loadgen(config).to_json()

    def test_different_seed_different_outcome(self):
        base = run_loadgen(LoadGenConfig(clients=120, seed=13))
        other = run_loadgen(LoadGenConfig(clients=120, seed=14))
        assert base.to_json() != other.to_json()

    def test_config_round_trips_into_report(self):
        config = LoadGenConfig(clients=60, tenants=3, seed=5)
        report = run_loadgen(config)
        assert report.to_doc()["config"]["clients"] == 60
        assert report.to_doc()["config"]["tenants"] == 3


class TestScale:
    def test_thousand_clients(self):
        """The acceptance-scale scenario: 1000 clients, closed loop."""
        report = run_loadgen(LoadGenConfig(clients=1000, seed=7))
        doc = report.to_doc()
        assert doc["completed"] == doc["submitted"] >= 2000
        for name in ("interactive", "standard", "batch"):
            stats = doc["classes"][name]
            assert stats["completed"] > 0
            assert 0.0 < stats["latency_p50_s"] <= stats["latency_p99_s"]
        assert doc["fairness_index"] > 0.9
        assert doc["starvation_events"] == 0
        # Bounded queue: overload shows up as typed rejections, retried.
        assert sum(doc["rejected_by_code"].values()) > 0
        assert set(doc["rejected_by_code"]) <= {
            "queue-full",
            "tenant-quota",
        }

    def test_priority_ordering_of_latency(self):
        """Higher classes must see no worse tail latency than lower."""
        doc = run_loadgen(LoadGenConfig(clients=600, seed=7)).to_doc()
        classes = doc["classes"]
        assert (
            classes["interactive"]["latency_p99_s"]
            <= classes["standard"]["latency_p99_s"]
            <= classes["batch"]["latency_p99_s"]
        )


class TestSLOGate:
    def test_default_slo_holds_at_both_bench_scales(self):
        for clients in (200, 1000):
            report = run_loadgen(LoadGenConfig(clients=clients, seed=7))
            assert evaluate_slo(report) == []

    def test_breach_detection(self):
        report = run_loadgen(LoadGenConfig(clients=200, seed=7))
        strict = dict(DEFAULT_SLO)
        strict["latency_p99_s"] = {
            "interactive": 0.001,
            "standard": 0.001,
            "batch": 0.001,
        }
        breaches = evaluate_slo(report, strict)
        assert len(breaches) == 3
        assert all("p99" in breach for breach in breaches)

    def test_fairness_floor_breach(self):
        report = run_loadgen(LoadGenConfig(clients=200, seed=7))
        slo = dict(DEFAULT_SLO)
        slo["fairness_floor"] = 1.01  # unattainable
        assert any("fairness" in b for b in evaluate_slo(report, slo))


class TestServeCLI:
    def test_loadgen_prints_report_and_passes_gate(self, capsys):
        code, out = run_cli(
            capsys, "serve", "loadgen", "--clients", "60", "--gate"
        )
        assert code == 0
        assert "p99" in out
        for name in ("interactive", "standard", "batch"):
            assert name in out

    def test_loadgen_report_file(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code, _ = run_cli(
            capsys,
            "serve",
            "loadgen",
            "--clients",
            "60",
            "--report",
            str(path),
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["completed"] == doc["submitted"]

    def test_loadgen_gate_failure_exit_code(self, capsys):
        """One worker behind a deep queue at high load: waits blow every
        latency ceiling (a shallow queue would instead shed load as
        rejections and keep admitted-job latency low).  The gate must
        exit non-zero."""
        code, out = run_cli(
            capsys,
            "serve",
            "loadgen",
            "--clients",
            "500",
            "--workers",
            "1",
            "--max-depth",
            "256",
            "--tenant-depth",
            "64",
            "--gate",
        )
        assert code == 1
        assert "SLO" in out or "breach" in out.lower()

    def test_serve_run_demo_jobs(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "serve",
            "run",
            "--cache-dir",
            str(tmp_path / "serve-cache"),
            "--event-log",
            str(tmp_path / "events.jsonl"),
        )
        assert code == 0
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        kinds = {event["kind"] for event in events}
        assert {"queued", "started", "point", "done"} <= kinds
        assert all(event["kind"] != "failed" for event in events)

    def test_serve_submit_single_job(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "serve",
            "submit",
            "sweep",
            "alexnet",
            "-f",
            "mxnet",
            "--batches",
            "4",
            "8",
            "--cache-dir",
            str(tmp_path / "cache"),
        )
        assert code == 0
        assert "done" in out

    def test_serve_status_reads_cache_offline(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cli(
            capsys,
            "serve",
            "submit",
            "sweep",
            "alexnet",
            "-f",
            "mxnet",
            "-b",
            "4",
            "--cache-dir",
            str(cache_dir),
        )
        code, out = run_cli(
            capsys, "serve", "status", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert "entries" in out


class TestBenchSuiteIntegration:
    def test_serve_suite_records_and_gates(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "bench",
            "gate",
            "serve",
            "--dir",
            str(tmp_path / "trajectory"),
        )
        assert code == 0
        assert "smoke-200" in out and "heavy-1000" in out
        store = json.loads(
            (tmp_path / "trajectory" / "BENCH_serve.json").read_text()
        )
        records = store if isinstance(store, list) else store["records"]
        assert records[-1]["gate"]["passed"] is True
