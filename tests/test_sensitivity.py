"""Tests for the calibration-sensitivity analysis — the reproduction's
findings must not be knife-edge artifacts of single constants."""

import pytest

import repro.kernels.gemm as gemm_module
from repro.experiments import sensitivity


class TestSweeps:
    @pytest.fixture(scope="class")
    def results(self):
        return sensitivity.run_all()

    def test_four_constants_swept(self, results):
        assert len(results) == 4
        assert all(len(result.points) >= 4 for result in results)

    def test_every_finding_is_robust(self, results):
        for result in results:
            assert result.robust, (
                result.finding,
                [str(p.value) for p in result.points if not p.holds],
            )

    def test_robust_fraction_bounds(self, results):
        for result in results:
            assert result.robust_fraction == pytest.approx(1.0)

    def test_sync_latency_effect_is_monotone(self):
        """More sync latency -> lower LSTM utilization: the mechanism, not
        just the threshold, behaves."""
        result = sensitivity.sweep_sync_latency()
        utilizations = [
            float(point.evidence.split("%")[0].split()[-1])
            for point in result.points
        ]
        assert utilizations == sorted(utilizations, reverse=True)

    def test_tile_sweep_restores_the_constant(self):
        before = gemm_module._TILE_HALF_DIM
        sensitivity.sweep_gemm_tile(factors=(0.5, 1.0))
        assert gemm_module._TILE_HALF_DIM == before

    def test_ramp_sweep_restores_roofline_init(self):
        import repro.hardware.roofline as roofline_module
        from repro.hardware.devices import QUADRO_P4000

        sensitivity.sweep_ramp_exponent(values=(0.5,))
        model = roofline_module.RooflineModel(QUADRO_P4000)
        assert model._ramp_s == pytest.approx(
            roofline_module.RooflineModel._BASE_OCCUPANCY_RAMP_S
        )

    def test_render(self, results):
        text = sensitivity.render(results)
        assert "ROBUST" in text
        assert "BRK" not in text
