"""vDNN-style feature-map offloading (Rhu et al., MICRO'16 — [83] in the
paper, the work whose memory-breakdown observations the paper extends).

Mechanism: forward-pass feature maps are stashed only for the backward
pass; between their two uses they can live in host memory.  Offloading a
fraction ``f`` of the stash saves ``f x feature_map_bytes`` of GPU memory
at the price of moving those bytes out after the forward pass and back in
before the backward pass (2x traffic over PCIe), partially overlapped with
compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import Interconnect, PCIE_3_X16
from repro.plan.transform import FeatureMapOffloadTransform
from repro.training.session import GRADIENT_MAP_FACTOR, TrainingSession

#: Fraction of offload traffic hidden behind compute (vDNN overlaps its
#: prefetches with the convolution stream).
_OFFLOAD_OVERLAP = 0.7


@dataclass(frozen=True)
class OffloadPlan:
    """Resolved effect of offloading at one (batch, fraction) point."""

    model: str
    framework: str
    batch_size: int
    offload_fraction: float
    gpu_memory_saved_bytes: float
    transfer_bytes_per_iteration: float
    exposed_transfer_s: float
    baseline_throughput: float
    throughput: float

    @property
    def throughput_cost_fraction(self) -> float:
        """Relative throughput lost to the exposed transfers."""
        if self.baseline_throughput <= 0:
            return 0.0
        return 1.0 - self.throughput / self.baseline_throughput

    @property
    def memory_saved_gib(self) -> float:
        return self.gpu_memory_saved_bytes / 1024.0**3


class FeatureMapOffload:
    """Evaluates vDNN-style offloading for one training session."""

    def __init__(self, session: TrainingSession, link: Interconnect = PCIE_3_X16):
        self.session = session
        self.link = link

    def plan(self, batch_size: int, offload_fraction: float) -> OffloadPlan:
        """Compute the memory/throughput trade at ``offload_fraction``.

        Raises:
            ValueError: if the fraction is outside [0, 1].
        """
        if not 0.0 <= offload_fraction <= 1.0:
            raise ValueError("offload fraction must be in [0, 1]")
        session = self.session
        plan = session.compile(batch_size)
        graph = plan.graph
        baseline = session.execute_plan(plan)

        fm_factor = (1.0 + GRADIENT_MAP_FACTOR) * graph.feature_map_overallocation
        stash_bytes = graph.total_feature_map_bytes * fm_factor
        saved = stash_bytes * offload_fraction
        transfer = 2.0 * graph.total_feature_map_bytes * offload_fraction
        exposed = self.link.transfer_time(transfer) * (1.0 - _OFFLOAD_OVERLAP)
        iteration = baseline.iteration_time_s + exposed
        throughput = baseline.effective_samples / iteration
        return OffloadPlan(
            model=session.spec.display_name,
            framework=session.framework.name,
            batch_size=batch_size,
            offload_fraction=offload_fraction,
            gpu_memory_saved_bytes=saved,
            transfer_bytes_per_iteration=transfer,
            exposed_transfer_s=exposed,
            baseline_throughput=baseline.throughput,
            throughput=throughput,
        )

    def fits(self, batch_size: int, offload_fraction: float) -> bool:
        """Does the configuration fit GPU memory with offloading applied?"""
        session = self.session
        plan = session.compile(batch_size)
        if plan.fits(session.gpu.memory_bytes):
            return True
        # Replay with the offloaded fraction removed from feature maps.
        offloaded = FeatureMapOffloadTransform(offload_fraction).apply(plan)
        return offloaded.fits(session.gpu.memory_bytes)

    def max_batch_with_offload(self, candidates, offload_fraction: float) -> int:
        """Largest candidate batch that fits when offloading is enabled —
        quantifies how much further the batch axis stretches (the paper's
        'GPU memory is often not utilized efficiently' finding inverted)."""
        best = 0
        for batch in sorted(candidates):
            if self.fits(batch, offload_fraction):
                best = batch
            else:
                break
        return best
