"""Reinvesting freed memory in depth (Observation 12).

The paper: "One can use the additional GPU memory for larger workspace …
and deeper models (e.g., ResNet-102 vs. ResNet-50)."  This module answers
the concrete question: at a given mini-batch size, how deep a residual
network fits on the GPU?  Depth is varied through the conv4 stage's block
count, the axis along which ResNet-50 (6 blocks), ResNet-101 (23) and
ResNet-152 (36) differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.layer import LayerGraph
from repro.graph.lowering import dense_layer, pool_layer, softmax_cross_entropy_kernels
from repro.hardware.devices import GPUSpec, QUADRO_P4000
from repro.hardware.memory import OutOfMemoryError
from repro.models.resnet import resnet_conv_stack
from repro.plan.transform import ResNetDepthTransform
from repro.training.session import TrainingSession

#: conv4 block count -> conventional name.
_NAMED_DEPTHS = {6: "ResNet-50", 23: "ResNet-101", 36: "ResNet-152"}


def _layer_count(conv4_blocks: int) -> int:
    """Weighted-layer count of the resulting network (3 per bottleneck +
    stem conv + final fc)."""
    blocks = 3 + 4 + conv4_blocks + 3
    return 3 * blocks + 2


def build_resnet_with_depth(batch_size: int, conv4_blocks: int) -> LayerGraph:
    """A bottleneck ResNet with a variable conv4 stage."""
    if conv4_blocks < 1:
        raise ValueError("need at least one conv4 block")
    name = _NAMED_DEPTHS.get(conv4_blocks, f"ResNet-{_layer_count(conv4_blocks)}")
    graph = LayerGraph(
        model_name=name,
        batch_size=batch_size,
        input_bytes=batch_size * 3 * 224 * 224 * 4,
    )
    channels, h, w = resnet_conv_stack(
        graph, batch_size, 224, 224, (3, 4, conv4_blocks, 3)
    )
    graph.add(
        pool_layer(
            "global_avgpool",
            batch_size * channels * h * w,
            batch_size * channels,
            window=h * w,
        )
    )
    graph.add(dense_layer("fc1000", batch_size, channels, 1000))
    graph.extra_kernels = softmax_cross_entropy_kernels(batch_size, 1000)
    return graph


@dataclass(frozen=True)
class DepthPlan:
    """The deepest network that fits at one batch size."""

    batch_size: int
    conv4_blocks: int
    layer_count: int
    name: str
    total_gib: float
    throughput: float


def deepest_resnet_that_fits(
    batch_size: int,
    framework: str = "mxnet",
    gpu: GPUSpec = QUADRO_P4000,
    max_conv4_blocks: int = 60,
) -> DepthPlan:
    """Find the largest conv4 stage that fits GPU memory at ``batch_size``.

    Raises:
        OutOfMemoryError: if even the shallowest network does not fit.
    """
    session = TrainingSession("resnet-50", framework, gpu=gpu)
    base_plan = session.compile(batch_size)
    best = None
    for conv4_blocks in range(6, max_conv4_blocks + 1):
        candidate = ResNetDepthTransform(conv4_blocks).apply(base_plan)
        try:
            snapshot = candidate.check_memory(gpu.memory_bytes)
        except OutOfMemoryError:
            break
        profile = session.execute_plan(candidate)
        best = DepthPlan(
            batch_size=batch_size,
            conv4_blocks=conv4_blocks,
            layer_count=_layer_count(conv4_blocks),
            name=candidate.graph.model_name,
            total_gib=snapshot.peak_total / 1024.0**3,
            throughput=profile.throughput,
        )
    if best is None:
        raise OutOfMemoryError(
            f"no residual depth fits at batch {batch_size} on {gpu.name}"
        )
    return best


def depth_for_batch_tradeoff(framework: str = "mxnet", batches=(8, 16, 32, 64)) -> list:
    """The Obs. 12 trade-off table: smaller batches buy deeper networks."""
    plans = []
    for batch in batches:
        try:
            plans.append(deepest_resnet_that_fits(batch, framework))
        except OutOfMemoryError:
            continue
    return plans
