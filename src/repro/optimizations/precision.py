"""FP16 storage what-if.

The paper's related work (Section 5) surveys precision-reduction
techniques and notes that training with quantized values loses accuracy on
large models — but *storing* feature maps in FP16 while computing in FP32
(the mixed-precision recipe that matured a year after the paper) halves
the dominant memory class without the accuracy problem.  On the paper's
Pascal-generation GPUs FP16 arithmetic is not faster (no tensor cores;
fp16 CUDA-core rate is crippled), so this model changes **memory only**,
plus the bandwidth relief of half-sized map traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory import AllocationTag
from repro.training.session import GRADIENT_MAP_FACTOR, TrainingSession

#: FP16 halves feature-map storage; weights keep an FP32 master copy plus
#: the FP16 working copy (x1.5 total).
_FEATURE_MAP_SCALE = 0.5
_WEIGHT_SCALE = 1.5


@dataclass(frozen=True)
class PrecisionPlan:
    """Memory effect of FP16 storage for one configuration."""

    model: str
    framework: str
    batch_size: int
    fp32_total_bytes: float
    fp16_total_bytes: float
    fp32_feature_map_bytes: float
    fp16_feature_map_bytes: float

    @property
    def total_saving_fraction(self) -> float:
        if self.fp32_total_bytes <= 0:
            return 0.0
        return 1.0 - self.fp16_total_bytes / self.fp32_total_bytes

    @property
    def saved_gib(self) -> float:
        return (self.fp32_total_bytes - self.fp16_total_bytes) / 1024.0**3


class HalfPrecisionStorage:
    """Evaluates FP16 feature-map storage for one session."""

    def __init__(self, session: TrainingSession):
        self.session = session

    def plan(self, batch_size: int) -> PrecisionPlan:
        """Memory breakdown under FP16 storage vs. the FP32 baseline."""
        snapshot = self.session.profile_memory(batch_size)
        fm = snapshot.peak_by_tag[AllocationTag.FEATURE_MAPS]
        weights = snapshot.peak_by_tag[AllocationTag.WEIGHTS]
        gradients = snapshot.peak_by_tag[AllocationTag.WEIGHT_GRADIENTS]
        dynamic = snapshot.peak_by_tag[AllocationTag.DYNAMIC]
        workspace = snapshot.peak_by_tag[AllocationTag.WORKSPACE]
        fp32_total = fm + weights + gradients + dynamic + workspace
        fp16_total = (
            fm * _FEATURE_MAP_SCALE
            + weights * _WEIGHT_SCALE
            + gradients * _FEATURE_MAP_SCALE  # fp16 gradients
            + dynamic  # fp32 optimizer state retained
            + workspace
        )
        return PrecisionPlan(
            model=self.session.spec.display_name,
            framework=self.session.framework.name,
            batch_size=batch_size,
            fp32_total_bytes=fp32_total,
            fp16_total_bytes=fp16_total,
            fp32_feature_map_bytes=fm,
            fp16_feature_map_bytes=fm * _FEATURE_MAP_SCALE,
        )

    def max_batch(self, candidates) -> int:
        """Largest candidate batch whose FP16 footprint fits GPU memory."""
        capacity = self.session.gpu.memory_bytes
        best = 0
        for batch in sorted(candidates):
            try:
                plan = self._plan_unchecked(batch)
            except Exception:
                break
            if plan.fp16_total_bytes <= capacity:
                best = batch
            else:
                break
        return best

    def _plan_unchecked(self, batch_size: int) -> PrecisionPlan:
        """Like :meth:`plan` but without the FP32 capacity check (FP16 may
        fit where FP32 does not — that is the point).  The graph comes from
        the session's compiled plan, so sweeping candidates never rebuilds
        a point the session already knows."""
        session = self.session
        graph = session.compile(batch_size).graph
        fm_factor = (1.0 + GRADIENT_MAP_FACTOR) * graph.feature_map_overallocation
        pool = session.framework.pool_overhead
        fm = graph.total_feature_map_bytes * fm_factor * pool
        fm += graph.input_bytes * 2 * pool
        weights = graph.total_weight_bytes * pool
        gradients = graph.total_weight_bytes * pool
        dynamic = graph.total_weight_bytes * pool
        workspace = (
            graph.total_workspace_bytes * session.framework.workspace_factor * pool
        )
        fp32_total = fm + 2 * weights + gradients + workspace  # momentum incl.
        fp16_total = (
            fm * _FEATURE_MAP_SCALE
            + weights * _WEIGHT_SCALE
            + gradients * _FEATURE_MAP_SCALE
            + weights  # optimizer state
            + workspace
        )
        return PrecisionPlan(
            model=session.spec.display_name,
            framework=session.framework.name,
            batch_size=batch_size,
            fp32_total_bytes=fp32_total,
            fp16_total_bytes=fp16_total,
            fp32_feature_map_bytes=fm,
            fp16_feature_map_bytes=fm * _FEATURE_MAP_SCALE,
        )
