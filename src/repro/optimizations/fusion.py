"""Fused-RNN what-if: the paper's top recommendation for LSTM models.

Observations 5 and 7 find LSTM training launch-bound and FP32-starved, and
call for "more efficient RNN layer implementations".  cuDNN's fused RNN
path is exactly that implementation: it batches the input projections of
all timesteps into one large GEMM, runs the recurrent projections
back-to-back on-device, fuses the pointwise cell updates across steps, and
— critically — removes the per-step host round-trips of ``dynamic_rnn``
loops.

:func:`fuse_recurrent_layers` applies that rewrite to a lowered graph,
reading each recurrent layer's geometry from its ``attributes``:

- the per-step ``gemm(b, g*h, input+h)`` GEMMs become one
  ``gemm(b*T*D, g*h, input)`` input projection plus ``T*D`` recurrent
  ``gemm(b, g*h, h)`` GEMMs;
- the per-step pointwise kernels merge into one fused kernel per pass;
- every ``host_sync`` flag disappears.

Total FLOPs are preserved (asserted by tests); only launch granularity and
synchronization change — so any measured speedup is pure overhead removal.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace

from repro.graph.layer import LayerGraph
from repro.kernels.gemm import gemm
import repro.kernels.rnn as rnn_kernels

_RECURRENT_KINDS = ("lstm", "gru", "rnn")
_POINTWISE = {
    "lstm": rnn_kernels.lstm_cell_pointwise,
    "gru": rnn_kernels.gru_cell_pointwise,
    "rnn": rnn_kernels.vanilla_rnn_pointwise,
}


@dataclass(frozen=True)
class FusionResult:
    """Before/after comparison of the fused-RNN rewrite."""

    model: str
    framework: str
    batch_size: int
    baseline_throughput: float
    fused_throughput: float
    baseline_gpu_utilization: float
    fused_gpu_utilization: float
    baseline_kernel_count: int
    fused_kernel_count: int

    @property
    def speedup(self) -> float:
        return self.fused_throughput / self.baseline_throughput

    @property
    def kernel_reduction(self) -> float:
        return 1.0 - self.fused_kernel_count / self.baseline_kernel_count


def fuse_recurrent_layers(graph: LayerGraph) -> LayerGraph:
    """Return a deep copy of ``graph`` with every recurrent layer fused.

    Raises:
        ValueError: if a recurrent layer lacks geometry attributes.
    """
    fused = copy.deepcopy(graph)
    for layer in fused.layers:
        if layer.kind not in _RECURRENT_KINDS:
            continue
        geometry = layer.attributes
        required = ("batch", "seq_len", "input_size", "hidden", "gates", "directions")
        missing = [key for key in required if key not in geometry]
        if missing:
            raise ValueError(
                f"recurrent layer {layer.name!r} lacks geometry {missing}"
            )
        batch = geometry["batch"]
        steps = geometry["seq_len"] * geometry["directions"]
        input_size = geometry["input_size"]
        hidden = geometry["hidden"]
        gh = geometry["gates"] * hidden
        pointwise = _POINTWISE[layer.kind]

        forward = [
            # One big input projection across all timesteps and directions…
            gemm(batch * steps, gh, input_size, name="cudnn_rnn_fused_input_sgemm"),
        ]
        # …then back-to-back recurrent GEMMs with no host round trips…
        forward.extend(
            gemm(batch, gh, hidden, name="cudnn_rnn_fused_recurrent_sgemm")
            for _ in range(steps)
        )
        # …and one fused pointwise kernel covering every step.
        forward.append(pointwise(batch * steps, hidden, backward=False))

        backward = [pointwise(batch * steps, hidden, backward=True)]
        backward.extend(
            gemm(batch, hidden, gh, name="cudnn_rnn_fused_recurrent_sgemm_bw")
            for _ in range(steps)
        )
        backward.append(
            gemm(
                batch * steps, input_size, gh, name="cudnn_rnn_fused_input_sgemm_bw"
            )
        )
        backward.append(
            gemm(
                input_size + hidden,
                gh,
                batch * steps,
                name="cudnn_rnn_fused_wgrad_sgemm",
            )
        )
        layer.forward_kernels = forward
        layer.backward_kernels = backward
    # Any stray host syncs outside recurrent layers are cleared too: the
    # fused path keeps the whole iteration on-device.
    for layer in fused.layers:
        layer.forward_kernels = [
            replace(k, host_sync=False) if k.host_sync else k
            for k in layer.forward_kernels
        ]
        layer.backward_kernels = [
            replace(k, host_sync=False) if k.host_sync else k
            for k in layer.backward_kernels
        ]
    return fused


def evaluate_fusion(session, batch_size: int) -> FusionResult:
    """Measure the fused-RNN rewrite on one session configuration.

    Both sides come from compiled plans: the baseline from the session's
    plan cache, the rewrite through :class:`FusedRNNTransform` (which also
    enforces the FLOP-preservation contract this module promises)."""
    from repro.plan.transform import FusedRNNTransform

    baseline_plan = session.compile(batch_size)
    fused_plan = FusedRNNTransform().apply(baseline_plan)
    baseline = session.execute_plan(baseline_plan)
    fused = session.execute_plan(fused_plan)
    return FusionResult(
        model=session.spec.display_name,
        framework=session.framework.name,
        batch_size=batch_size,
        baseline_throughput=baseline.throughput,
        fused_throughput=fused.throughput,
        baseline_gpu_utilization=baseline.gpu_utilization,
        fused_gpu_utilization=fused.gpu_utilization,
        baseline_kernel_count=len(baseline.kernel_timings),
        fused_kernel_count=len(fused.kernel_timings),
    )
