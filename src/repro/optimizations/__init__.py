"""The paper's optimization recommendations, as executable what-ifs.

Section 4 and the conclusion point future work at three targets; each gets
a quantitative model here:

- **feature-map memory** ("any optimization that wants to reduce the memory
  footprint of training should, first of all, focus on feature maps",
  Obs. 11/12) — :mod:`repro.optimizations.offload` implements vDNN-style
  offloading of stashed feature maps to host memory (Rhu et al. [83]), and
  :mod:`repro.optimizations.precision` the FP16 storage variant;
- **RNN layer efficiency** ("further research should be done in how to
  optimize LSTM cells on GPUs", Obs. 5/7) —
  :mod:`repro.optimizations.fusion` rewrites per-timestep LSTM kernels into
  cuDNN-style fused layers and measures the gain;
- **freed memory reinvestment** (Obs. 12: use it for "larger workspace ...
  and deeper models") — :mod:`repro.optimizations.depth` finds the deepest
  residual network that fits at a given batch size.
"""

from repro.optimizations.offload import FeatureMapOffload, OffloadPlan
from repro.optimizations.precision import HalfPrecisionStorage, PrecisionPlan
from repro.optimizations.fusion import FusionResult, fuse_recurrent_layers
from repro.optimizations.depth import DepthPlan, deepest_resnet_that_fits

__all__ = [
    "FeatureMapOffload",
    "OffloadPlan",
    "HalfPrecisionStorage",
    "PrecisionPlan",
    "fuse_recurrent_layers",
    "FusionResult",
    "deepest_resnet_that_fits",
    "DepthPlan",
]
