"""Tuned-config persistence in the content-addressed result cache.

A tuned config is a *derived* result: "for this exact workload, under
this exact timing-model code, the best transform pipeline is X".  It is
keyed the same way sweep points are — a SHA-256 over every input the
answer depends on (model, framework, device pair, batch, reference
hyper-parameters, and the code fingerprint widened by the optimization
modules) — and stored in the same
:class:`~repro.engine.cache.ResultCache`.  So retuning an unchanged
workload is a cache hit, and editing a transform (or the compiler, or
the model) moves the key and invalidates exactly the stale answers.
"""

from __future__ import annotations

from repro.engine.keys import (
    code_fingerprint,
    digest,
    fingerprint_cpu,
    fingerprint_framework,
    fingerprint_gpu,
    fingerprint_hyperparameters,
    fingerprint_model,
)
from repro.frameworks.registry import get_framework
from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.models.registry import get_model
from repro.training.hyperparams import MODEL_DEFAULTS

#: Schema of the cached tuned-config record; bump to invalidate them all.
TUNED_SCHEMA = 1


def tuned_key(
    model,
    framework,
    batch_size: int,
    gpu: GPUSpec = QUADRO_P4000,
    cpu: CPUSpec = XEON_E5_2680,
) -> str:
    """Content address of one workload's tuned config.

    Deliberately distinct from :func:`repro.engine.keys.point_key` (the
    ``kind`` field sees to that): a tuned config and a sweep point about
    the same workload coexist in one cache without colliding.
    """
    spec = get_model(model) if isinstance(model, str) else model
    personality = (
        get_framework(framework) if isinstance(framework, str) else framework
    )
    return digest(
        {
            "kind": "tuned-config",
            "schema": TUNED_SCHEMA,
            "model": fingerprint_model(spec),
            "framework": fingerprint_framework(personality),
            "gpu": fingerprint_gpu(gpu),
            "cpu": fingerprint_cpu(cpu),
            "batch_size": int(batch_size),
            "hyperparameters": fingerprint_hyperparameters(
                MODEL_DEFAULTS.get(spec.key)
            ),
            "code": code_fingerprint(spec.build.__module__, with_transforms=True),
        }
    )


def store_tuned(cache, result, spec=None, gpu: GPUSpec = QUADRO_P4000, cpu: CPUSpec = XEON_E5_2680) -> str:
    """Persist one :class:`~repro.tune.search.TuneResult`; returns its key."""
    model = spec if spec is not None else result.model
    key = tuned_key(model, result.framework, result.batch_size, gpu=gpu, cpu=cpu)
    config = {
        "kind": "tuned-config",
        "model": result.model,
        "framework": result.framework,
        "batch_size": result.batch_size,
        "gpu": gpu.name,
        "cpu": cpu.name,
    }
    cache.store(key, result.to_doc(), config=config)
    return key


def load_tuned(
    cache,
    model,
    framework,
    batch_size: int,
    gpu: GPUSpec = QUADRO_P4000,
    cpu: CPUSpec = XEON_E5_2680,
) -> dict | None:
    """The cached tuned-config record for one workload, or ``None``.

    A record that is not a tuned-config document (key collision,
    corruption the cache's own validation missed) is treated as absent
    rather than trusted.
    """
    if cache is None:
        return None
    doc = cache.load(tuned_key(model, framework, batch_size, gpu=gpu, cpu=cpu))
    if not isinstance(doc, dict) or doc.get("kind") != "tuned-config":
        return None
    return doc
