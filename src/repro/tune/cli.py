"""CLI surface of the autotuner: the ``tbd tune`` subcommand."""

from __future__ import annotations

from repro.engine.cache import ResultCache
from repro.engine.keys import canonical_json
from repro.hardware.devices import get_gpu


def register_tune_command(subparsers) -> None:
    """Add ``tbd tune`` to the top-level subparser set."""
    tune = subparsers.add_parser(
        "tune",
        help="search transform pipelines for the fastest fitting config",
    )
    tune.add_argument("model")
    tune.add_argument("-f", "--framework", default="tensorflow")
    tune.add_argument("-b", "--batch", type=int, default=None)
    tune.add_argument("-g", "--gpu", default=None, help="p4000 | 'titan xp' | gtx580")
    tune.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max candidate pipelines to score (default: the full enumeration)",
    )
    tune.add_argument(
        "--seed", type=int, default=0, help="noise seed for the confirming A/B run"
    )
    tune.add_argument(
        "--alpha", type=float, default=0.05, help="significance level of the A/B run"
    )
    tune.add_argument(
        "--min-effect",
        type=float,
        default=0.01,
        help="practical-significance floor of the A/B run",
    )
    tune.add_argument(
        "--samples",
        type=int,
        default=None,
        help="pin the A/B samples per side (default: adaptive)",
    )
    tune.add_argument(
        "--no-confirm",
        action="store_true",
        help="cost-model ranking only; skip the interleaved A/B confirmation",
    )
    tune.add_argument(
        "--retune",
        action="store_true",
        help="ignore a cached tuned config and search again",
    )
    tune.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default $TBD_CACHE_DIR or .tbd-cache)",
    )
    tune.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or persist tuned configs",
    )
    tune.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full tune record as canonical JSON",
    )
    tune.set_defaults(func=cmd_tune)


def cmd_tune(args) -> int:
    """Handler for ``tbd tune``."""
    from repro.bench.noise import NoiseModel
    from repro.bench.runner import InterleavedRunner
    from repro.tune.search import Autotuner

    gpu = get_gpu(args.gpu) if args.gpu else None
    kwargs = {"gpu": gpu} if gpu else {}
    tuner = Autotuner(
        args.model, args.framework, batch_size=args.batch, **kwargs
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = InterleavedRunner(
        noise=NoiseModel(seed=args.seed),
        alpha=args.alpha,
        min_effect=args.min_effect,
    )
    result = tuner.tune(
        cache=cache,
        budget=args.budget,
        confirm=not args.no_confirm,
        retune=args.retune,
        runner=runner,
        samples=args.samples,
    )
    print(result.format_report())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(result.to_doc()))
            handle.write("\n")
        print(f"wrote {args.report}")
    return 0
