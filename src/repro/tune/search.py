"""The cost-model-guided transform autotuner.

TorchDynamo's optimization pipeline enumerates candidate rewrites, times
each against a baseline, and picks winners per workload.  This module is
that loop against the simulated stack, where "timing a candidate" is
nearly free:

1. **Enumerate.**  Every combination of at most one transform per family
   (fused RNN, ResNet depth, feature-map offload, FP16 storage),
   restricted to families that *apply* to the workload — fusing buys
   nothing without recurrent layers, and the depth rewrite only makes
   sense on a residual network.
2. **Cost-model.**  Each candidate pipeline compiles through
   :meth:`~repro.training.session.TrainingSession.compile_transformed`
   (symbolic trace once, specialize per batch, rewrite per pipeline,
   shared-prefix plans memoized), and is scored by the compiled plan's
   makespan with its allocation-replay peak as the tie-break.  Candidates
   whose transformed plan exceeds GPU memory are pruned — the same
   analytic boundary :meth:`CompiledPlan.fits` gives the OOM sweeps.
3. **Confirm.**  The best candidate that strictly beats the baseline is
   re-measured by the interleaved A/B runner under the seeded noise
   model, so the recorded winner carries a p-value, not just a model
   prediction.
4. **Persist.**  Winners land in the content-addressed result cache
   (:mod:`repro.tune.store`), keyed over everything the tuned choice
   depends on — so retuning an unchanged workload is a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.models.registry import ModelSpec, get_model
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.plan.pipeline import parse_transform_spec
from repro.training.session import TrainingSession

#: Offload stash fractions the search tries (coarse ladder: a light and a
#: heavy stash; finer fractions move peak bytes, not makespan).
OFFLOAD_FRACTIONS = (0.25, 0.5)
#: Conv4 block counts the depth search tries (the paper's Observation 12
#: reinvests freed memory in depth; 6 is stock ResNet-50, 23 is
#: ResNet-101, 36 is ResNet-152).
DEPTH_BLOCKS = (23, 36)
#: Layer kinds the fused-RNN rewrite can act on.
_RECURRENT_KINDS = ("lstm", "gru", "rnn")


@dataclass(frozen=True)
class Candidate:
    """One scored pipeline: the canonical spec plus its cost-model read."""

    spec: str
    makespan_s: float
    peak_bytes: float
    fits: bool

    def to_doc(self) -> dict:
        return {
            "spec": self.spec,
            "makespan_s": self.makespan_s,
            "peak_bytes": self.peak_bytes,
            "fits": self.fits,
        }


@dataclass
class TuneResult:
    """Everything one tuning run decided (and why)."""

    model: str
    framework: str
    gpu: str
    batch_size: int
    baseline_makespan_s: float
    baseline_peak_bytes: float
    baseline_fits: bool
    candidates: tuple = ()  # ranked best-first, memory-fitting only
    pruned: int = 0
    winner: Candidate | None = None
    confirmation: dict | None = None
    cached: bool = False

    @property
    def modeled_speedup(self) -> float:
        """baseline/winner makespan ratio (1.0 when nothing won)."""
        if self.winner is None or self.winner.makespan_s <= 0.0:
            return 1.0
        return self.baseline_makespan_s / self.winner.makespan_s

    def to_doc(self) -> dict:
        """Canonical-JSON-ready record (the cached tuned-config point)."""
        return {
            "kind": "tuned-config",
            "model": self.model,
            "framework": self.framework,
            "gpu": self.gpu,
            "batch_size": self.batch_size,
            "baseline_makespan_s": self.baseline_makespan_s,
            "baseline_peak_bytes": self.baseline_peak_bytes,
            "baseline_fits": self.baseline_fits,
            "candidates": [candidate.to_doc() for candidate in self.candidates],
            "pruned": self.pruned,
            "winner": None if self.winner is None else self.winner.to_doc(),
            "confirmation": self.confirmation,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TuneResult":
        """Rebuild a result from its cached record."""
        winner = doc.get("winner")
        return cls(
            model=doc["model"],
            framework=doc["framework"],
            gpu=doc["gpu"],
            batch_size=int(doc["batch_size"]),
            baseline_makespan_s=float(doc["baseline_makespan_s"]),
            baseline_peak_bytes=float(doc["baseline_peak_bytes"]),
            baseline_fits=bool(doc["baseline_fits"]),
            candidates=tuple(
                Candidate(**candidate) for candidate in doc.get("candidates", ())
            ),
            pruned=int(doc.get("pruned", 0)),
            winner=None if winner is None else Candidate(**winner),
            confirmation=doc.get("confirmation"),
            cached=True,
        )

    def format_report(self) -> str:
        source = "cached" if self.cached else "searched"
        lines = [
            f"tune: {self.model} on {self.framework}, b={self.batch_size}, "
            f"{self.gpu} ({source})",
            f"  baseline: {self.baseline_makespan_s * 1e3:8.3f} ms, "
            f"{self.baseline_peak_bytes / 2**30:6.2f} GiB"
            + ("" if self.baseline_fits else "  [does not fit]"),
        ]
        for candidate in self.candidates:
            marker = "*" if self.winner and candidate.spec == self.winner.spec else " "
            lines.append(
                f"  {marker} {candidate.spec:28s} "
                f"{candidate.makespan_s * 1e3:8.3f} ms, "
                f"{candidate.peak_bytes / 2**30:6.2f} GiB"
            )
        if self.pruned:
            lines.append(f"  ({self.pruned} candidate(s) pruned: exceed GPU memory)")
        if self.winner is None:
            lines.append("  no pipeline beats the baseline; keeping it")
        else:
            lines.append(
                f"  winner: {self.winner.spec} "
                f"(modeled speedup x{self.modeled_speedup:.3f})"
            )
            if self.confirmation is not None:
                lines.append(
                    f"  confirmed: speedup x{self.confirmation['speedup']:.3f} "
                    f"p(faster)={self.confirmation['p_improvement']:.4f} "
                    f"n={self.confirmation['samples_per_side']} "
                    f"-> {self.confirmation['verdict']}"
                )
        return "\n".join(lines)


class Autotuner:
    """Cost-model-guided pipeline search for one (model, framework, GPU,
    batch) point."""

    def __init__(
        self,
        model,
        framework: str = "tensorflow",
        gpu: GPUSpec = QUADRO_P4000,
        cpu: CPUSpec = XEON_E5_2680,
        batch_size: int | None = None,
    ):
        self.spec: ModelSpec = get_model(model) if isinstance(model, str) else model
        self.framework = framework
        self.gpu = gpu
        self.cpu = cpu
        self.batch_size = (
            int(batch_size) if batch_size is not None else self.spec.reference_batch
        )
        # Memory checking is the tuner's own job (candidates are *scored*
        # on whether they fit, not rejected by an exception).
        self._session = TrainingSession(
            self.spec, framework, gpu=gpu, cpu=cpu, check_memory=False
        )

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    def candidate_specs(self) -> list:
        """Every applicable pipeline: at most one transform per family,
        excluding the empty combination.  Families are emitted in
        canonical rank order, so the joined text is already normalized."""
        graph = self._session.compile(self.batch_size).graph
        recurrent = any(layer.kind in _RECURRENT_KINDS for layer in graph.layers)
        residual = self.spec.key.startswith("resnet")
        families = [
            ["", "fused_rnn"] if recurrent else [""],
            [""] + [f"depth:{blocks}" for blocks in DEPTH_BLOCKS] if residual else [""],
            [""] + [f"offload:{fraction:g}" for fraction in OFFLOAD_FRACTIONS],
            ["", "fp16"],
        ]
        specs = []
        for combination in product(*families):
            tokens = [token for token in combination if token]
            if tokens:
                specs.append("+".join(tokens))
        return specs

    # ------------------------------------------------------------------
    # cost-model ranking
    # ------------------------------------------------------------------

    @staticmethod
    def _rank_key(candidate: Candidate):
        """Total order of the search: makespan first, allocation peak as
        the tie-break (equal-speed candidates should prefer headroom),
        spec text last for determinism."""
        return (candidate.makespan_s, candidate.peak_bytes, candidate.spec)

    def _score(self, spec_text: str) -> Candidate:
        """Compile one candidate pipeline and read its cost model."""
        with trace_span(
            "tune.candidate",
            model=self.spec.key,
            framework=self.framework,
            batch_size=self.batch_size,
            pipeline=spec_text,
        ) as span:
            pipeline = parse_transform_spec(spec_text)
            plan = self._session.compile_transformed(self.batch_size, pipeline)
            peak = plan.memory.peak_total
            candidate = Candidate(
                spec=pipeline.canonical,
                makespan_s=plan.makespan_s,
                peak_bytes=peak,
                fits=plan.fits(self.gpu.memory_bytes),
            )
            span.set_attributes(
                makespan_s=candidate.makespan_s, fits=candidate.fits
            )
        return candidate

    def rank(self, budget: int | None = None) -> TuneResult:
        """Score every candidate pipeline against the baseline plan.

        ``budget`` caps how many candidates are evaluated (the CI smoke
        job runs with a small one); the full enumeration is the default.
        Returns a :class:`TuneResult` whose ``winner`` is the best
        memory-fitting candidate that strictly beats the baseline under
        :meth:`_rank_key` — or ``None``, in which case the untransformed
        plan is the tuned config.
        """
        with trace_span(
            "tune.search",
            model=self.spec.key,
            framework=self.framework,
            batch_size=self.batch_size,
            gpu=self.gpu.name,
        ) as span:
            baseline_plan = self._session.compile(self.batch_size)
            baseline = Candidate(
                spec="",
                makespan_s=baseline_plan.makespan_s,
                peak_bytes=baseline_plan.memory.peak_total,
                fits=baseline_plan.fits(self.gpu.memory_bytes),
            )
            specs = self.candidate_specs()
            if budget is not None:
                specs = specs[: max(0, int(budget))]
            scored = [self._score(spec_text) for spec_text in specs]
            fitting = sorted(
                (candidate for candidate in scored if candidate.fits),
                key=self._rank_key,
            )
            pruned = len(scored) - len(fitting)
            winner = None
            if fitting and self._rank_key(fitting[0]) < self._rank_key(baseline):
                winner = fitting[0]
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "tune_candidates_total", {"model": self.spec.key}
                ).inc(len(scored))
                if pruned:
                    metrics.counter(
                        "tune_oom_pruned_total", {"model": self.spec.key}
                    ).inc(pruned)
            span.set_attributes(
                candidates=len(scored),
                pruned=pruned,
                winner=winner.spec if winner else "",
            )
        return TuneResult(
            model=self.spec.key,
            framework=self.framework,
            gpu=self.gpu.name,
            batch_size=self.batch_size,
            baseline_makespan_s=baseline.makespan_s,
            baseline_peak_bytes=baseline.peak_bytes,
            baseline_fits=baseline.fits,
            candidates=tuple(fitting),
            pruned=pruned,
            winner=winner,
        )

    # ------------------------------------------------------------------
    # confirmation + persistence
    # ------------------------------------------------------------------

    def confirm(self, result: TuneResult, runner=None, samples=None) -> TuneResult:
        """Re-measure the winner against the baseline with the interleaved
        A/B runner; attaches the :class:`~repro.bench.runner.BenchResult`
        document to the result.  A winner the runner cannot distinguish
        from baseline keeps its cost-model rank but records the verdict —
        pure memory wins are expected to look indistinguishable in time.
        """
        if result.winner is None:
            return result
        from repro.bench.runner import InterleavedRunner
        from repro.bench.subjects import PlanSubject

        if runner is None:
            runner = InterleavedRunner()
        baseline_plan = self._session.compile(self.batch_size)
        tuned_plan = self._session.compile_transformed(
            self.batch_size, parse_transform_spec(result.winner.spec)
        )
        comparison = runner.run(
            PlanSubject("baseline", baseline_plan),
            PlanSubject(result.winner.spec, tuned_plan),
            name=f"tune/{self.spec.key}/{self.framework}/b{self.batch_size}",
            samples=samples,
        )
        result.confirmation = comparison.to_doc()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "tune_confirmations_total", {"verdict": comparison.verdict}
            ).inc()
        return result

    def tune(
        self,
        cache=None,
        budget: int | None = None,
        confirm: bool = True,
        retune: bool = False,
        runner=None,
        samples=None,
    ) -> TuneResult:
        """The headline entry point: cached lookup, else rank + confirm +
        persist.

        ``cache`` is a :class:`~repro.engine.cache.ResultCache` (or
        ``None`` to skip persistence); ``retune`` forces a fresh search
        even when a tuned config is cached.
        """
        from repro.tune import store as tune_store

        if cache is not None and not retune:
            cached = tune_store.load_tuned(
                cache,
                self.spec,
                self.framework,
                self.batch_size,
                gpu=self.gpu,
                cpu=self.cpu,
            )
            if cached is not None:
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter("tune_cache_hits_total").inc()
                return TuneResult.from_doc(cached)
        result = self.rank(budget=budget)
        if confirm:
            result = self.confirm(result, runner=runner, samples=samples)
        if cache is not None:
            tune_store.store_tuned(
                cache, result, spec=self.spec, gpu=self.gpu, cpu=self.cpu
            )
        return result
