"""Cost-model-guided transform autotuning (``tbd tune``).

- :mod:`repro.tune.search` enumerates applicable transform pipelines per
  (model, framework, GPU, batch), scores each candidate's compiled plan
  (makespan, allocation peak, analytic memory fit), and confirms the
  winner with the interleaved A/B runner;
- :mod:`repro.tune.store` persists winners in the content-addressed
  result cache so retuning an unchanged workload is free;
- :mod:`repro.tune.cli` is the ``tbd tune`` subcommand.
"""

from repro.tune.search import (
    Autotuner,
    Candidate,
    DEPTH_BLOCKS,
    OFFLOAD_FRACTIONS,
    TuneResult,
)
from repro.tune.store import TUNED_SCHEMA, load_tuned, store_tuned, tuned_key

__all__ = [
    "Autotuner",
    "Candidate",
    "DEPTH_BLOCKS",
    "OFFLOAD_FRACTIONS",
    "TUNED_SCHEMA",
    "TuneResult",
    "load_tuned",
    "store_tuned",
    "tuned_key",
]
