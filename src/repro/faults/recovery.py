"""Recovery machinery: what the simulated cluster *does* about faults.

Three policies compose into a :class:`RecoveryConfig`:

- :class:`BackoffPolicy` — retry transient exchange failures (timeouts,
  link outages) with exponential backoff; a fault that outlives
  ``max_retries`` attempts raises :class:`UnrecoverableFaultError`.
- :class:`CheckpointPolicy` — periodic checkpoints bound the work a crash
  destroys; restart replays from the last checkpoint on the surviving
  (elastically shrunk) cluster.
- straggler-aware bucket rebalancing — when a straggler stretches the
  backward pass, the layer-wise gradient push (the plan's
  ``gradient_schedule()``) is re-bucketed so the extra compute time hides
  extra communication; :func:`plan_rebalance` quantifies the decision.

Every policy is pure arithmetic over the fault plan and the compiled
plan's gradient schedule — no randomness, no wall clock — so recovery is
as deterministic as the faults themselves.
"""

from __future__ import annotations

from dataclasses import dataclass


class UnrecoverableFaultError(RuntimeError):
    """A fault the configured recovery policies cannot survive.

    Carries the step and fault kind so fault-matrix tests (and operators)
    can assert on *why* the run died rather than parsing messages.
    """

    def __init__(self, message: str, step: int = 0, kind: str = "unknown"):
        super().__init__(message)
        self.step = step
        self.kind = kind


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry with exponential backoff: attempt ``i`` waits
    ``base_s * multiplier**i`` before retrying, up to ``max_retries``."""

    base_s: float = 0.5
    multiplier: float = 2.0
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("backoff base must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max retries cannot be negative")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt index cannot be negative")
        return self.base_s * self.multiplier**attempt

    def total_delay_s(self, failures: int) -> float:
        """Accumulated backoff across ``failures`` consecutive failures."""
        return sum(self.delay_s(attempt) for attempt in range(failures))


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint every ``interval_steps``; a crash rolls progress back to
    the last checkpoint and pays ``restore_s`` to reload it."""

    interval_steps: int = 10
    save_s: float = 0.0
    restore_s: float = 5.0

    def __post_init__(self) -> None:
        if self.interval_steps < 1:
            raise ValueError("checkpoint interval must be >= 1 step")
        if self.save_s < 0 or self.restore_s < 0:
            raise ValueError("checkpoint costs cannot be negative")

    def last_checkpoint(self, step: int) -> int:
        """The most recent checkpointed step at or before ``step``."""
        if step < 0:
            raise ValueError("step cannot be negative")
        return (step // self.interval_steps) * self.interval_steps


@dataclass(frozen=True)
class RecoveryConfig:
    """The full recovery posture of one fault-tolerant run."""

    backoff: BackoffPolicy = BackoffPolicy()
    checkpoint: CheckpointPolicy = CheckpointPolicy()
    rebalance: bool = True
    #: Simulated seconds to detect a dead worker before restarting.
    detection_s: float = 2.0
    #: Simulated seconds one failed exchange attempt burns before the
    #: retry machinery declares it timed out (link outages).
    exchange_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.detection_s < 0:
            raise ValueError("detection time cannot be negative")
        if self.exchange_timeout_s <= 0:
            raise ValueError("exchange timeout must be positive")


@dataclass(frozen=True)
class RebalanceDecision:
    """One straggler-aware re-bucketing of the layer-wise gradient push."""

    buckets: int
    window_s: float
    exposed_before_s: float
    exposed_after_s: float

    @property
    def hidden_s(self) -> float:
        """Exchange time the rebalance newly overlaps with compute."""
        return max(0.0, self.exposed_before_s - self.exposed_after_s)


def plan_rebalance(
    schedule,
    base_compute_s: float,
    straggled_compute_s: float,
    exchange_s: float,
    exposed_s: float,
) -> RebalanceDecision:
    """Re-bucket the gradient push against a straggler's stretched timeline.

    ``schedule`` is the compiled plan's ``gradient_ready_times()`` — the
    per-layer moments the backward pass finishes each gradient.  A
    straggler stretches those moments by ``straggled_compute_s /
    base_compute_s``, opening a wider window in which buckets can be
    pushed while upstream layers still compute; the rebalanced exchange
    hides up to the straggle slack (``straggled - base``) on top of
    whatever the baseline overlap already hid.
    """
    if base_compute_s <= 0:
        raise ValueError("base compute time must be positive")
    if straggled_compute_s < base_compute_s:
        raise ValueError("straggled compute cannot be faster than the base")
    slack_s = straggled_compute_s - base_compute_s
    return RebalanceDecision(
        buckets=max(1, len(schedule)),
        window_s=slack_s,
        exposed_before_s=exposed_s,
        exposed_after_s=max(0.0, exposed_s - slack_s),
    )
