"""Deterministic fault injection and elastic recovery for the simulated
cluster.

The layer splits into four pieces:

- :mod:`repro.faults.plan` — the fault-plan IR: seed-driven straggler,
  link-degradation, crash, and allreduce-timeout events on a
  step-indexed timeline.
- :mod:`repro.faults.recovery` — what the cluster does about them:
  exponential backoff, checkpoint/restart with elastic shrink, and
  straggler-aware bucket rebalancing.
- :mod:`repro.faults.trainer` — the run simulator that threads a
  data-parallel run through a plan, emitting spans and counters.
- :mod:`repro.faults.spec` — the compact ``--faults`` string the CLI and
  the sweep engine's cacheable grid dimension share.
"""

from repro.faults.plan import (
    AllReduceTimeout,
    CLEAN_STEP,
    FaultPlan,
    LinkFault,
    StepConditions,
    StragglerFault,
    WorkerCrash,
)
from repro.faults.recovery import (
    BackoffPolicy,
    CheckpointPolicy,
    RebalanceDecision,
    RecoveryConfig,
    UnrecoverableFaultError,
    plan_rebalance,
)
from repro.faults.spec import (
    DEFAULT_STEPS,
    FaultScenario,
    FaultSpecError,
    parse_fault_spec,
)
from repro.faults.trainer import (
    FaultTolerantTrainer,
    FaultTrainingResult,
    RunEvent,
)

__all__ = [
    "AllReduceTimeout",
    "BackoffPolicy",
    "CLEAN_STEP",
    "CheckpointPolicy",
    "DEFAULT_STEPS",
    "FaultPlan",
    "FaultScenario",
    "FaultSpecError",
    "FaultTolerantTrainer",
    "FaultTrainingResult",
    "LinkFault",
    "RebalanceDecision",
    "RecoveryConfig",
    "RunEvent",
    "StepConditions",
    "StragglerFault",
    "UnrecoverableFaultError",
    "WorkerCrash",
    "parse_fault_spec",
    "plan_rebalance",
]
