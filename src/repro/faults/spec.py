"""The ``--faults`` spec mini-language.

A fault scenario is one compact, semicolon-separated string — the form a
CLI flag or a sweep-grid dimension can carry, and exactly what the result
cache hashes:

``cluster=2M1G:1gbe; steps=60; seed=3; straggler=0x1.5@10:40;``
``degrade=bw0.5+loss0.1@20:50; crash=1@30; timeout=2x0.5@15``

Fields (any order, whitespace ignored, keys repeatable where sensible):

- ``cluster=<m>M<g>G[:<fabric>]`` — the Fig. 10-style configuration the
  scenario runs on (default ``2M1G:infiniband``).
- ``steps=N`` — scheduled run length (default 50).
- ``seed=N`` — drives the plan's deterministic jitter (default 0).
- ``straggler=<worker>x<factor>@<start>[:<end>]`` — worker slowdown
  window (no end = forever).
- ``degrade=bw<f>[+loss<p>][+lat<seconds>]@<start>[:<end>]`` — link
  degradation window; ``loss1.0`` is a full outage.
- ``crash=<machines>@<step>`` — machine crash.
- ``timeout=<failures>x<seconds>@<step>`` — transient allreduce timeout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.faults.plan import (
    AllReduceTimeout,
    FaultPlan,
    LinkFault,
    StragglerFault,
    WorkerCrash,
)
from repro.hardware.cluster import ClusterSpec, parse_configuration

#: Default scheduled run length when the spec does not say.
DEFAULT_STEPS = 50

_WINDOW_RE = re.compile(r"^(\d+)(?::(\d+)?)?$")
_STRAGGLER_RE = re.compile(r"^(\d+)x([0-9.]+)@(.+)$")
_DEGRADE_PART_RE = re.compile(r"^(bw|loss|lat)([0-9.e-]+)$")
_CRASH_RE = re.compile(r"^(\d+)@(\d+)$")
_TIMEOUT_RE = re.compile(r"^(\d+)x([0-9.]+)@(\d+)$")


class FaultSpecError(ValueError):
    """A ``--faults`` string that does not parse."""


@dataclass(frozen=True)
class FaultScenario:
    """A parsed ``--faults`` spec: the cluster it runs on, the scheduled
    run length, the plan itself, and the raw text (the cache dimension)."""

    cluster: ClusterSpec
    steps: int
    plan: FaultPlan
    text: str

    def describe(self) -> str:
        """Multi-line human rendering of the scenario."""
        return (
            f"scenario: {self.cluster.name}, {self.steps} step(s)\n"
            f"{self.plan.describe()}"
        )


def _parse_window(text: str, field: str) -> tuple:
    match = _WINDOW_RE.match(text)
    if not match:
        raise FaultSpecError(
            f"bad {field} window {text!r}; expected '<start>', '<start>:' "
            "or '<start>:<end>'"
        )
    start = int(match.group(1))
    end = int(match.group(2)) if match.group(2) is not None else None
    return start, end


def _parse_straggler(value: str) -> StragglerFault:
    match = _STRAGGLER_RE.match(value)
    if not match:
        raise FaultSpecError(
            f"bad straggler {value!r}; expected '<worker>x<factor>@<start>[:<end>]'"
        )
    start, end = _parse_window(match.group(3), "straggler")
    return StragglerFault(
        worker=int(match.group(1)),
        factor=float(match.group(2)),
        start_step=start,
        end_step=end,
    )


def _parse_degrade(value: str) -> LinkFault:
    if "@" not in value:
        raise FaultSpecError(
            f"bad degrade {value!r}; expected 'bw<f>[+loss<p>][+lat<s>]@<start>[:<end>]'"
        )
    parts_text, window_text = value.rsplit("@", 1)
    start, end = _parse_window(window_text, "degrade")
    bandwidth, loss, latency = 1.0, 0.0, 0.0
    for part in parts_text.split("+"):
        match = _DEGRADE_PART_RE.match(part)
        if not match:
            raise FaultSpecError(
                f"bad degrade component {part!r}; expected bw<f>, loss<p> or lat<s>"
            )
        amount = float(match.group(2))
        if match.group(1) == "bw":
            bandwidth = amount
        elif match.group(1) == "loss":
            loss = amount
        else:
            latency = amount
    return LinkFault(
        bandwidth_factor=bandwidth,
        packet_loss=loss,
        extra_latency_s=latency,
        start_step=start,
        end_step=end,
    )


def _parse_crash(value: str) -> WorkerCrash:
    match = _CRASH_RE.match(value)
    if not match:
        raise FaultSpecError(f"bad crash {value!r}; expected '<machines>@<step>'")
    return WorkerCrash(step=int(match.group(2)), machines=int(match.group(1)))


def _parse_timeout(value: str) -> AllReduceTimeout:
    match = _TIMEOUT_RE.match(value)
    if not match:
        raise FaultSpecError(
            f"bad timeout {value!r}; expected '<failures>x<seconds>@<step>'"
        )
    return AllReduceTimeout(
        step=int(match.group(3)),
        failures=int(match.group(1)),
        timeout_s=float(match.group(2)),
    )


def parse_fault_spec(text: str) -> FaultScenario:
    """Parse one ``--faults`` string into a :class:`FaultScenario`.

    Raises:
        FaultSpecError: on any malformed field (with the offending piece
            named, never a bare traceback from a downstream constructor).
    """
    cluster_label, fabric = "2M1G", "infiniband"
    steps, seed = DEFAULT_STEPS, 0
    events: list = []
    for raw_field in text.split(";"):
        field = raw_field.strip()
        if not field:
            continue
        if "=" not in field:
            raise FaultSpecError(f"bad fault field {field!r}; expected key=value")
        key, value = (piece.strip() for piece in field.split("=", 1))
        try:
            if key == "cluster":
                cluster_label, _, fabric_part = value.partition(":")
                fabric = fabric_part or "infiniband"
            elif key == "steps":
                steps = int(value)
            elif key == "seed":
                seed = int(value)
            elif key == "straggler":
                events.append(_parse_straggler(value))
            elif key == "degrade":
                events.append(_parse_degrade(value))
            elif key == "crash":
                events.append(_parse_crash(value))
            elif key == "timeout":
                events.append(_parse_timeout(value))
            else:
                raise FaultSpecError(f"unknown fault field {key!r}")
        except FaultSpecError:
            raise
        except (ValueError, KeyError) as exc:
            raise FaultSpecError(f"bad fault field {field!r}: {exc}") from exc
    if steps < 1:
        raise FaultSpecError(f"steps must be >= 1, got {steps}")
    try:
        cluster = parse_configuration(cluster_label, fabric=fabric)
    except (ValueError, KeyError) as exc:
        raise FaultSpecError(f"bad cluster {cluster_label!r}: {exc}") from exc
    return FaultScenario(
        cluster=cluster,
        steps=steps,
        plan=FaultPlan(events=tuple(events), seed=seed),
        text=text,
    )
