"""The fault-tolerant training-run simulator.

:class:`FaultTolerantTrainer` steps a data-parallel run through a
:class:`~repro.faults.plan.FaultPlan`, applying the recovery policies of
a :class:`~repro.faults.recovery.RecoveryConfig`:

- **stragglers** stretch the synchronous barrier; when rebalancing is
  on, the layer-wise gradient push (read from the compiled plan's
  ``gradient_schedule()``) is re-bucketed so the straggle slack hides
  extra communication;
- **link degradation** re-prices the exchange over a
  :meth:`~repro.hardware.cluster.ClusterSpec.with_degraded_link`
  cluster; a full outage triggers retry-with-exponential-backoff, and
  an outage that outlives the retry budget raises
  :class:`~repro.faults.recovery.UnrecoverableFaultError`;
- **crashes** waste the partial step, pay detection plus
  checkpoint-restore, roll progress back to the last checkpoint, and
  elastically shrink the cluster to the survivors — losing every
  machine is unrecoverable;
- **transient allreduce timeouts** burn ``failures`` attempts plus
  backoff before the retry succeeds.

The simulation is pure arithmetic over one baseline
:class:`~repro.distributed.data_parallel.DistributedProfile`: per-step
costs are memoized per (surviving machines, resolved conditions), and
once the plan's last boundary has passed the remaining steps are charged
in closed form — a run can never hang, it either finishes or raises the
typed error.  Every fault and recovery action emits a span and counters,
and the empty plan reproduces the plain trainer's numbers bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import IterationMetrics, cpu_utilization
from repro.distributed.data_parallel import COMM_OVERLAP, DataParallelTrainer
from repro.faults.plan import FaultPlan, StepConditions
from repro.faults.recovery import (
    RebalanceDecision,
    RecoveryConfig,
    UnrecoverableFaultError,
    plan_rebalance,
)
from repro.faults.spec import DEFAULT_STEPS
from repro.hardware.cluster import ClusterSpec
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span


@dataclass(frozen=True)
class RunEvent:
    """One injected fault or recovery action, as the run experienced it."""

    step: int
    kind: str
    action: str
    cost_s: float
    detail: str = ""

    def format_row(self) -> str:
        """One printable log line."""
        return (
            f"step {self.step:>5d}  {self.kind:12s} -> {self.action:12s} "
            f"{self.cost_s:9.3f}s  {self.detail}"
        )


@dataclass(frozen=True)
class _StepCost:
    """Memoized per-step cost under one (machines, conditions) pair."""

    compute_s: float
    exchange_s: float
    exposed_s: float
    iteration_s: float
    samples: float
    rebalance: RebalanceDecision | None = None


@dataclass
class FaultTrainingResult:
    """Everything one fault-tolerant run resolved to."""

    model: str
    framework: str
    configuration: str
    per_gpu_batch: int
    #: Effective steps of progress (fractional when the closed-form tail
    #: stops mid-step on a sample target).
    steps_completed: float
    wall_clock_s: float
    samples: float
    baseline_step_s: float
    baseline_samples_per_step: float
    initial_machines: int
    final_machines: int
    #: Wall-clock seconds spent on faults and recovery, not training.
    lost_s: float = 0.0
    events: list = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Aggregate samples/second over the whole (degraded) run."""
        return self.samples / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    @property
    def baseline_throughput(self) -> float:
        """What the fault-free run would sustain."""
        return self.baseline_samples_per_step / self.baseline_step_s

    @property
    def mean_step_s(self) -> float:
        """Average realized step time, recovery overheads included."""
        if self.steps_completed <= 0:
            return 0.0
        return self.wall_clock_s / self.steps_completed

    @property
    def slowdown(self) -> float:
        """Wall-clock degradation versus the fault-free run (>= 1)."""
        realized = self.throughput
        return self.baseline_throughput / realized if realized > 0 else float("inf")

    @property
    def shrank(self) -> bool:
        """Did elastic recovery lose at least one machine?"""
        return self.final_machines < self.initial_machines

    def event_log(self) -> str:
        """The injected-fault / recovery-action log, one line per event."""
        if not self.events:
            return "no faults injected"
        return "\n".join(event.format_row() for event in self.events)


class FaultTolerantTrainer:
    """Simulates a data-parallel run surviving a :class:`FaultPlan`."""

    def __init__(
        self,
        model: str,
        framework: str,
        cluster: ClusterSpec,
        per_gpu_batch: int,
        plan: FaultPlan | None = None,
        recovery: RecoveryConfig | None = None,
        exchange=None,
    ):
        self.cluster = cluster
        self.per_gpu_batch = per_gpu_batch
        self.plan = plan if plan is not None else FaultPlan.none()
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.trainer = DataParallelTrainer(model, framework, cluster, exchange=exchange)
        #: Fault-free reference iteration (raises ``OutOfMemoryError``
        #: exactly like the plain distributed path when a replica does
        #: not fit its GPU).
        self.baseline = self.trainer.run_iteration(per_gpu_batch)
        self._local = self.trainer.session.run_iteration(per_gpu_batch)
        self._schedule = self.trainer.gradient_schedule(per_gpu_batch)
        compiled = self.trainer.session.compile(per_gpu_batch)
        self._gradient_bytes = compiled.graph.total_weight_bytes
        self._local_iteration_s = self.baseline.compute_time_s
        self._samples_per_worker = (
            self.baseline.samples_per_iteration / self.baseline.worker_count
        )
        self._cost_memo: dict = {}

    # ------------------------------------------------------------------
    # per-step cost under resolved conditions
    # ------------------------------------------------------------------

    def _cluster_for(self, machines: int, conds: StepConditions) -> ClusterSpec:
        cluster = self.cluster
        if machines != cluster.machine_count:
            cluster = cluster.shrink(cluster.machine_count - machines)
        return cluster.with_degraded_link(
            bandwidth_factor=conds.bandwidth_factor,
            packet_loss=conds.packet_loss,
            extra_latency_s=conds.extra_latency_s,
        )

    def _step_cost(self, machines: int, conds: StepConditions) -> _StepCost:
        """One synchronous step with ``machines`` survivors under ``conds``
        — memoized, and byte-identical to the plain
        :class:`DataParallelTrainer` arithmetic when conditions are clean."""
        key = (machines, conds.condition_key)
        cached = self._cost_memo.get(key)
        if cached is not None:
            return cached
        gpus_per_machine = self.cluster.machine.gpu_count
        factor = 1.0
        for worker, straggle in conds.stragglers:
            # Workers on crashed machines no longer straggle anyone.
            if worker < machines * gpus_per_machine:
                factor = max(factor, straggle)
        cluster = self._cluster_for(machines, conds)
        workers = cluster.total_gpus
        compute = self._local_iteration_s * factor
        cost = self.trainer.exchange.cost(self._gradient_bytes, cluster)
        exchange = cost.total_s if workers > 1 else 0.0
        exposed = exchange * (1.0 - COMM_OVERLAP)
        rebalance = None
        if factor > 1.0 and self.recovery.rebalance and exchange > 0.0:
            rebalance = plan_rebalance(
                self._schedule, self._local_iteration_s, compute, exchange, exposed
            )
            exposed = rebalance.exposed_after_s
        result = _StepCost(
            compute_s=compute,
            exchange_s=exchange,
            exposed_s=exposed,
            iteration_s=compute + exposed,
            samples=self._samples_per_worker * workers,
            rebalance=rebalance,
        )
        self._cost_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self, steps: int | None = None) -> FaultTrainingResult:
        """Run ``steps`` synchronous iterations through the fault plan.

        Raises:
            UnrecoverableFaultError: when recovery cannot continue (all
                machines lost, or a transient fault outlives the retry
                budget).  Never hangs: past the plan's last boundary the
                remaining steps are charged in closed form.
        """
        if steps is None:
            steps = DEFAULT_STEPS
        if steps < 1:
            raise ValueError("a run needs at least one step")
        return self._simulate(target_steps=steps, target_samples=None)

    def run_until_samples(self, samples_needed: float) -> FaultTrainingResult:
        """Run until ``samples_needed`` samples have been consumed — the
        elastic time-to-accuracy primitive (fractional tail steps allowed)."""
        if samples_needed <= 0:
            raise ValueError("samples needed must be positive")
        return self._simulate(target_steps=None, target_samples=samples_needed)

    def _simulate(self, target_steps, target_samples) -> FaultTrainingResult:
        span = trace_span(
            "faults.run",
            model=self.baseline.model,
            configuration=self.cluster.name,
            per_gpu_batch=self.per_gpu_batch,
            events=len(self.plan.events),
            seed=self.plan.seed,
        )
        with span:
            result = self._simulate_inner(target_steps, target_samples)
            span.set_attributes(
                steps=result.steps_completed,
                wall_clock_s=result.wall_clock_s,
                slowdown=result.slowdown,
                final_machines=result.final_machines,
            )
        return result

    def _simulate_inner(self, target_steps, target_samples) -> FaultTrainingResult:
        recovery = self.recovery
        plan = self.plan
        machines = self.cluster.machine_count
        step: float = 0
        wall = 0.0
        samples = 0.0
        lost = 0.0
        checkpoint_step = 0
        samples_at_checkpoint = 0.0
        events: list = []
        previous_state = None

        def done() -> bool:
            if target_steps is not None:
                return step >= target_steps
            return samples >= target_samples

        while not done():
            boundary = plan.last_boundary()
            if step >= boundary:
                # Closed-form tail: every point event has fired and the
                # continuous conditions never change again.
                conds = plan.conditions_at(int(step))
                if conds.link_is_out:
                    # Only an open-ended outage can still be active here;
                    # it never drains, so recovery gives up (raises).
                    self._recover_outage(plan, int(step), events.append)
                cost = self._step_cost(machines, conds)
                if target_steps is not None:
                    remaining = target_steps - step
                else:
                    remaining = (target_samples - samples) / cost.samples
                saves = self._checkpoint_saves_in(step, remaining)
                wall += remaining * cost.iteration_s
                wall += saves * recovery.checkpoint.save_s
                samples += remaining * cost.samples
                step += remaining
                break

            conds = plan.conditions_at(int(step))

            if (
                step > 0
                and step % recovery.checkpoint.interval_steps == 0
                and checkpoint_step != step
            ):
                wall += recovery.checkpoint.save_s
                checkpoint_step = int(step)
                samples_at_checkpoint = samples

            if conds.link_is_out:
                cost_s, plan = self._recover_outage(plan, int(step), events.append)
                wall += cost_s
                lost += cost_s
                continue  # re-resolve the step with the outage drained

            if conds.crashes:
                crash = conds.crashes[0]
                cost_s, machines, plan = self._recover_crash(
                    plan, crash, machines, conds, checkpoint_step, events.append
                )
                wall += cost_s
                lost += cost_s
                step = checkpoint_step
                samples = samples_at_checkpoint
                continue  # replay from the checkpoint on the survivors

            for timeout in conds.timeouts:
                cost_s = self._recover_timeout(timeout, events.append)
                wall += cost_s
                lost += cost_s
                plan = self._consume(plan, timeout)

            cost = self._step_cost(machines, conds)
            if (machines, conds.condition_key) != previous_state:
                self._note_conditions(int(step), conds, cost, events.append)
                previous_state = (machines, conds.condition_key)
            wall += cost.iteration_s
            samples += cost.samples
            step += 1

        metrics = get_metrics()
        if metrics.enabled and lost > 0:
            metrics.counter("fault_lost_seconds_total").inc(lost)
        return FaultTrainingResult(
            model=self.baseline.model,
            framework=self.baseline.framework,
            configuration=self.cluster.name,
            per_gpu_batch=self.per_gpu_batch,
            steps_completed=step,
            wall_clock_s=wall,
            samples=samples,
            baseline_step_s=self.baseline.iteration_time_s,
            baseline_samples_per_step=self.baseline.samples_per_iteration,
            initial_machines=self.cluster.machine_count,
            final_machines=machines,
            lost_s=lost,
            events=events,
        )

    def _checkpoint_saves_in(self, start: float, remaining: float) -> int:
        """Checkpoint saves falling inside ``(start, start + remaining]``."""
        if remaining <= 0 or self.recovery.checkpoint.save_s == 0.0:
            return 0
        interval = self.recovery.checkpoint.interval_steps
        return int((start + remaining) // interval) - int(start // interval)

    # ------------------------------------------------------------------
    # recovery actions
    # ------------------------------------------------------------------

    @staticmethod
    def _consume(plan: FaultPlan, event) -> FaultPlan:
        """The plan with one fired point event removed (fires only once)."""
        remaining = tuple(item for item in plan.events if item is not event)
        return FaultPlan(events=remaining, seed=plan.seed)

    def _recover_outage(self, plan: FaultPlan, step: int, record):
        """Retry-with-backoff through a total link outage.

        Returns ``(wall cost, plan with the drained outages consumed)``,
        or raises when the outage outlives the retry budget.
        """
        backoff = self.recovery.backoff
        horizon = plan.outage_until(step)
        if horizon is None:
            raise UnrecoverableFaultError(
                f"link outage at step {step} never ends; gave up after "
                f"{backoff.max_retries} retries",
                step=step,
                kind="link-outage",
            )
        attempts = max(1, horizon - step)
        if attempts > backoff.max_retries:
            raise UnrecoverableFaultError(
                f"link outage at step {step} lasts {attempts} probe(s), "
                f"beyond the {backoff.max_retries}-retry budget",
                step=step,
                kind="link-outage",
            )
        cost = attempts * self.recovery.exchange_timeout_s
        cost += backoff.total_delay_s(attempts)
        with trace_span(
            "fault.outage", step=step, attempts=attempts, until_step=horizon
        ):
            with trace_span("recovery.backoff", attempts=attempts, cost_s=cost):
                pass
        self._count_fault("link-outage")
        self._count_recovery("backoff")
        record(
            RunEvent(
                step=step,
                kind="link-outage",
                action="backoff",
                cost_s=cost,
                detail=f"{attempts} attempt(s) until step {horizon}",
            )
        )
        # The retries drained every outage window covering this step, so
        # the step re-resolves against whatever non-outage faults remain.
        for event in plan.events:
            if getattr(event, "is_outage", False) and event.active_at(step):
                plan = self._consume(plan, event)
        return cost, plan

    def _recover_crash(
        self, plan: FaultPlan, crash, machines: int, conds, checkpoint_step, record
    ):
        """Partial-step waste + detection + restore + elastic shrink.

        Returns ``(wall cost, surviving machines, plan with the crash
        consumed)``; the caller rolls step and samples back to the
        checkpoint.  Raises when no machine would survive.
        """
        survivors = machines - crash.machines
        if survivors < 1:
            raise UnrecoverableFaultError(
                f"crash at step {crash.step} takes the last "
                f"{machines} machine(s); nothing left to shrink to",
                step=crash.step,
                kind="crash",
            )
        fraction = plan.crash_fraction(crash)
        wasted = fraction * self._step_cost(machines, conds).iteration_s
        restore = self.recovery.checkpoint.restore_s
        cost = wasted + self.recovery.detection_s + restore
        with trace_span(
            "fault.crash",
            step=crash.step,
            machines_lost=crash.machines,
            survivors=survivors,
            wasted_s=wasted,
        ):
            with trace_span(
                "recovery.restart",
                from_step=checkpoint_step,
                restore_s=restore,
                detection_s=self.recovery.detection_s,
            ):
                pass
            with trace_span(
                "recovery.rebalance",
                buckets=max(1, len(self._schedule)),
                workers=survivors * self.cluster.machine.gpu_count,
                reason="elastic-shrink",
            ):
                pass
        self._count_fault("crash")
        self._count_recovery("restart")
        self._count_recovery("rebalance")
        record(
            RunEvent(
                step=crash.step,
                kind="crash",
                action="restart",
                cost_s=cost,
                detail=(
                    f"lost {crash.machines} machine(s), {survivors} remain; "
                    f"rolled back to step {checkpoint_step}"
                ),
            )
        )
        return cost, survivors, self._consume(plan, crash)

    def _recover_timeout(self, timeout, record) -> float:
        """A transient exchange timeout: ``failures`` burned attempts plus
        exponential backoff, then the retry succeeds."""
        backoff = self.recovery.backoff
        if timeout.failures > backoff.max_retries:
            raise UnrecoverableFaultError(
                f"exchange timeout at step {timeout.step} fails "
                f"{timeout.failures} time(s), beyond the "
                f"{backoff.max_retries}-retry budget",
                step=timeout.step,
                kind="timeout",
            )
        cost = timeout.failures * timeout.timeout_s
        cost += backoff.total_delay_s(timeout.failures)
        with trace_span(
            "fault.timeout",
            step=timeout.step,
            failures=timeout.failures,
            timeout_s=timeout.timeout_s,
        ):
            with trace_span("recovery.backoff", attempts=timeout.failures, cost_s=cost):
                pass
        self._count_fault("timeout")
        self._count_recovery("backoff")
        record(
            RunEvent(
                step=timeout.step,
                kind="timeout",
                action="backoff",
                cost_s=cost,
                detail=f"{timeout.failures} failure(s) before success",
            )
        )
        return cost

    def _note_conditions(self, step: int, conds, cost, record) -> None:
        """Spans + event-log entries when the continuous conditions change."""
        if conds.straggle_factor > 1.0:
            with trace_span(
                "fault.straggler",
                step=step,
                factor=conds.straggle_factor,
                workers=",".join(str(worker) for worker, _ in conds.stragglers),
            ):
                if cost.rebalance is not None:
                    with trace_span(
                        "recovery.rebalance",
                        buckets=cost.rebalance.buckets,
                        window_s=cost.rebalance.window_s,
                        hidden_s=cost.rebalance.hidden_s,
                        reason="straggler",
                    ):
                        pass
            self._count_fault("straggler")
            if cost.rebalance is not None:
                self._count_recovery("rebalance")
                record(
                    RunEvent(
                        step=step,
                        kind="straggler",
                        action="rebalance",
                        cost_s=cost.compute_s - self._local_iteration_s,
                        detail=(
                            f"x{conds.straggle_factor:g} slowdown; "
                            f"{cost.rebalance.buckets} bucket(s) re-pushed hide "
                            f"{cost.rebalance.hidden_s:.3f}s"
                        ),
                    )
                )
            else:
                record(
                    RunEvent(
                        step=step,
                        kind="straggler",
                        action="absorb",
                        cost_s=cost.compute_s - self._local_iteration_s,
                        detail=f"x{conds.straggle_factor:g} slowdown",
                    )
                )
        if (
            conds.bandwidth_factor != 1.0
            or conds.packet_loss > 0.0
            or conds.extra_latency_s > 0.0
        ):
            with trace_span(
                "fault.degrade",
                step=step,
                bandwidth_factor=conds.bandwidth_factor,
                packet_loss=conds.packet_loss,
                extra_latency_s=conds.extra_latency_s,
            ):
                pass
            self._count_fault("degrade")
            record(
                RunEvent(
                    step=step,
                    kind="degrade",
                    action="absorb",
                    cost_s=cost.exchange_s,
                    detail=(
                        f"bw x{conds.bandwidth_factor:g}, "
                        f"loss {conds.packet_loss:g}, "
                        f"+{conds.extra_latency_s:g}s latency"
                    ),
                )
            )

    def _count_fault(self, kind: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("faults_injected_total", {"kind": kind}).inc()

    def _count_recovery(self, action: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("recovery_actions_total", {"action": action}).inc()

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------

    def iteration_metrics(self, result: FaultTrainingResult) -> IterationMetrics:
        """Map a fault-tolerant run onto the paper's headline metrics —
        the payload shape the sweep engine caches for a faults dimension.

        Throughput and iteration time are the realized (degraded) run
        averages; utilizations rescale the fault-free per-replica
        activity over the stretched mean step.
        """
        mean_step = result.mean_step_s
        local = self._local
        if mean_step <= 0:
            gpu_util = 0.0
            cpu_util = 0.0
        else:
            gpu_util = min(1.0, local.gpu_busy_time_s / mean_step)
            cpu_util = cpu_utilization(
                local.cpu_core_seconds, local.cpu_core_count, mean_step
            )
        return IterationMetrics(
            model=result.model,
            framework=result.framework,
            device=result.configuration,
            batch_size=result.per_gpu_batch,
            throughput=result.throughput,
            throughput_unit=self.trainer.session.spec.throughput_unit,
            gpu_utilization=gpu_util,
            fp32_utilization=local.fp32_utilization,
            cpu_utilization=cpu_util,
            iteration_time_s=mean_step,
        )
