"""The fault-plan IR: a deterministic, seed-driven schedule of cluster
faults for the simulated distributed runs.

A :class:`FaultPlan` is an immutable set of fault events against a
step-indexed timeline:

- :class:`StragglerFault` — worker ``worker`` computes ``factor`` times
  slower during ``[start_step, end_step)``; the synchronous barrier makes
  the whole step as slow as the slowest replica.
- :class:`LinkFault` — the inter-machine fabric loses bandwidth, drops
  packets (retransmission expands effective bytes), or gains latency
  during a step window.  ``packet_loss >= 1.0`` is a full outage: the
  exchange cannot complete and recovery (retry with backoff) takes over.
- :class:`WorkerCrash` — ``machines`` nodes die at ``step``; recovery is
  checkpoint/restart plus an elastic shrink to the survivors.
- :class:`AllReduceTimeout` — the gradient exchange at ``step`` times out
  ``failures`` times before succeeding; each retry backs off
  exponentially.

Everything is resolved *eagerly and purely*: the same plan and seed give
the same per-step conditions on every process, which is what makes fault
scenarios cacheable grid dimensions for the sweep engine.  The empty plan
(:meth:`FaultPlan.none`) is the strict-additivity anchor — every consumer
treats it exactly like no plan at all.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field


def _check_window(start_step: int, end_step: int | None) -> None:
    if start_step < 0:
        raise ValueError("fault windows cannot start before step 0")
    if end_step is not None and end_step <= start_step:
        raise ValueError(
            f"empty fault window [{start_step}, {end_step}): end must exceed start"
        )


@dataclass(frozen=True)
class StragglerFault:
    """Worker ``worker`` runs ``factor``x slower over ``[start_step, end_step)``
    (``end_step=None`` means forever)."""

    worker: int
    factor: float
    start_step: int = 0
    end_step: int | None = None

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker index cannot be negative")
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1.0 (a slowdown)")
        _check_window(self.start_step, self.end_step)

    def active_at(self, step: int) -> bool:
        """Is this straggler window open at ``step``?"""
        return self.start_step <= step and (
            self.end_step is None or step < self.end_step
        )


@dataclass(frozen=True)
class LinkFault:
    """Inter-machine fabric degradation over ``[start_step, end_step)``."""

    bandwidth_factor: float = 1.0
    packet_loss: float = 0.0
    extra_latency_s: float = 0.0
    start_step: int = 0
    end_step: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth factor must be in (0, 1]")
        if not 0.0 <= self.packet_loss <= 1.0:
            raise ValueError("packet loss must be in [0, 1]")
        if self.extra_latency_s < 0:
            raise ValueError("extra latency cannot be negative")
        _check_window(self.start_step, self.end_step)

    @property
    def is_outage(self) -> bool:
        """Total loss: no transfer can complete while the window is open."""
        return self.packet_loss >= 1.0

    def active_at(self, step: int) -> bool:
        """Is this degradation window open at ``step``?"""
        return self.start_step <= step and (
            self.end_step is None or step < self.end_step
        )


@dataclass(frozen=True)
class WorkerCrash:
    """``machines`` nodes die at ``step`` (mid-iteration)."""

    step: int
    machines: int = 1

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("crash step cannot be negative")
        if self.machines < 1:
            raise ValueError("a crash must take at least one machine")


@dataclass(frozen=True)
class AllReduceTimeout:
    """The exchange at ``step`` fails ``failures`` times (each attempt
    costs ``timeout_s``) before succeeding on the next retry."""

    step: int
    failures: int = 1
    timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("timeout step cannot be negative")
        if self.failures < 1:
            raise ValueError("a timeout event needs at least one failure")
        if self.timeout_s <= 0:
            raise ValueError("timeout duration must be positive")


@dataclass(frozen=True)
class StepConditions:
    """Everything the fault plan says about one step, fully resolved.

    ``stragglers`` is ``((worker, factor), ...)`` so elastic consumers can
    drop slowdowns whose worker no longer exists after a shrink;
    ``straggle_factor`` is the max across all of them (what a fixed-size
    cluster's synchronous barrier sees).
    """

    straggle_factor: float = 1.0
    stragglers: tuple = ()
    bandwidth_factor: float = 1.0
    packet_loss: float = 0.0
    extra_latency_s: float = 0.0
    crashes: tuple = ()
    timeouts: tuple = ()

    @property
    def is_clean(self) -> bool:
        """No perturbation of any kind at this step."""
        return (
            self.straggle_factor == 1.0
            and self.bandwidth_factor == 1.0
            and self.packet_loss == 0.0
            and self.extra_latency_s == 0.0
            and not self.crashes
            and not self.timeouts
        )

    @property
    def link_is_out(self) -> bool:
        """The fabric cannot complete any transfer at this step."""
        return self.packet_loss >= 1.0

    @property
    def condition_key(self) -> tuple:
        """Hashable key over the *continuous* conditions (stragglers and
        link state, not point events) — the memoization key for per-step
        cost under identical conditions."""
        return (
            self.stragglers,
            self.bandwidth_factor,
            self.packet_loss,
            self.extra_latency_s,
        )


CLEAN_STEP = StepConditions()


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-driven schedule of faults for one simulated run."""

    events: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        known = (StragglerFault, LinkFault, WorkerCrash, AllReduceTimeout)
        for event in self.events:
            if not isinstance(event, known):
                raise TypeError(
                    f"unknown fault event {event!r}; expected one of "
                    f"{[cls.__name__ for cls in known]}"
                )
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: every consumer treats it exactly like no plan."""
        return cls(events=(), seed=0)

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing at all."""
        return not self.events

    def _of(self, kind) -> list:
        return [event for event in self.events if isinstance(event, kind)]

    @property
    def crashes(self) -> list:
        """Every :class:`WorkerCrash`, in step order."""
        return sorted(self._of(WorkerCrash), key=lambda event: event.step)

    def conditions_at(self, step: int) -> StepConditions:
        """Resolve the plan at ``step``: straggler slowdown (the max across
        open windows), composed link degradation, and the point events
        (crashes, timeouts) that fire exactly at ``step``."""
        if self.is_empty:
            return CLEAN_STEP
        stragglers = tuple(
            event for event in self._of(StragglerFault) if event.active_at(step)
        )
        factor = 1.0
        for event in stragglers:
            factor = max(factor, event.factor)
        bandwidth, loss, latency = 1.0, 0.0, 0.0
        for event in self._of(LinkFault):
            if not event.active_at(step):
                continue
            bandwidth *= event.bandwidth_factor
            loss = 1.0 - (1.0 - loss) * (1.0 - event.packet_loss)
            latency += event.extra_latency_s
        crashes = tuple(
            event for event in self._of(WorkerCrash) if event.step == step
        )
        timeouts = tuple(
            event for event in self._of(AllReduceTimeout) if event.step == step
        )
        return StepConditions(
            straggle_factor=factor,
            stragglers=tuple(
                (event.worker, event.factor) for event in stragglers
            ),
            bandwidth_factor=bandwidth,
            packet_loss=loss,
            extra_latency_s=latency,
            crashes=crashes,
            timeouts=timeouts,
        )

    def outage_until(self, step: int) -> int | None:
        """If the link is fully out at ``step``, the first step at which
        every open outage window has closed — ``None`` when some outage
        window never ends (recovery must eventually give up)."""
        horizon = step
        for event in self._of(LinkFault):
            if event.is_outage and event.active_at(step):
                if event.end_step is None:
                    return None
                horizon = max(horizon, event.end_step)
        return horizon

    def window(self, start_step: int, end_step: int | None = None) -> "FaultPlan":
        """The plan restricted to ``[start_step, end_step)`` and re-based
        so ``start_step`` becomes step 0.

        This is how a run split into batch-schedule segments threads one
        fault plan through per-segment trainers: each segment sees exactly
        the events that fall inside its step window, shifted onto its own
        local timeline.  Windowed straggler/link intervals are clipped;
        point events (crashes, timeouts) are kept iff they land inside.
        The seed is preserved, but windowing re-bases step indices, so
        seed-derived per-event draws (e.g. crash fractions) are pure
        functions of the *local* step — exact conservation claims should
        therefore compare event sets, not partial-step jitter.
        """
        if start_step < 0:
            raise ValueError("window cannot start before step 0")
        if end_step is not None and end_step < start_step:
            raise ValueError("window cannot end before it starts")
        events = []
        for event in self.events:
            if isinstance(event, (StragglerFault, LinkFault)):
                open_end = event.end_step
                clipped_start = max(event.start_step, start_step)
                if end_step is None:
                    clipped_end = open_end
                elif open_end is None:
                    clipped_end = end_step
                else:
                    clipped_end = min(open_end, end_step)
                if clipped_end is not None and clipped_end <= clipped_start:
                    continue
                shifted_end = (
                    None if clipped_end is None else clipped_end - start_step
                )
                events.append(
                    dataclasses.replace(
                        event,
                        start_step=clipped_start - start_step,
                        end_step=shifted_end,
                    )
                )
            else:
                if event.step < start_step:
                    continue
                if end_step is not None and event.step >= end_step:
                    continue
                events.append(
                    dataclasses.replace(event, step=event.step - start_step)
                )
        return FaultPlan(events=tuple(events), seed=self.seed)

    def last_boundary(self) -> int:
        """The step index after which conditions never change again —
        the point past which a run simulates in closed form."""
        boundary = 0
        for event in self.events:
            if isinstance(event, (StragglerFault, LinkFault)):
                if event.end_step is None:
                    boundary = max(boundary, event.start_step + 1)
                else:
                    boundary = max(boundary, event.end_step)
            else:
                boundary = max(boundary, event.step + 1)
        return boundary

    def crash_fraction(self, crash: WorkerCrash) -> float:
        """How far into its step the crash lands, in ``[0.25, 0.75)`` —
        a pure function of (seed, step), so every process computing the
        same plan charges the same partial-step loss."""
        rng = random.Random(f"{self.seed}:{crash.step}:crash-fraction")
        return 0.25 + 0.5 * rng.random()

    def describe(self) -> str:
        """One line per event, in a stable order."""
        if self.is_empty:
            return "fault plan: none"
        lines = [f"fault plan: {len(self.events)} event(s), seed {self.seed}"]
        for event in self.events:
            lines.append(f"  {event!r}")
        return "\n".join(lines)
