"""Data-parallel distributed training (paper Sections 2.2 and 4.5).

The paper scales ResNet-50 on MXNet across GPUs and machines with data
parallelism and a parameter-server exchange, and finds (Observation 13)
that single-machine multi-GPU scales well over PCIe 3.0 while two-machine
training collapses over Ethernet and needs 100 Gb/s InfiniBand to help.
This package models exactly that: gradient-exchange cost over the cluster's
links, partially overlapped with the backward pass.
"""

from repro.distributed.data_parallel import (
    DataParallelTrainer,
    DistributedProfile,
)
from repro.distributed.parameter_server import ParameterServerExchange
from repro.distributed.allreduce import RingAllReduceExchange
from repro.distributed.time_to_accuracy import (
    ElasticPoint,
    elastic_time_to_accuracy,
)
from repro.distributed.topology import standard_configurations

__all__ = [
    "DataParallelTrainer",
    "DistributedProfile",
    "ElasticPoint",
    "ParameterServerExchange",
    "RingAllReduceExchange",
    "elastic_time_to_accuracy",
    "standard_configurations",
]
