"""Parameter-server gradient exchange (Li et al., OSDI'14; the kvstore
mechanism MXNet uses in the paper's Fig. 10 experiments).

Cost model for one synchronous iteration:

- **Intra-machine** (``g`` GPUs -> host PS): every GPU pushes its full
  gradient over its PCIe link and pulls updated weights back; the host
  aggregates ``g`` gradient copies at memory bandwidth.  PCIe links are
  per-GPU (x16 slots), so pushes proceed in parallel.
- **Inter-machine** (``m`` machines, server shards co-located with
  workers): each machine holds ``1/m`` of the parameters; a machine sends
  the other shards' portions (``(m-1)/m`` of the gradient) and receives its
  own shard's contributions, then the mirror transfer returns updated
  weights.  TCP on Ethernet runs far below line rate under the resulting
  incast (efficiency ~0.35); RDMA on InfiniBand sustains ~0.9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span

#: Effective efficiency of kvstore-style TCP transfers under incast.
_TCP_PS_EFFICIENCY = 0.5
#: Host memory bandwidth share usable for gradient aggregation.
_AGGREGATION_BW_FRACTION = 0.5


@dataclass(frozen=True)
class ExchangeCost:
    """Resolved communication cost of one synchronous exchange."""

    intra_machine_s: float
    inter_machine_s: float
    aggregation_s: float

    @property
    def total_s(self) -> float:
        return self.intra_machine_s + self.inter_machine_s + self.aggregation_s


class ParameterServerExchange:
    """Synchronous parameter-server exchange over a cluster."""

    name = "parameter server"

    def cost(self, gradient_bytes: float, cluster: ClusterSpec) -> ExchangeCost:
        """Cost of one push+pull cycle for ``gradient_bytes`` per worker."""
        if gradient_bytes < 0:
            raise ValueError("gradient bytes cannot be negative")
        with trace_span(
            "ps.exchange",
            gradient_bytes=gradient_bytes,
            workers=cluster.total_gpus,
            cluster=cluster.name,
        ) as span:
            machine = cluster.machine
            gpus = machine.gpu_count

            intra = 0.0
            aggregation = 0.0
            if gpus >= 1:
                # Push + pull per GPU over its own PCIe link (parallel slots).
                intra = 2.0 * machine.intra_link.transfer_time(gradient_bytes)
                # The host reduces `gpus` gradient copies at memory bandwidth.
                host_bw = (
                    machine.cpu.memory_bandwidth_gbs * 1e9 * _AGGREGATION_BW_FRACTION
                )
                aggregation = gpus * gradient_bytes / host_bw

            inter = 0.0
            if cluster.is_distributed:
                machines = cluster.machine_count
                link = cluster.inter_link
                share = gradient_bytes * (machines - 1) / machines
                efficiency = 1.0
                if "ethernet" in link.name.lower() or "gbe" in link.name.lower():
                    efficiency = _TCP_PS_EFFICIENCY
                # Push phase + pull phase, full duplex within each phase.
                per_phase = link.latency_s + share / (
                    link.effective_bandwidth_bytes * efficiency
                )
                inter = 2.0 * per_phase
            self._record_telemetry(span, gradient_bytes, gpus, intra, inter, aggregation)
            return ExchangeCost(
                intra_machine_s=intra,
                inter_machine_s=inter,
                aggregation_s=aggregation,
            )

    def _record_telemetry(
        self,
        span,
        gradient_bytes: float,
        gpus: int,
        intra_s: float,
        inter_s: float,
        aggregation_s: float,
    ) -> None:
        """Emit push/aggregate/pull child spans and the PS traffic counters."""
        if span.enabled:
            half_intra = intra_s / 2.0
            half_inter = inter_s / 2.0
            with trace_span(
                "ps.push", bytes=gradient_bytes, duration_s=half_intra + half_inter
            ):
                pass
            with trace_span("ps.aggregate", copies=gpus, duration_s=aggregation_s):
                pass
            with trace_span(
                "ps.pull", bytes=gradient_bytes, duration_s=half_intra + half_inter
            ):
                pass
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ps_pushes_total").inc(gpus)
            metrics.counter("ps_pulls_total").inc(gpus)
            metrics.counter("ps_wire_bytes_total").inc(2.0 * gradient_bytes * gpus)
            metrics.counter("ps_exchange_seconds_total").inc(
                intra_s + inter_s + aggregation_s
            )
