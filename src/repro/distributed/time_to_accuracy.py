"""Time-to-accuracy under data-parallel scaling.

The paper's throughput-centric Fig. 10 deliberately brackets statistical
efficiency, citing Goyal et al. [43] and You et al. [101] for the
observation that scaling the global mini-batch requires learning-rate
adjustments and, past a point, *more samples* to reach the same accuracy.
This module closes that loop: it combines

- **hardware efficiency** — aggregate throughput from
  :class:`~repro.distributed.data_parallel.DataParallelTrainer`, and
- **statistical efficiency** — the critical-batch-size model
  ``samples_needed(B) = N0 * (1 + B / B_crit)`` (McCandlish et al.'s
  gradient-noise-scale form, which matches the [43]/[101] regimes: free
  scaling below ``B_crit``, diminishing returns above),

into wall-clock time-to-accuracy per cluster configuration — the quantity
a practitioner actually optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.data_parallel import DataParallelTrainer
from repro.hardware.cluster import ClusterSpec
from repro.training.convergence import FIG2_MODELS
from repro.training.hyperparams import defaults_for

#: Critical global batch sizes (samples) per model family: beyond this,
#: extra batch buys little statistical progress.  ResNet-class ImageNet
#: training tolerates ~8k (Goyal et al. trained at 8192 with warmup).
CRITICAL_BATCH = {
    "resnet-50": 8192.0,
    "inception-v3": 8192.0,
    "nmt": 4096.0,
    "sockeye": 4096.0,
    "transformer": 60000.0,  # tokens
}


@dataclass(frozen=True)
class ScalingPoint:
    """One (configuration, per-GPU batch) point of the scaling study."""

    configuration: str
    worker_count: int
    per_gpu_batch: int
    global_batch: int
    throughput: float
    learning_rate: float
    samples_needed: float
    time_to_accuracy_s: float

    @property
    def speedup_metric(self) -> float:
        """Inverse time-to-accuracy (bigger is better)."""
        return 1.0 / self.time_to_accuracy_s


def samples_to_accuracy(model_key: str, target_fraction: float = 0.95) -> float:
    """Samples a single worker needs to reach ``target_fraction`` of the
    model's asymptotic metric, from the calibrated convergence curve."""
    if not 0.0 < target_fraction < 1.0:
        raise ValueError("target fraction must be in (0, 1)")
    model = FIG2_MODELS[model_key]
    target = model.initial + target_fraction * (model.final - model.initial)
    low, high = 1.0, 1.0
    while model.value_at(high) < target:
        high *= 2.0
        if high > 1e15:
            raise ValueError("target unreachable")
    for _ in range(100):
        mid = 0.5 * (low + high)
        if model.value_at(mid) < target:
            low = mid
        else:
            high = mid
    return high


def adjusted_samples_needed(
    model_key: str, global_batch: int, base_batch: int, target_fraction: float = 0.95
) -> float:
    """Samples needed at ``global_batch``, via the critical-batch model
    (normalized so the single-GPU ``base_batch`` is the baseline)."""
    if global_batch <= 0 or base_batch <= 0:
        raise ValueError("batch sizes must be positive")
    critical = CRITICAL_BATCH.get(model_key, 8192.0)
    base = samples_to_accuracy(model_key, target_fraction)
    penalty = (1.0 + global_batch / critical) / (1.0 + base_batch / critical)
    return base * penalty


def linear_scaled_learning_rate(model_key: str, global_batch: int, base_batch: int) -> float:
    """Goyal et al.'s linear-scaling rule: LR grows with the global batch."""
    base = defaults_for(model_key).learning_rate
    return base * (global_batch / base_batch)


def scaling_point(
    model_key: str,
    framework: str,
    cluster: ClusterSpec,
    per_gpu_batch: int,
    base_batch: int | None = None,
    target_fraction: float = 0.95,
) -> ScalingPoint:
    """Evaluate one configuration's time-to-accuracy."""
    trainer = DataParallelTrainer(model_key, framework, cluster)
    profile = trainer.run_iteration(per_gpu_batch)
    base = base_batch if base_batch is not None else per_gpu_batch
    global_batch = per_gpu_batch * profile.worker_count
    samples = adjusted_samples_needed(model_key, global_batch, base, target_fraction)
    return ScalingPoint(
        configuration=cluster.name,
        worker_count=profile.worker_count,
        per_gpu_batch=per_gpu_batch,
        global_batch=global_batch,
        throughput=profile.throughput,
        learning_rate=linear_scaled_learning_rate(model_key, global_batch, base),
        samples_needed=samples,
        time_to_accuracy_s=samples / profile.throughput,
    )


@dataclass(frozen=True)
class ElasticPoint:
    """Time-to-accuracy for a run that survives a fault plan.

    ``result`` is the underlying
    :class:`~repro.faults.trainer.FaultTrainingResult`, kept so demos and
    tests can inspect the event log behind the headline number.
    """

    configuration: str
    per_gpu_batch: int
    global_batch: int
    samples_needed: float
    time_to_accuracy_s: float
    baseline_time_s: float
    final_machines: int
    result: object

    @property
    def overhead(self) -> float:
        """Wall-clock inflation the faults cost (>= 1 in practice)."""
        if self.baseline_time_s <= 0:
            return float("inf")
        return self.time_to_accuracy_s / self.baseline_time_s


def elastic_time_to_accuracy(
    model_key: str,
    framework: str,
    cluster: ClusterSpec,
    per_gpu_batch: int,
    plan=None,
    recovery=None,
    base_batch: int | None = None,
    target_fraction: float = 0.95,
) -> ElasticPoint:
    """Time-to-accuracy for a run threaded through a fault plan.

    The statistical side (samples needed) is priced at the *initial*
    global batch — an elastic shrink changes how fast samples are
    consumed, not how many the optimizer needs — and the hardware side
    comes from
    :meth:`~repro.faults.trainer.FaultTolerantTrainer.run_until_samples`,
    so crashes, stragglers and outages lengthen (but never derail) the
    run.  With ``plan=None`` the number collapses to
    ``samples / baseline throughput``, exactly :func:`scaling_point`.

    Raises:
        UnrecoverableFaultError: propagated from the trainer when the
            recovery policies cannot survive the plan.
    """
    from repro.faults.trainer import FaultTolerantTrainer

    trainer = FaultTolerantTrainer(
        model_key, framework, cluster, per_gpu_batch, plan=plan, recovery=recovery
    )
    base = base_batch if base_batch is not None else per_gpu_batch
    global_batch = per_gpu_batch * trainer.baseline.worker_count
    samples = adjusted_samples_needed(model_key, global_batch, base, target_fraction)
    result = trainer.run_until_samples(samples)
    return ElasticPoint(
        configuration=cluster.name,
        per_gpu_batch=per_gpu_batch,
        global_batch=global_batch,
        samples_needed=samples,
        time_to_accuracy_s=result.wall_clock_s,
        baseline_time_s=samples / trainer.baseline.throughput,
        final_machines=result.final_machines,
        result=result,
    )


def scaling_study(
    model_key: str = "resnet-50",
    framework: str = "mxnet",
    per_gpu_batch: int = 32,
    target_fraction: float = 0.95,
) -> list:
    """Time-to-accuracy across the Fig. 10 configurations."""
    from repro.distributed.topology import standard_configurations

    points = []
    for cluster in standard_configurations().values():
        points.append(
            scaling_point(
                model_key,
                framework,
                cluster,
                per_gpu_batch,
                base_batch=per_gpu_batch,
                target_fraction=target_fraction,
            )
        )
    return points
