"""Gradient-compression wrappers for the exchange mechanisms.

Observation 13's closing recommendation: "different techniques (in both
software and hardware) should be applied to either reduce the amount of
data sent or increase the available bandwidth."  These wrappers implement
the *reduce the data* half as composable decorators over any exchange
(parameter server or all-reduce):

- :class:`HalfPrecisionGradients` — FP16 gradient transport (2x);
- :class:`TopKSparsification` — send the largest k fraction of gradients
  plus indices (Aji & Heafield-style), with an error-feedback iteration
  overhead charged on the host.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompressedCost:
    """Exchange cost after compression, plus the compression work itself."""

    intra_machine_s: float
    inter_machine_s: float
    aggregation_s: float
    compression_s: float

    @property
    def total_s(self) -> float:
        return (
            self.intra_machine_s
            + self.inter_machine_s
            + self.aggregation_s
            + self.compression_s
        )


class HalfPrecisionGradients:
    """FP16 gradient transport over an inner exchange (2x fewer bytes).

    The cast itself is bandwidth-trivial on the GPU; no extra compression
    time is charged.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = f"{inner.name} + fp16 gradients"

    def cost(self, gradient_bytes: float, cluster) -> CompressedCost:
        """Inner exchange cost at half the gradient volume."""
        base = self.inner.cost(gradient_bytes / 2.0, cluster)
        return CompressedCost(
            intra_machine_s=base.intra_machine_s,
            inter_machine_s=base.inter_machine_s,
            aggregation_s=base.aggregation_s,
            compression_s=0.0,
        )


class TopKSparsification:
    """Top-k gradient sparsification over an inner exchange.

    Transports ``k`` of the gradient values plus 4-byte indices; charges a
    selection pass (one read of the full gradient at GPU memory bandwidth)
    as compression time.
    """

    #: Effective selection bandwidth (bytes/s) — one streaming pass.
    _SELECTION_BANDWIDTH = 200e9

    def __init__(self, inner, keep_fraction: float = 0.01):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep fraction must be in (0, 1]")
        self.inner = inner
        self.keep_fraction = keep_fraction
        self.name = f"{inner.name} + top-{keep_fraction:.0%} sparsification"

    def cost(self, gradient_bytes: float, cluster) -> CompressedCost:
        """Inner exchange at the sparsified volume plus the selection pass."""
        # Values (4B) + indices (4B) per kept element.
        transported = gradient_bytes * self.keep_fraction * 2.0
        base = self.inner.cost(transported, cluster)
        selection = gradient_bytes / self._SELECTION_BANDWIDTH
        return CompressedCost(
            intra_machine_s=base.intra_machine_s,
            inter_machine_s=base.inter_machine_s,
            aggregation_s=base.aggregation_s,
            compression_s=selection,
        )
