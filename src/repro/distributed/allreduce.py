"""Ring all-reduce gradient exchange (the NCCL-style alternative to the
parameter server; included for the what-if analyses in the examples).

A ring all-reduce over ``n`` workers moves ``2 * (n - 1) / n`` of the
gradient volume per worker in ``2 * (n - 1)`` steps; with per-step link
latency this gives

    t = 2 * (n - 1) * latency + 2 * gradient_bytes * (n - 1) / (n * bw)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.hardware.interconnect import Interconnect


@dataclass(frozen=True)
class AllReduceCost:
    """Resolved cost of one all-reduce."""

    total_s: float
    steps: int

    @property
    def intra_machine_s(self) -> float:  # interface parity with PS exchange
        return 0.0

    @property
    def inter_machine_s(self) -> float:
        return self.total_s

    @property
    def aggregation_s(self) -> float:
        return 0.0


def ring_allreduce_time(
    gradient_bytes: float, workers: int, link: Interconnect
) -> float:
    """Time for one ring all-reduce of ``gradient_bytes`` over ``workers``."""
    if gradient_bytes < 0:
        raise ValueError("gradient bytes cannot be negative")
    if workers <= 0:
        raise ValueError("worker count must be positive")
    if workers == 1:
        return 0.0
    steps = 2 * (workers - 1)
    volume = 2.0 * gradient_bytes * (workers - 1) / workers
    return steps * link.latency_s + volume / link.effective_bandwidth_bytes


class RingAllReduceExchange:
    """Synchronous ring all-reduce over a cluster.

    The ring spans all GPUs; the slowest link on the ring (the inter-machine
    fabric, when distributed) bounds the bandwidth term.
    """

    name = "ring all-reduce"

    def cost(self, gradient_bytes: float, cluster: ClusterSpec) -> AllReduceCost:
        """Cost of one all-reduce of ``gradient_bytes`` over the cluster."""
        workers = cluster.total_gpus
        if workers <= 1:
            return AllReduceCost(total_s=0.0, steps=0)
        link = (
            cluster.inter_link if cluster.is_distributed else cluster.machine.intra_link
        )
        total = ring_allreduce_time(gradient_bytes, workers, link)
        return AllReduceCost(total_s=total, steps=2 * (workers - 1))
