"""Ring all-reduce gradient exchange (the NCCL-style alternative to the
parameter server; included for the what-if analyses in the examples).

A ring all-reduce over ``n`` workers moves ``2 * (n - 1) / n`` of the
gradient volume per worker in ``2 * (n - 1)`` steps; with per-step link
latency this gives

    t = 2 * (n - 1) * latency + 2 * gradient_bytes * (n - 1) / (n * bw)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.hardware.interconnect import Interconnect
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span


@dataclass(frozen=True)
class AllReduceCost:
    """Resolved cost of one all-reduce."""

    total_s: float
    steps: int

    @property
    def intra_machine_s(self) -> float:  # interface parity with PS exchange
        return 0.0

    @property
    def inter_machine_s(self) -> float:
        return self.total_s

    @property
    def aggregation_s(self) -> float:
        return 0.0


def ring_allreduce_time(
    gradient_bytes: float, workers: int, link: Interconnect
) -> float:
    """Time for one ring all-reduce of ``gradient_bytes`` over ``workers``."""
    if gradient_bytes < 0:
        raise ValueError("gradient bytes cannot be negative")
    if workers <= 0:
        raise ValueError("worker count must be positive")
    if workers == 1:
        return 0.0
    steps = 2 * (workers - 1)
    volume = 2.0 * gradient_bytes * (workers - 1) / workers
    return steps * link.latency_s + volume / link.effective_bandwidth_bytes


class RingAllReduceExchange:
    """Synchronous ring all-reduce over a cluster.

    The ring spans all GPUs; the slowest link on the ring (the inter-machine
    fabric, when distributed) bounds the bandwidth term.
    """

    name = "ring all-reduce"

    def cost(self, gradient_bytes: float, cluster: ClusterSpec) -> AllReduceCost:
        """Cost of one all-reduce of ``gradient_bytes`` over the cluster."""
        with trace_span(
            "allreduce.ring",
            gradient_bytes=gradient_bytes,
            workers=cluster.total_gpus,
            cluster=cluster.name,
        ) as span:
            workers = cluster.total_gpus
            if workers <= 1:
                return AllReduceCost(total_s=0.0, steps=0)
            link = (
                cluster.inter_link
                if cluster.is_distributed
                else cluster.machine.intra_link
            )
            total = ring_allreduce_time(gradient_bytes, workers, link)
            steps = 2 * (workers - 1)
            self._record_telemetry(span, gradient_bytes, workers, steps, total)
            return AllReduceCost(total_s=total, steps=steps)

    def _record_telemetry(
        self, span, gradient_bytes: float, workers: int, steps: int, total_s: float
    ) -> None:
        """Emit per-round child spans and the on-the-wire byte counters."""
        wire_bytes = 2.0 * gradient_bytes * (workers - 1) / workers
        if span.enabled:
            span.set_attributes(steps=steps, total_s=total_s, wire_bytes=wire_bytes)
            per_round = total_s / steps if steps else 0.0
            for index in range(steps):
                phase = "reduce-scatter" if index < steps // 2 else "all-gather"
                with trace_span(
                    "allreduce.round", index=index, phase=phase, round_s=per_round
                ):
                    pass
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("allreduce_rounds_total").inc(steps)
            metrics.counter("allreduce_wire_bytes_total").inc(wire_bytes)
            metrics.counter("allreduce_seconds_total").inc(total_s)
