"""The Fig. 10 cluster configurations."""

from __future__ import annotations

from repro.hardware.cluster import ClusterSpec, parse_configuration


def standard_configurations() -> dict:
    """The five configurations of the paper's Fig. 10, keyed by label."""
    return {
        "1M1G": parse_configuration("1M1G"),
        # The testbed's Ethernet NICs are the commodity 1 GbE management
        # network — the 100 Gb/s Mellanox cards are the fast fabric — which
        # is why the paper's 2M1G (ethernet) bar falls *below* 1M1G.
        "2M1G (ethernet)": parse_configuration("2M1G", fabric="1gbe"),
        "2M1G (infiniband)": parse_configuration("2M1G", fabric="infiniband"),
        "1M2G": parse_configuration("1M2G"),
        "1M4G": parse_configuration("1M4G"),
    }


def configuration(label: str) -> ClusterSpec:
    """Look up one Fig. 10 configuration by its paper label."""
    configs = standard_configurations()
    if label not in configs:
        known = ", ".join(configs)
        raise KeyError(f"unknown configuration {label!r}; known: {known}")
    return configs[label]
