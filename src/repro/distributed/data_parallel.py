"""Synchronous data-parallel training over a simulated cluster.

Each of the cluster's GPUs trains a full model replica on its own
``per_gpu_batch`` slice (Section 2.2); after the backward pass, gradients
are exchanged through the configured mechanism (parameter server by
default, matching MXNet's kvstore).  Frameworks overlap part of the
exchange with the backward pass — per-layer gradients are pushed as they
become ready — captured by ``COMM_OVERLAP``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.parameter_server import ParameterServerExchange
from repro.hardware.cluster import ClusterSpec
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.training.session import TrainingSession

#: Fraction of exchange time hidden behind the backward pass (layer-wise
#: push while upstream layers still compute).
COMM_OVERLAP = 0.3


@dataclass(frozen=True)
class DistributedProfile:
    """One distributed training iteration's resolved performance."""

    model: str
    framework: str
    configuration: str
    per_gpu_batch: int
    worker_count: int
    compute_time_s: float
    exchange_time_s: float
    exposed_exchange_s: float
    iteration_time_s: float
    samples_per_iteration: float

    @property
    def throughput(self) -> float:
        """Aggregate samples/second across all workers."""
        return self.samples_per_iteration / self.iteration_time_s

    @property
    def scaling_efficiency(self) -> float:
        """Throughput relative to `worker_count x` the single-worker rate."""
        single = (self.samples_per_iteration / self.worker_count) / (
            self.compute_time_s
        )
        ideal = single * self.worker_count
        return self.throughput / ideal if ideal > 0 else 0.0

    @property
    def communication_fraction(self) -> float:
        """Share of the iteration spent in exposed communication."""
        return self.exposed_exchange_s / self.iteration_time_s


class DataParallelTrainer:
    """Simulates synchronous data-parallel training of one model."""

    def __init__(
        self,
        model: str,
        framework: str,
        cluster: ClusterSpec,
        exchange=None,
        fault_plan=None,
    ):
        self.cluster = cluster
        self.exchange = exchange if exchange is not None else ParameterServerExchange()
        #: Optional :class:`~repro.faults.plan.FaultPlan` consulted by
        #: :meth:`run_step`; ``None`` (or the empty plan) leaves every
        #: step on the exact :meth:`run_iteration` arithmetic.
        self.fault_plan = fault_plan
        self.session = TrainingSession(
            model, framework, gpu=cluster.machine.gpu, cpu=cluster.machine.cpu
        )

    def run_iteration(self, per_gpu_batch: int) -> DistributedProfile:
        """Simulate one synchronous iteration at ``per_gpu_batch`` per GPU.

        Raises:
            OutOfMemoryError: if a single replica does not fit its GPU.
        """
        workers = max(1, self.cluster.total_gpus)
        span = trace_span(
            "distributed.iteration",
            model=self.session.spec.key,
            configuration=self.cluster.name,
            exchange=self.exchange.name,
            workers=workers,
            per_gpu_batch=per_gpu_batch,
        )
        with span:
            local = self.session.run_iteration(per_gpu_batch)
            plan = self.session.compile(per_gpu_batch)
            gradient_bytes = plan.graph.total_weight_bytes

            cost = self.exchange.cost(gradient_bytes, self.cluster)
            exchange_time = cost.total_s if workers > 1 else 0.0
            exposed = exchange_time * (1.0 - COMM_OVERLAP)
            iteration = local.iteration_time_s + exposed
            span.set_attributes(
                gradient_bytes=gradient_bytes,
                exchange_s=exchange_time,
                exposed_exchange_s=exposed,
                iteration_time_s=iteration,
            )
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("distributed_iterations_total").inc()
                metrics.counter("exchange_exposed_seconds_total").inc(exposed)
                metrics.gauge(
                    "distributed_workers", {"configuration": self.cluster.name}
                ).set(workers)
        return DistributedProfile(
            model=self.session.spec.display_name,
            framework=self.session.framework.name,
            configuration=self.cluster.name,
            per_gpu_batch=per_gpu_batch,
            worker_count=workers,
            compute_time_s=local.iteration_time_s,
            exchange_time_s=exchange_time,
            exposed_exchange_s=exposed,
            iteration_time_s=iteration,
            samples_per_iteration=local.effective_samples * workers,
        )

    def run_step(self, per_gpu_batch: int, step: int = 0) -> DistributedProfile:
        """One synchronous iteration at a specific ``step`` index, priced
        under the trainer's fault plan.

        Stragglers stretch the compute phase (the synchronous barrier
        waits for the slowest replica); link degradation re-prices the
        exchange over the degraded fabric.  Point events (crashes,
        timeouts) are recovery concerns and belong to
        :class:`~repro.faults.trainer.FaultTolerantTrainer` — this method
        prices the step as if they did not fire.  With no plan, or a
        clean step, the result is byte-identical to
        :meth:`run_iteration`.

        Raises:
            UnrecoverableFaultError: when the plan has the link fully out
                at ``step`` — a bare priced step cannot complete and only
                the recovery loop knows how to retry through it.
        """
        plan = self.fault_plan
        if plan is None or plan.is_empty:
            return self.run_iteration(per_gpu_batch)
        conds = plan.conditions_at(step)
        if conds.is_clean:
            return self.run_iteration(per_gpu_batch)
        if conds.link_is_out:
            from repro.faults.recovery import UnrecoverableFaultError

            raise UnrecoverableFaultError(
                f"link is fully out at step {step}; a bare step cannot "
                "complete (use FaultTolerantTrainer to retry through it)",
                step=step,
                kind="link-outage",
            )
        cluster = self.cluster.with_degraded_link(
            bandwidth_factor=conds.bandwidth_factor,
            packet_loss=conds.packet_loss,
            extra_latency_s=conds.extra_latency_s,
        )
        workers = max(1, cluster.total_gpus)
        with trace_span(
            "distributed.step",
            model=self.session.spec.key,
            configuration=cluster.name,
            step=step,
            straggle_factor=conds.straggle_factor,
        ):
            local = self.session.run_iteration(per_gpu_batch)
            compiled = self.session.compile(per_gpu_batch)
            gradient_bytes = compiled.graph.total_weight_bytes
            compute = local.iteration_time_s * conds.straggle_factor
            cost = self.exchange.cost(gradient_bytes, cluster)
            exchange_time = cost.total_s if workers > 1 else 0.0
            exposed = exchange_time * (1.0 - COMM_OVERLAP)
        return DistributedProfile(
            model=self.session.spec.display_name,
            framework=self.session.framework.name,
            configuration=cluster.name,
            per_gpu_batch=per_gpu_batch,
            worker_count=workers,
            compute_time_s=compute,
            exchange_time_s=exchange_time,
            exposed_exchange_s=exposed,
            iteration_time_s=compute + exposed,
            samples_per_iteration=local.effective_samples * workers,
        )

    def gradient_schedule(self, per_gpu_batch: int) -> list:
        """Per-layer ``(layer_name, gradient_ready_s)`` pairs, in the order
        the backward pass produces them — the schedule a layer-wise push
        (the mechanism behind ``COMM_OVERLAP``) would follow.  Read straight
        from the replica's compiled plan."""
        plan = self.session.compile(per_gpu_batch)
        return plan.gradient_ready_times()

    def sweep(self, per_gpu_batches) -> list:
        """Profile several per-GPU batch sizes (Fig. 10's x-axis)."""
        return [self.run_iteration(batch) for batch in per_gpu_batches]
