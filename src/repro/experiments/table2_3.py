"""Tables 2 and 3: the benchmark-suite and dataset overviews, generated
from the live registries (so the tables can never drift from the code)."""

from __future__ import annotations

from repro.core.report import render_table
from repro.data.registry import dataset_catalog
from repro.frameworks.registry import get_framework
from repro.models.registry import model_catalog


def generate_table2() -> list:
    """Rows of Table 2: (application, model, layers, dominant layer,
    frameworks, dataset)."""
    rows = []
    for spec in model_catalog().values():
        frameworks = ", ".join(
            get_framework(key).name for key in spec.frameworks
        )
        rows.append(
            (
                spec.application,
                spec.display_name,
                spec.paper_layer_count,
                spec.dominant_layer,
                frameworks,
                spec.dataset,
            )
        )
    return rows


def generate_table3() -> list:
    """Rows of Table 3: (dataset, number of samples, size, special)."""
    rows = []
    for dataset in dataset_catalog().values():
        samples = f"{dataset.num_samples:,}" if dataset.num_samples else "N/A"
        rows.append((dataset.name, samples, dataset.size_description, dataset.special))
    return rows


def generate() -> dict:
    """Generate both tables; returns {'table2': rows, 'table3': rows}."""
    return {"table2": generate_table2(), "table3": generate_table3()}


def render() -> str:
    """Render Tables 2 and 3 as monospace tables."""
    table2 = render_table(
        headers=("Application", "Model", "Layers", "Dominant", "Frameworks", "Dataset"),
        rows=generate_table2(),
        title="Table 2: Overview of Benchmarks",
    )
    table3 = render_table(
        headers=("Dataset", "Samples", "Size", "Special"),
        rows=generate_table3(),
        title="Table 3: Training Datasets",
    )
    return f"{table2}\n\n{table3}"
