"""Extension exhibit: YOLOv2 vs. Faster R-CNN — the comparison the paper
queues up when it plans to add YOLO9000 ("It can perform inference faster
than Faster R-CNN", Section 3.1.2), run on the reproduction's toolchain
for *training*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import render_table
from repro.training.session import TrainingSession

FRAMEWORK = "mxnet"


@dataclass(frozen=True)
class DetectorComparison:
    model: str
    batch_size: int
    throughput: float
    gpu_utilization: float
    fp32_utilization: float
    memory_gib: float


def generate() -> list:
    """Profile both detectors at their natural batch sizes."""
    rows = []
    for model, batch in (("faster-rcnn", 1), ("yolo-v2", 16)):
        profile = TrainingSession(model, FRAMEWORK).run_iteration(batch)
        rows.append(
            DetectorComparison(
                model=profile.model,
                batch_size=batch,
                throughput=profile.throughput,
                gpu_utilization=profile.gpu_utilization,
                fp32_utilization=profile.fp32_utilization,
                memory_gib=profile.memory.peak_total / 1024.0**3,
            )
        )
    return rows


def render(rows=None) -> str:
    """Format the detector comparison as a paper-style table."""
    rows = rows if rows is not None else generate()
    table = render_table(
        headers=("Detector", "Batch", "img/s", "GPU util", "FP32 util", "Memory"),
        rows=[
            (
                row.model,
                row.batch_size,
                f"{row.throughput:.1f}",
                f"{row.gpu_utilization * 100:.0f}%",
                f"{row.fp32_utilization * 100:.0f}%",
                f"{row.memory_gib:.1f} GiB",
            )
            for row in rows
        ],
        title="Extension: YOLOv2 vs Faster R-CNN training (Pascal VOC, MXNet)",
    )
    speedup = rows[1].throughput / rows[0].throughput
    return (
        f"{table}\n"
        f"single-shot detection trains {speedup:.0f}x more images/second: "
        f"ordinary mini-batching vs. Faster R-CNN's one-image iterations"
    )
