"""Calibration-sensitivity analysis: are the reproduced findings robust?

A simulator's conclusions are only as good as its constants are
non-critical: if Observation 5 held solely at ``sync_latency = 260 µs`` and
vanished at 200 µs, the "reproduction" would be a curve fit.  This module
sweeps the most influential calibration constants across wide ranges and
checks, at every point, whether the associated paper finding still holds —
reporting the *robust range* per (constant, finding) pair.

Swept constants and the findings they could break:

- framework ``sync_latency_s`` (x0.25 .. x4)  -> Obs. 5 (LSTM utilization
  gap) and Obs. 3 (TF > MXNet on Seq2Seq);
- GEMM tile half-dimension (x0.5 .. x3)       -> Obs. 7 (RNN FP32 floor);
- MXNet ``pool_overhead`` (1.05 .. 1.35)      -> the Sockeye-64 memory
  limit's *direction* (Sockeye max <= NMT max);
- occupancy-ramp scaling exponent (0.25 .. 1) -> Obs. 10 (Titan Xp less
  utilized).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import repro.kernels.gemm as gemm_module
from repro.frameworks.registry import MXNET, TENSORFLOW
from repro.hardware.devices import TITAN_XP
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class SensitivityPoint:
    """One swept value and whether the finding held there."""

    value: float
    holds: bool
    evidence: str


@dataclass(frozen=True)
class SensitivityResult:
    """One (constant, finding) sweep."""

    constant: str
    finding: str
    points: tuple

    @property
    def robust(self) -> bool:
        """True if the finding held at every swept value."""
        return all(point.holds for point in self.points)

    @property
    def robust_fraction(self) -> float:
        if not self.points:
            return 0.0
        return sum(1 for p in self.points if p.holds) / len(self.points)


def _session_with(model: str, framework) -> TrainingSession:
    session = TrainingSession(model, framework.key)
    session.framework = framework
    return session


def sweep_sync_latency(factors=(0.25, 0.5, 1.0, 2.0, 4.0)) -> SensitivityResult:
    """Obs. 5: NMT's GPU utilization stays well below ResNet-50's across a
    16x range of per-step sync latency."""
    cnn = TrainingSession("resnet-50", "mxnet").run_iteration(32).gpu_utilization
    points = []
    for factor in factors:
        framework = dataclasses.replace(
            TENSORFLOW, sync_latency_s=260e-6 * factor
        )
        lstm = _session_with("nmt", framework).run_iteration(128).gpu_utilization
        holds = lstm < cnn - 0.10
        points.append(
            SensitivityPoint(
                value=factor,
                holds=holds,
                evidence=f"NMT {lstm * 100:.0f}% vs ResNet {cnn * 100:.0f}%",
            )
        )
    return SensitivityResult(
        constant="framework.sync_latency_s (x factor)",
        finding="Obs. 5: LSTM GPU utilization below CNN",
        points=tuple(points),
    )


def sweep_gemm_tile(factors=(0.5, 1.0, 2.0, 3.0)) -> SensitivityResult:
    """Obs. 7: Sockeye's FP32 utilization stays below ResNet-50's across a
    6x range of the SGEMM tile half-dimension."""
    original = gemm_module._TILE_HALF_DIM
    points = []
    try:
        for factor in factors:
            gemm_module._TILE_HALF_DIM = int(original * factor)
            rnn = TrainingSession("sockeye", "mxnet").run_iteration(64).fp32_utilization
            cnn = TrainingSession("resnet-50", "mxnet").run_iteration(32).fp32_utilization
            holds = rnn < cnn
            points.append(
                SensitivityPoint(
                    value=factor,
                    holds=holds,
                    evidence=f"Sockeye {rnn * 100:.0f}% vs ResNet {cnn * 100:.0f}%",
                )
            )
    finally:
        gemm_module._TILE_HALF_DIM = original
    return SensitivityResult(
        constant="kernels.gemm._TILE_HALF_DIM (x factor)",
        finding="Obs. 7: RNN FP32 utilization below CNN",
        points=tuple(points),
    )


def sweep_pool_overhead(values=(1.05, 1.15, 1.22, 1.30, 1.35)) -> SensitivityResult:
    """The Seq2Seq memory asymmetry's *direction*: Sockeye's maximum batch
    never exceeds NMT's, whatever the allocator slack."""
    nmt_max = TrainingSession("nmt", "tensorflow").max_batch_size((32, 64, 128, 256))
    points = []
    for value in values:
        framework = dataclasses.replace(MXNET, pool_overhead=value)
        sockeye_max = _session_with("sockeye", framework).max_batch_size(
            (32, 64, 128, 256)
        )
        holds = sockeye_max <= nmt_max
        points.append(
            SensitivityPoint(
                value=value,
                holds=holds,
                evidence=f"Sockeye max {sockeye_max} vs NMT max {nmt_max}",
            )
        )
    return SensitivityResult(
        constant="MXNet pool_overhead",
        finding="Sockeye memory ceiling <= NMT's",
        points=tuple(points),
    )


def sweep_ramp_exponent(values=(0.25, 0.5, 0.75, 1.0)) -> SensitivityResult:
    """Obs. 10: the Titan Xp utilization drop holds for any positive ramp
    scaling exponent (the calibrated value is 0.5)."""
    import repro.hardware.roofline as roofline_module

    points = []
    original_init = roofline_module.RooflineModel.__init__
    for exponent in values:

        def patched_init(self, device, _exp=exponent):
            self.device = device
            self._ramp_s = roofline_module.RooflineModel._BASE_OCCUPANCY_RAMP_S * (
                device.peak_fp32_flops / roofline_module.RooflineModel._BASE_PEAK_FLOPS
            ) ** _exp

        roofline_module.RooflineModel.__init__ = patched_init
        try:
            p4 = TrainingSession("resnet-50", "mxnet").run_iteration(32)
            xp = TrainingSession("resnet-50", "mxnet", gpu=TITAN_XP).run_iteration(32)
        finally:
            roofline_module.RooflineModel.__init__ = original_init
        holds = (
            xp.fp32_utilization < p4.fp32_utilization
            and xp.throughput > p4.throughput
        )
        points.append(
            SensitivityPoint(
                value=exponent,
                holds=holds,
                evidence=f"fp32 {p4.fp32_utilization * 100:.0f}%->"
                f"{xp.fp32_utilization * 100:.0f}%, "
                f"x{xp.throughput / p4.throughput:.2f}",
            )
        )
    return SensitivityResult(
        constant="occupancy-ramp device exponent",
        finding="Obs. 10: Titan Xp faster but less utilized",
        points=tuple(points),
    )


def run_all() -> list:
    """All sensitivity sweeps."""
    return [
        sweep_sync_latency(),
        sweep_gemm_tile(),
        sweep_pool_overhead(),
        sweep_ramp_exponent(),
    ]


def render(results=None) -> str:
    """Printable sensitivity report."""
    results = results if results is not None else run_all()
    lines = ["calibration-sensitivity analysis"]
    for result in results:
        status = "ROBUST" if result.robust else (
            f"holds at {result.robust_fraction * 100:.0f}% of swept values"
        )
        lines.append(f"\n{result.finding}")
        lines.append(f"  swept: {result.constant} -> {status}")
        for point in result.points:
            mark = "ok " if point.holds else "BRK"
            lines.append(f"    [{mark}] {point.value:g}: {point.evidence}")
    return "\n".join(lines)
