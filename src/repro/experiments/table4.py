"""Table 4: hardware specifications, from the device catalog."""

from __future__ import annotations

from repro.core.report import render_table
from repro.hardware.devices import QUADRO_P4000, TITAN_XP, XEON_E5_2680


def generate() -> list:
    """(attribute, Titan Xp, Quadro P4000, Xeon E5-2680) rows."""
    xp, p4, cpu = TITAN_XP, QUADRO_P4000, XEON_E5_2680
    return [
        ("Multiprocessors", xp.multiprocessors, p4.multiprocessors, ""),
        ("Core Count", xp.core_count, p4.core_count, cpu.core_count),
        ("Max Clock Rate (MHz)", xp.max_clock_mhz, p4.max_clock_mhz, cpu.max_clock_mhz),
        ("Memory Size (GB)", xp.memory_gb, p4.memory_gb, cpu.memory_gb),
        ("LLC Size (MB)", xp.llc_mb, p4.llc_mb, cpu.llc_mb),
        ("Memory Bus Type", xp.memory_bus, p4.memory_bus, cpu.memory_bus),
        (
            "Memory BW (GB/s)",
            xp.memory_bandwidth_gbs,
            p4.memory_bandwidth_gbs,
            cpu.memory_bandwidth_gbs,
        ),
        ("Bus Interface", xp.bus_interface, p4.bus_interface, ""),
        ("Memory Speed (MHz)", xp.memory_speed_mhz, p4.memory_speed_mhz, cpu.memory_speed_mhz),
        (
            "Peak FP32 (TFLOP/s, derived)",
            round(xp.peak_fp32_flops / 1e12, 2),
            round(p4.peak_fp32_flops / 1e12, 2),
            "",
        ),
    ]


def render() -> str:
    """Render Table 4 as a monospace table."""
    return render_table(
        headers=("", "Titan Xp", "Quadro P4000", "Intel Xeon E5-2680"),
        rows=generate(),
        title="Table 4: Hardware specifications",
    )
