"""Tables 5 and 6: the five longest-running kernels with FP32 utilization
below the model average — ResNet-50 at mini-batch 32, on TensorFlow
(Table 5) and MXNet (Table 6).

Note on magnitudes: nvprof's utilization counters include *every* FP32
instruction a kernel issues (address arithmetic, predication); the
simulator counts useful math FLOPs only, so its percentages sit lower than
the paper's 20-46% band.  The reproduced content of the tables — batch-
normalization kernels leading the list, framework-specific elementwise
kernels (Eigen / mxnet_generic) appearing, every row below the model
average — is preserved (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.core.suite import standard_suite
from repro.profiling.kernel_trace import trace_from_profile

MODEL = "resnet-50"
BATCH = 32


def generate(framework: str, suite=None) -> dict:
    """Run the Table 5/6 query for one framework."""
    suite = suite if suite is not None else standard_suite()
    session = suite.session(MODEL, framework)
    profile = session.run_iteration(BATCH)
    trace = trace_from_profile(profile)
    return {
        "rows": trace.longest_low_utilization_kernels(5),
        "average_fp32_utilization": trace.average_fp32_utilization,
    }


def render(framework: str = "tensorflow", data=None) -> str:
    """Render one framework's table."""
    data = data if data is not None else generate(framework)
    table_number = 5 if framework.lower() in ("tensorflow", "tf") else 6
    rows = [
        (
            f"{row.duration_share * 100:.2f}%",
            f"{row.fp32_utilization * 100:.1f}%",
            row.kernel_name,
        )
        for row in data["rows"]
    ]
    table = render_table(
        headers=("Duration", "Utilization", "Kernel Name"),
        rows=rows,
        title=(
            f"Table {table_number}: longest 5 kernels below average FP32 "
            f"utilization (ResNet-50, b={BATCH}, {framework}; model average "
            f"{data['average_fp32_utilization'] * 100:.1f}%)"
        ),
    )
    return table


def render_both() -> str:
    """Render Table 5 (TensorFlow) and Table 6 (MXNet) together."""
    return render("tensorflow") + "\n\n" + render("mxnet")
