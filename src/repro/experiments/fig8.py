"""Fig. 8: Quadro P4000 vs. Titan Xp — throughput (normalized to P4000),
GPU compute utilization, and FP32 utilization, for the paper's six
hardware-sensitivity configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.suite import TBDSuite, standard_suite
from repro.hardware.devices import TITAN_XP

#: The configurations of Fig. 8, grouped as the paper panels them.
CONFIGS = (
    ("mxnet", "resnet-50", 32),
    ("mxnet", "inception-v3", 32),
    ("mxnet", "sockeye", 64),
    ("tensorflow", "resnet-50", 32),
    ("tensorflow", "inception-v3", 32),
    ("tensorflow", "nmt", 128),
)


@dataclass(frozen=True)
class HardwareComparison:
    framework: str
    model: str
    batch_size: int
    p4000_throughput: float
    titan_throughput: float
    p4000_gpu_utilization: float
    titan_gpu_utilization: float
    p4000_fp32_utilization: float
    titan_fp32_utilization: float

    @property
    def normalized_throughput(self) -> float:
        """Titan Xp over P4000 (the paper's panels a/b)."""
        return self.titan_throughput / self.p4000_throughput


def generate(p4000_suite=None) -> list:
    """Run all six hardware-sensitivity configurations."""
    p4 = p4000_suite if p4000_suite is not None else standard_suite()
    xp = TBDSuite(gpu=TITAN_XP)
    comparisons = []
    for framework, model, batch in CONFIGS:
        a = p4.run(model, framework, batch)
        b = xp.run(model, framework, batch)
        comparisons.append(
            HardwareComparison(
                framework=framework,
                model=model,
                batch_size=batch,
                p4000_throughput=a.throughput,
                titan_throughput=b.throughput,
                p4000_gpu_utilization=a.gpu_utilization,
                titan_gpu_utilization=b.gpu_utilization,
                p4000_fp32_utilization=a.fp32_utilization,
                titan_fp32_utilization=b.fp32_utilization,
            )
        )
    return comparisons


def render(data=None) -> str:
    """Format the Fig. 8 comparisons as aligned text."""
    data = data if data is not None else generate()
    lines = ["Fig. 8: Titan Xp vs Quadro P4000"]
    for c in data:
        lines.append(
            f"{c.model:13s} ({c.framework:11s}, b={c.batch_size:<4d}) "
            f"throughput x{c.normalized_throughput:4.2f} "
            f"(XP {c.titan_throughput:7.1f} vs P4 {c.p4000_throughput:7.1f})  "
            f"gpu {c.p4000_gpu_utilization * 100:3.0f}%->"
            f"{c.titan_gpu_utilization * 100:3.0f}%  "
            f"fp32 {c.p4000_fp32_utilization * 100:3.0f}%->"
            f"{c.titan_fp32_utilization * 100:3.0f}%"
        )
    return "\n".join(lines)
