"""Fig. 6: GPU FP32 utilization vs. mini-batch size (paper Eq. 2)."""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.suite import standard_suite
from repro.experiments.common import run_sweeps


def generate(suite=None, engine=None) -> dict:
    """Run every Fig. 6 sweep plus the Faster R-CNN point.

    ``engine`` (see :meth:`TBDSuite.engine`) parallelizes and memoizes
    the whole grid."""
    suite = suite if suite is not None else standard_suite()
    sweeps = run_sweeps("fp32_utilization", suite, engine=engine)
    faster_rcnn = {
        framework: suite.run(
            "faster-rcnn", framework, 1, engine=engine
        ).fp32_utilization
        for framework in ("tensorflow", "mxnet")
    }
    return {"sweeps": sweeps, "faster_rcnn": faster_rcnn}


def render(data=None) -> str:
    """Format the Fig. 6 utilization series as aligned text."""
    data = data if data is not None else generate()
    lines = ["Fig. 6: GPU FP32 utilization vs mini-batch size"]
    for series in data["sweeps"]:
        values = [None if v is None else v * 100 for v in series.values]
        lines.append(
            render_series(
                f"{series.model} ({series.framework})",
                series.batch_sizes,
                values,
                x_label="b",
                y_fmt="{:.0f}%",
            )
        )
    for framework, value in data["faster_rcnn"].items():
        lines.append(f"faster-rcnn ({framework}): {value * 100:.1f}%")
    return "\n".join(lines)
