"""Table 1: the motivating literature survey.

The paper categorizes systems/architecture conference papers (SOSP, OSDI,
NSDI, MICRO, ISCA, HPCA, ASPLOS; 2014-2018) along two axes — training vs.
inference, and image-classification-only vs. broader workloads — finding
that inference (25 papers + 4 both) and image-classification-only
evaluation (26 papers) dominate.  The table below encodes that
categorization by the paper's own citation numbers, so the counts and the
headline ratios regenerate from data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import render_table

#: Citation numbers from the paper's bibliography, per Table 1 cell.
TRAINING_IMAGE_ONLY = (29, 35, 37, 56, 61, 62, 83, 90, 95)
TRAINING_BROADER = (10, 22, 58, 66, 75, 77, 99)
INFERENCE_IMAGE_ONLY = (
    12, 13, 14, 25, 28, 37, 39, 42, 61, 67, 68, 74, 81, 86, 87, 88, 90, 103, 104,
)
INFERENCE_BROADER = (10, 38, 46, 51, 60, 75)

#: Papers that appear in both a training and an inference cell.
BOTH_TRAINING_AND_INFERENCE = tuple(
    sorted(
        (set(TRAINING_IMAGE_ONLY) | set(TRAINING_BROADER))
        & (set(INFERENCE_IMAGE_ONLY) | set(INFERENCE_BROADER))
    )
)


@dataclass(frozen=True)
class SurveySummary:
    """The counts the paper's caption quotes."""

    training_papers: int
    inference_papers: int
    both: int
    image_only_papers: int
    broader_papers: int

    @property
    def inference_over_training(self) -> float:
        return self.inference_papers / self.training_papers

    @property
    def image_only_over_broader(self) -> float:
        return self.image_only_papers / self.broader_papers


def generate() -> SurveySummary:
    """Recompute the caption's counts from the cell memberships.

    Note: the paper's caption quotes (25 inference vs. 16 training, 4 both;
    26 image-only vs. 11 broader).  Counting the table's actual citation
    lists gives 25/16 with *5* shared papers and *25* image-only — the
    caption appears to off-by-one itself; we report what the cells contain.
    """
    training = set(TRAINING_IMAGE_ONLY) | set(TRAINING_BROADER)
    inference = set(INFERENCE_IMAGE_ONLY) | set(INFERENCE_BROADER)
    image_only = set(TRAINING_IMAGE_ONLY) | set(INFERENCE_IMAGE_ONLY)
    broader = set(TRAINING_BROADER) | set(INFERENCE_BROADER)
    return SurveySummary(
        training_papers=len(training),
        inference_papers=len(inference),
        both=len(training & inference),
        image_only_papers=len(image_only - broader),
        broader_papers=len(broader - image_only),
    )


def render() -> str:
    """Table 1 plus its caption counts."""
    summary = generate()

    def cite(numbers) -> str:
        return "".join(f"[{n}]" for n in numbers)

    table = render_table(
        headers=("", "Image Classification Only", "Broader (non-CNN workloads)"),
        rows=[
            ("Training", cite(TRAINING_IMAGE_ONLY), cite(TRAINING_BROADER)),
            ("Inference", cite(INFERENCE_IMAGE_ONLY), cite(INFERENCE_BROADER)),
        ],
        title="Table 1: systems/architecture papers since 2014, categorized",
    )
    caption = (
        f"inference-only {summary.inference_papers} vs. training-only "
        f"{summary.training_papers} ({summary.both} both); "
        f"image-classification-only {summary.image_only_papers} vs. "
        f"broader {summary.broader_papers}"
    )
    return f"{table}\n{caption}"
