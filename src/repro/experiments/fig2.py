"""Fig. 2: model accuracy over training time, five representative models.

The time axis comes from each model's *simulated* stable-phase throughput
on the single-P4000 configuration (as in the paper); the metric curves come
from the calibrated convergence models (see
:mod:`repro.training.convergence` and DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.suite import standard_suite
from repro.training.convergence import FIG2_MODELS, training_curve

#: (panel, model, framework, batch, training duration shown in the paper).
PANELS = (
    ("a", "inception-v3", "mxnet", 32, 25 * 24 * 3600.0),  # ~25 days
    ("a", "inception-v3", "tensorflow", 32, 25 * 24 * 3600.0),
    ("a", "inception-v3", "cntk", 32, 25 * 24 * 3600.0),
    ("b", "resnet-50", "mxnet", 32, 18 * 24 * 3600.0),  # ~18 days
    ("b", "resnet-50", "tensorflow", 32, 18 * 24 * 3600.0),
    ("b", "resnet-50", "cntk", 32, 18 * 24 * 3600.0),
    ("c", "transformer", "tensorflow", 2048, 32 * 3600.0),  # ~32 hours
    ("d", "nmt", "tensorflow", 128, 5 * 3600.0),  # ~5 hours
    ("d", "sockeye", "mxnet", 64, 5 * 3600.0),
    ("e", "a3c", "mxnet", 128, 15 * 3600.0),  # ~15 hours
)


@dataclass(frozen=True)
class ConvergenceCurve:
    panel: str
    model: str
    framework: str
    metric_name: str
    times_s: tuple
    values: tuple

    @property
    def final_value(self) -> float:
        return self.values[-1]


def generate(suite=None, points: int = 32) -> list:
    """Run every Fig. 2 panel; returns ConvergenceCurve records."""
    suite = suite if suite is not None else standard_suite()
    curves = []
    for panel, model, framework, batch, duration in PANELS:
        throughput = suite.run(model, framework, batch).throughput
        times, values = training_curve(model, throughput, duration, points)
        curves.append(
            ConvergenceCurve(
                panel=panel,
                model=model,
                framework=framework,
                metric_name=FIG2_MODELS[model].metric_name,
                times_s=tuple(times),
                values=tuple(values),
            )
        )
    return curves


def render(curves=None) -> str:
    """Format the Fig. 2 curves as quartile listings."""
    curves = curves if curves is not None else generate()
    lines = ["Fig. 2: model accuracy during training"]
    for curve in curves:
        hours = curve.times_s[-1] / 3600.0
        quarters = [curve.values[i] for i in (0, 8, 16, 24, -1)]
        trail = "  ".join(f"{v:7.2f}" for v in quarters)
        lines.append(
            f"({curve.panel}) {curve.model:13s} {curve.framework:11s} "
            f"{curve.metric_name:20s} over {hours:7.1f} h: {trail}"
        )
    return "\n".join(lines)
