"""Fig. 7: average CPU utilization across all 14 model/framework pairs."""

from __future__ import annotations

from repro.core.report import render_bar_chart
from repro.core.suite import standard_suite

#: Fig. 7 bar order, with the paper's measured value for reference.
PAIRS = (
    ("resnet-50", "mxnet", 5.21),
    ("resnet-50", "tensorflow", 5.58),
    ("resnet-50", "cntk", 0.08),
    ("inception-v3", "mxnet", 5.20),
    ("inception-v3", "tensorflow", 8.01),
    ("inception-v3", "cntk", 0.05),
    ("nmt", "tensorflow", 5.30),
    ("sockeye", "mxnet", 6.10),
    ("transformer", "tensorflow", 1.68),
    ("faster-rcnn", "mxnet", 3.64),
    ("faster-rcnn", "tensorflow", 13.25),
    ("wgan", "tensorflow", 1.78),
    ("deep-speech-2", "mxnet", 4.35),
    ("a3c", "mxnet", 28.75),
)


def generate(suite=None) -> list:
    """(label, measured %, paper %) for every Fig. 7 bar."""
    suite = suite if suite is not None else standard_suite()
    results = []
    for model, framework, paper_value in PAIRS:
        metrics = suite.run(model, framework)
        results.append(
            (
                f"{metrics.model} ({metrics.framework})",
                metrics.cpu_utilization * 100.0,
                paper_value,
            )
        )
    return results


def render(data=None) -> str:
    """Render the Fig. 7 bars as an ASCII chart with paper values."""
    data = data if data is not None else generate()
    labels = [f"{label}  (paper {paper:.2f}%)" for label, _, paper in data]
    values = [measured for _, measured, _ in data]
    return render_bar_chart(
        "Fig. 7: average CPU utilization", labels, values, unit="%"
    )
