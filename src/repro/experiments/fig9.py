"""Fig. 9: GPU memory-usage breakdown (five classes) per model, framework
and mini-batch size."""

from __future__ import annotations

from repro.core.report import render_stacked_memory
from repro.profiling.memory_profiler import MemoryProfiler

#: Fig. 9 panels: (model, framework, batch sizes shown in the paper).
PANELS = (
    ("resnet-50", "mxnet", (8, 16, 32)),
    ("resnet-50", "tensorflow", (8, 16, 32)),
    ("resnet-50", "cntk", (16, 32, 64)),
    ("wgan", "tensorflow", (16, 32, 64)),
    ("inception-v3", "mxnet", (8, 16, 32)),
    ("inception-v3", "tensorflow", (8, 16, 32)),
    ("inception-v3", "cntk", (16, 32, 64)),
    ("deep-speech-2", "mxnet", (1, 2, 3, 4)),
    ("sockeye", "mxnet", (16, 32, 64)),
    ("nmt", "tensorflow", (32, 64, 128)),
    ("transformer", "tensorflow", (512, 1024, 2048)),
    ("a3c", "mxnet", (32, 64, 128)),
    ("faster-rcnn", "mxnet", (1,)),
    ("faster-rcnn", "tensorflow", (1,)),
)


def generate(gpu=None) -> list:
    """All Fig. 9 memory profiles, in panel order."""
    profiler = MemoryProfiler(gpu=gpu)
    profiles = []
    for model, framework, batches in PANELS:
        profiles.extend(profiler.sweep(model, framework, batches))
    return profiles


def render(profiles=None) -> str:
    """Format the Fig. 9 breakdowns as a stacked-memory listing."""
    profiles = profiles if profiles is not None else generate()
    return render_stacked_memory(
        "Fig. 9: GPU memory usage breakdown (peak GiB per class)", profiles
    )
