"""Experiment generators: one module per table and figure of the paper's
evaluation.  Each module exposes

- ``generate(...)`` — run the experiment and return plain data, and
- ``render(...)`` — format that data the way the paper prints it.

The benchmark harness (``benchmarks/``) times and prints these; the
integration tests assert their shapes against the paper's findings.
"""

from repro.experiments import (
    fig1_fig3,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2_3,
    table4,
    table5_6,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "fig1_fig3": fig1_fig3,
    "table2_3": table2_3,
    "table4": table4,
    "fig2": fig2,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "table5_6": table5_6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}

#: Exhibits beyond the paper's evaluation (suite extensions).
from repro.experiments import extension_yolo  # noqa: E402

EXTENSION_EXPERIMENTS = {"extension_yolo": extension_yolo}

__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS"] + list(ALL_EXPERIMENTS)
