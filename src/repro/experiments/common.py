"""Shared helpers for the mini-batch sweep experiments (Figs. 4-6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.suite import TBDSuite, standard_suite

#: The (model, framework) panels of Figs. 4-6, in the paper's panel order.
SWEEP_PANELS = (
    ("resnet-50", ("tensorflow", "mxnet", "cntk")),
    ("inception-v3", ("mxnet", "tensorflow", "cntk")),
    ("nmt", ("tensorflow",)),
    ("sockeye", ("mxnet",)),
    ("transformer", ("tensorflow",)),
    ("wgan", ("tensorflow",)),
    ("deep-speech-2", ("mxnet",)),
    ("a3c", ("mxnet",)),
)


@dataclass(frozen=True)
class SweepSeries:
    """One line of one panel: metric values over the batch sweep."""

    model: str
    framework: str
    batch_sizes: tuple
    values: tuple  # None marks an OOM point

    def finite(self) -> list:
        """(batch, value) pairs that did not OOM."""
        return [
            (batch, value)
            for batch, value in zip(self.batch_sizes, self.values)
            if value is not None
        ]


def run_sweeps(metric: str, suite: TBDSuite | None = None) -> list:
    """Run every Figs. 4-6 panel and extract ``metric`` from each point.

    Args:
        metric: attribute of :class:`~repro.core.metrics.IterationMetrics`
            (``throughput``, ``gpu_utilization``, ``fp32_utilization``).
    """
    suite = suite if suite is not None else standard_suite()
    series = []
    for model, frameworks in SWEEP_PANELS:
        for framework in frameworks:
            points = suite.sweep(model, framework)
            values = tuple(
                None if point.oom else getattr(point.metrics, metric)
                for point in points
            )
            series.append(
                SweepSeries(
                    model=model,
                    framework=framework,
                    batch_sizes=tuple(point.batch_size for point in points),
                    values=values,
                )
            )
    return series
