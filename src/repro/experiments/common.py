"""Shared helpers for the mini-batch sweep experiments (Figs. 4-6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.suite import TBDSuite, standard_suite

#: The (model, framework) panels of Figs. 4-6, in the paper's panel order.
SWEEP_PANELS = (
    ("resnet-50", ("tensorflow", "mxnet", "cntk")),
    ("inception-v3", ("mxnet", "tensorflow", "cntk")),
    ("nmt", ("tensorflow",)),
    ("sockeye", ("mxnet",)),
    ("transformer", ("tensorflow",)),
    ("wgan", ("tensorflow",)),
    ("deep-speech-2", ("mxnet",)),
    ("a3c", ("mxnet",)),
)


@dataclass(frozen=True)
class SweepSeries:
    """One line of one panel: metric values over the batch sweep."""

    model: str
    framework: str
    batch_sizes: tuple
    values: tuple  # None marks an OOM point

    def finite(self) -> list:
        """(batch, value) pairs that did not OOM."""
        return [
            (batch, value)
            for batch, value in zip(self.batch_sizes, self.values)
            if value is not None
        ]


def run_sweeps(
    metric: str, suite: TBDSuite | None = None, engine=None, panels=None
) -> list:
    """Run every Figs. 4-6 panel and extract ``metric`` from each point.

    Args:
        metric: attribute of :class:`~repro.core.metrics.IterationMetrics`
            (``throughput``, ``gpu_utilization``, ``fp32_utilization``).
        engine: optional :class:`~repro.engine.executor.SweepEngine`; when
            given, the *whole* grid (every panel, every batch size) is
            handed to the engine as one flat work list, so worker
            processes draw from all panels at once and memoized points
            are skipped — the serial per-panel loop below and the engine
            path are asserted equivalent by the differential harness.
        panels: panel tuples ``(model, (framework, ...))``; defaults to
            the paper's :data:`SWEEP_PANELS`.
    """
    panels = panels if panels is not None else SWEEP_PANELS
    if engine is not None:
        from repro.engine.executor import grid_for

        specs = grid_for(panels)
        points_by_spec = dict(zip(specs, engine.run_grid(specs)))
        series = []
        for model, frameworks in panels:
            for framework in frameworks:
                points = [
                    points_by_spec[spec]
                    for spec in specs
                    if spec.model == model and spec.framework == framework
                ]
                series.append(_series_from_points(model, framework, points, metric))
        return series
    suite = suite if suite is not None else standard_suite()
    series = []
    for model, frameworks in panels:
        for framework in frameworks:
            points = suite.sweep(model, framework)
            series.append(_series_from_points(model, framework, points, metric))
    return series


def _series_from_points(model: str, framework: str, points, metric: str) -> SweepSeries:
    """Collapse one panel's sweep points into a :class:`SweepSeries`."""
    return SweepSeries(
        model=model,
        framework=framework,
        batch_sizes=tuple(point.batch_size for point in points),
        values=tuple(
            None if point.oom else getattr(point.metrics, metric) for point in points
        ),
    )
