"""Fig. 10: ResNet-50 on MXNet across multi-GPU / multi-machine
configurations (data parallelism, parameter-server exchange)."""

from __future__ import annotations

from repro.core.report import render_series
from repro.distributed import DataParallelTrainer
from repro.distributed.topology import standard_configurations

MODEL = "resnet-50"
FRAMEWORK = "mxnet"
PER_GPU_BATCHES = (8, 16, 32)


def generate() -> dict:
    """Label -> list of DistributedProfile over the per-GPU batch sweep."""
    results = {}
    for label, cluster in standard_configurations().items():
        trainer = DataParallelTrainer(MODEL, FRAMEWORK, cluster)
        results[label] = trainer.sweep(PER_GPU_BATCHES)
    return results


def render(data=None) -> str:
    """Format the Fig. 10 series as aligned text."""
    data = data if data is not None else generate()
    lines = ["Fig. 10: ResNet-50 on MXNet with multiple GPUs/machines"]
    for label, profiles in data.items():
        lines.append(
            render_series(
                label,
                [p.per_gpu_batch for p in profiles],
                [p.throughput for p in profiles],
                x_label="b/gpu",
            )
        )
    return "\n".join(lines)


#: Fault scenarios for the degraded-cluster extension: the same Fig. 10
#: sweep with the interconnect and the workers misbehaving mid-run.
FAULT_SCENARIOS = {
    "clean": None,
    "straggler x1.5": "straggler=0x1.5@10:40",
    "bandwidth /2 + 5% loss": "degrade=bw0.5+loss0.05@10:40",
    "crash 1 machine @20": "crash=1@20",
}


def generate_degraded(configuration: str = "2M1G", fabric: str = "infiniband") -> dict:
    """Scenario label -> list of FaultTrainingResult over the batch sweep.

    The fault-injection extension of Fig. 10: the paper's distributed
    sweep re-run under each :data:`FAULT_SCENARIOS` entry, quantifying
    how much throughput each failure mode costs once recovery (backoff,
    rebalancing, elastic restart) has done its best.
    """
    from repro.faults.spec import parse_fault_spec
    from repro.faults.trainer import FaultTolerantTrainer
    from repro.hardware.cluster import parse_configuration

    cluster = parse_configuration(configuration, fabric=fabric)
    results: dict = {}
    for label, spec_text in FAULT_SCENARIOS.items():
        plan = None
        steps = 50
        if spec_text is not None:
            scenario = parse_fault_spec(f"cluster={configuration}:{fabric}; {spec_text}")
            plan = scenario.plan
            steps = scenario.steps
        runs = []
        for batch in PER_GPU_BATCHES:
            trainer = FaultTolerantTrainer(
                MODEL, FRAMEWORK, cluster, batch, plan=plan
            )
            runs.append(trainer.run(steps=steps))
        results[label] = runs
    return results


def render_degraded(data=None) -> str:
    """Format the fault-injection extension as aligned text."""
    data = data if data is not None else generate_degraded()
    lines = ["Fig. 10 (extension): ResNet-50 on MXNet under injected faults"]
    for label, runs in data.items():
        lines.append(
            render_series(
                label,
                [run.per_gpu_batch for run in runs],
                [run.throughput for run in runs],
                x_label="b/gpu",
            )
        )
    return "\n".join(lines)
