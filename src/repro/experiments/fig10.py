"""Fig. 10: ResNet-50 on MXNet across multi-GPU / multi-machine
configurations (data parallelism, parameter-server exchange)."""

from __future__ import annotations

from repro.core.report import render_series
from repro.distributed import DataParallelTrainer
from repro.distributed.topology import standard_configurations

MODEL = "resnet-50"
FRAMEWORK = "mxnet"
PER_GPU_BATCHES = (8, 16, 32)


def generate() -> dict:
    """Label -> list of DistributedProfile over the per-GPU batch sweep."""
    results = {}
    for label, cluster in standard_configurations().items():
        trainer = DataParallelTrainer(MODEL, FRAMEWORK, cluster)
        results[label] = trainer.sweep(PER_GPU_BATCHES)
    return results


def render(data=None) -> str:
    """Format the Fig. 10 series as aligned text."""
    data = data if data is not None else generate()
    lines = ["Fig. 10: ResNet-50 on MXNet with multiple GPUs/machines"]
    for label, profiles in data.items():
        lines.append(
            render_series(
                label,
                [p.per_gpu_batch for p in profiles],
                [p.throughput for p in profiles],
                x_label="b/gpu",
            )
        )
    return "\n".join(lines)
