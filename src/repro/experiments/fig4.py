"""Fig. 4: training throughput vs. mini-batch size, all models.

The paper also reports Faster R-CNN inline (no sweep; one image per
iteration; ~2.3 images/s on both frameworks) — included here as the
``faster_rcnn`` entry.
"""

from __future__ import annotations

from repro.core.report import render_series
from repro.core.suite import standard_suite
from repro.experiments.common import run_sweeps


def generate(suite=None, engine=None) -> dict:
    """Run every Fig. 4 sweep plus the Faster R-CNN point.

    ``engine`` (see :meth:`TBDSuite.engine`) parallelizes and memoizes
    the whole grid."""
    suite = suite if suite is not None else standard_suite()
    sweeps = run_sweeps("throughput", suite, engine=engine)
    faster_rcnn = {
        framework: suite.run("faster-rcnn", framework, 1, engine=engine).throughput
        for framework in ("tensorflow", "mxnet")
    }
    return {"sweeps": sweeps, "faster_rcnn": faster_rcnn}


def render(data=None) -> str:
    """Format the Fig. 4 throughput series as aligned text."""
    data = data if data is not None else generate()
    lines = ["Fig. 4: DNN training throughput vs mini-batch size"]
    for series in data["sweeps"]:
        lines.append(
            render_series(
                f"{series.model} ({series.framework})",
                series.batch_sizes,
                series.values,
                x_label="b",
            )
        )
    for framework, value in data["faster_rcnn"].items():
        lines.append(f"faster-rcnn ({framework}): {value:.1f} images/s (batch fixed at 1)")
    return "\n".join(lines)
