"""Figs. 1 and 3 — the paper's two schematic figures, rendered from live
library structure (not static art): Fig. 1's forward/backward dataflow is
generated from an actual lowered graph, and Fig. 3's analysis pipeline is
generated from the pipeline's real stages.
"""

from __future__ import annotations

from repro.models.resnet import build_resnet50


def generate_fig1(layers_to_show: int = 3) -> dict:
    """Fig. 1's content from a real graph: per-layer forward/backward
    kernel pairs and the stashed feature/gradient maps between them."""
    graph = build_resnet50(4)
    weighted = [layer for layer in graph.layers if layer.weight_elements > 0]
    selected = weighted[:layers_to_show]
    return {
        "model": graph.model_name,
        "layers": [
            {
                "name": layer.name,
                "weights": layer.weight_elements,
                "feature_map_elements": layer.output_elements,
                "forward_kernels": len(layer.forward_kernels),
                "backward_kernels": len(layer.backward_kernels),
            }
            for layer in selected
        ],
    }


def render_fig1(data=None) -> str:
    """ASCII rendering of the feed-forward / back-propagation dataflow."""
    data = data if data is not None else generate_fig1()
    lines = [
        "Fig. 1: feed-forward and back-propagation "
        f"(first layers of {data['model']}, live graph)",
        "",
        "  input",
    ]
    for entry in data["layers"]:
        lines.append(
            f"    | fw x{entry['forward_kernels']}            "
            f"^ bw x{entry['backward_kernels']}"
        )
        lines.append(
            f"  [ {entry['name']}  weights={entry['weights']:,} ]"
            f"--> weight update"
        )
        lines.append(
            f"    | feature maps ({entry['feature_map_elements']:,} elements, "
            "stashed for backward)   ^ gradient maps"
        )
    lines.append("    ...")
    lines.append("  output --> loss(output, ground truth) --> error")
    return "\n".join(lines)


#: Fig. 3's stages, with the tool each maps to in this repository.
PIPELINE_STAGES = (
    ("DNN model implementation", "repro.models registry (Table 2)"),
    (
        "setup: make implementations comparable",
        "training.hyperparams.assert_comparable",
    ),
    (
        "warm-up & auto-tuning (excluded from data collection)",
        "profiling.sampling.StablePhaseSampler",
    ),
    ("short training period, sampling", "profiling.sampling + statistics"),
    ("nvprof -> .nvvp files", "profiling.kernel_trace + profiling.timeline"),
    ("vTune", "profiling.cpu_sampler.CPUSampler"),
    ("memory profiler", "profiling.memory_profiler.MemoryProfiler"),
    (
        "metrics: throughput, compute/FP32/CPU utilization, memory",
        "core.metrics (Eqs. 1-3) via core.analysis.AnalysisReport",
    ),
)


def generate_fig3() -> list:
    """The pipeline stages with their implementing modules."""
    return list(PIPELINE_STAGES)


def render_fig3(stages=None) -> str:
    """ASCII rendering of the analysis pipeline."""
    stages = stages if stages is not None else generate_fig3()
    lines = ["Fig. 3: the analysis pipeline (stage -> implementing module)", ""]
    for index, (stage, module) in enumerate(stages):
        prefix = "  " if index == 0 else "    v\n  "
        lines.append(f"{prefix}[{stage}]")
        lines.append(f"        = {module}")
    return "\n".join(lines)


def generate() -> dict:
    """Both schematics' content."""
    return {"fig1": generate_fig1(), "fig3": generate_fig3()}


def render(data=None) -> str:
    """Render both schematic figures."""
    data = data if data is not None else generate()
    return render_fig1(data["fig1"]) + "\n\n" + render_fig3(data["fig3"])
