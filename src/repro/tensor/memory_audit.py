"""Real-allocation audit: validate the paper's five-way memory taxonomy
against genuine training.

The simulator's memory profiler *models* the weights / weight-gradients /
feature-maps / workspace / dynamic split; this module *measures* it on the
real autodiff engine.  :func:`audit_training_step` runs one actual
forward+backward+update, classifies every live numpy buffer by role, and
returns the same breakdown the simulated profiler produces — so tests can
assert the headline finding (feature maps dominate, Obs. 11) from first
principles rather than from the model that encodes it.

Classification of a real step:

- **weights**: the module's parameter arrays;
- **weight gradients**: their ``.grad`` arrays after ``backward()``;
- **feature maps**: every tensor created between the start of ``forward``
  and the loss (captured by hooking Tensor construction) — the stash the
  backward pass needs;
- **dynamic**: optimizer state recorded in the optimizer's allocation log
  (momentum / Adam moments, allocated lazily at the first step);
- **workspace**: im2col column buffers created inside conv2d (reported by
  the functional layer via the audit hook).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from repro.tensor import functional
from repro.tensor.tensor import Tensor

_GIB = 1024.0**3

#: Live audit sink (None when auditing is off).
_ACTIVE_AUDIT = None


@dataclass
class RealMemoryAudit:
    """Byte totals per data-structure class, from a real training step."""

    weights_bytes: int = 0
    weight_gradient_bytes: int = 0
    feature_map_bytes: int = 0
    workspace_bytes: int = 0
    dynamic_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return (
            self.weights_bytes
            + self.weight_gradient_bytes
            + self.feature_map_bytes
            + self.workspace_bytes
            + self.dynamic_bytes
        )

    @property
    def feature_map_fraction(self) -> float:
        total = self.total_bytes
        return self.feature_map_bytes / total if total else 0.0

    def breakdown(self) -> dict:
        """Class name -> bytes, using the paper's class names."""
        return {
            "feature maps": self.feature_map_bytes,
            "weights": self.weights_bytes,
            "weight gradients": self.weight_gradient_bytes,
            "dynamic": self.dynamic_bytes,
            "workspace": self.workspace_bytes,
        }


class _AuditSink:
    def __init__(self):
        self.activation_bytes = 0
        self.workspace_bytes = 0
        self.seen_ids = set()

    def record_tensor(self, tensor: Tensor) -> None:
        if id(tensor.data) in self.seen_ids:
            return
        self.seen_ids.add(id(tensor.data))
        self.activation_bytes += tensor.data.nbytes

    def record_workspace(self, array: np.ndarray) -> None:
        self.workspace_bytes += array.nbytes


@contextlib.contextmanager
def _capture():
    global _ACTIVE_AUDIT
    previous = _ACTIVE_AUDIT
    sink = _AuditSink()
    _ACTIVE_AUDIT = sink
    original_from_op = Tensor._from_op.__func__
    original_im2col = functional._im2col

    def tracked_from_op(cls, data, parents, backward):
        tensor = original_from_op(cls, data, parents, backward)
        if _ACTIVE_AUDIT is not None:
            _ACTIVE_AUDIT.record_tensor(tensor)
        return tensor

    def tracked_im2col(data, kernel, stride, padding):
        columns, out_h, out_w = original_im2col(data, kernel, stride, padding)
        if _ACTIVE_AUDIT is not None:
            _ACTIVE_AUDIT.record_workspace(columns)
        return columns, out_h, out_w

    Tensor._from_op = classmethod(tracked_from_op)
    functional._im2col = tracked_im2col
    try:
        yield sink
    finally:
        Tensor._from_op = classmethod(original_from_op)
        functional._im2col = original_im2col
        _ACTIVE_AUDIT = previous


def audit_training_step(model, optimizer, loss_fn, batch) -> RealMemoryAudit:
    """Run one real forward+backward+update and account every buffer.

    Args:
        model: a :class:`~repro.tensor.layers.Module`.
        optimizer: its optimizer (state allocations read from its log).
        loss_fn: ``(model, batch) -> Tensor`` scalar loss.
        batch: whatever ``loss_fn`` expects.
    """
    with _capture() as sink:
        loss = loss_fn(model, batch)
        optimizer.zero_grad()
        loss.backward()
    weights = sum(p.data.nbytes for p in model.parameters())
    gradients = sum(
        p.grad.nbytes for p in model.parameters() if p.grad is not None
    )
    log_before = len(optimizer.allocation_log)
    optimizer.step()
    dynamic = sum(nbytes for _, nbytes, phase in optimizer.allocation_log)
    del log_before
    # The im2col columns were also counted as activations (they are tensors'
    # backing data only if wrapped); subtract nothing — columns are plain
    # numpy arrays and never enter record_tensor.
    return RealMemoryAudit(
        weights_bytes=weights,
        weight_gradient_bytes=gradients,
        feature_map_bytes=sink.activation_bytes,
        workspace_bytes=sink.workspace_bytes,
        dynamic_bytes=dynamic,
    )
