"""Layer modules for the real autodiff engine."""

from __future__ import annotations

import math

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, concatenate


class Module:
    """Base class: parameter discovery, train/eval mode, call protocol."""

    def __init__(self):
        self.training = True

    def parameters(self) -> list:
        """All trainable tensors, depth-first and deduplicated."""
        found: list = []
        seen = set()

        def collect(obj) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        collect(self)
        return found

    def parameter_count(self) -> int:
        """Total trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (dropout active)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (dropout off)."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError


def _kaiming(rng: np.random.Generator, shape, fan_in: int) -> np.ndarray:
    scale = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, scale, size=shape).astype(np.float32)


class Dense(Module):
    """Fully-connected layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Tensor(
            _kaiming(rng, (in_features, out_features), in_features),
            requires_grad=True,
            name="weight",
        )
        self.bias = (
            Tensor(np.zeros(out_features, dtype=np.float32), requires_grad=True, name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (square kernels, NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            _kaiming(rng, (out_channels, in_channels, kernel, kernel), fan_in),
            requires_grad=True,
            name="weight",
        )
        self.bias = (
            Tensor(np.zeros(out_channels, dtype=np.float32), requires_grad=True, name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class BatchNorm1d(Module):
    """Batch normalization over the batch axis of (batch, features)."""

    def __init__(self, features: int):
        super().__init__()
        self.gamma = Tensor(np.ones(features, dtype=np.float32), requires_grad=True, name="gamma")
        self.beta = Tensor(np.zeros(features, dtype=np.float32), requires_grad=True, name="beta")

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return F.batch_norm(x, self.gamma, self.beta, axes=(0,))


class BatchNorm2d(Module):
    """Per-channel batch normalization over NCHW."""

    def __init__(self, channels: int):
        super().__init__()
        self.gamma = Tensor(
            np.ones((1, channels, 1, 1), dtype=np.float32), requires_grad=True, name="gamma"
        )
        self.beta = Tensor(
            np.zeros((1, channels, 1, 1), dtype=np.float32), requires_grad=True, name="beta"
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return F.batch_norm(x, self.gamma, self.beta, axes=(0, 2, 3))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return x.relu()


class Dropout(Module):
    """Inverted dropout with its own RNG stream."""

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return F.dropout(x, self.rate, self._rng, training=self.training)


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab: int, dim: int, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.table = Tensor(
            rng.normal(0.0, 0.1, size=(vocab, dim)).astype(np.float32),
            requires_grad=True,
            name="embedding",
        )

    def forward(self, ids) -> Tensor:
        """Apply the layer."""
        return F.embedding(self.table, np.asarray(ids))


class LSTMCell(Module):
    """A single LSTM cell over concatenated ``[input, hidden]`` — the exact
    lowering the simulator's recurrent layers charge for."""

    def __init__(self, input_size: int, hidden: int, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        k_dim = input_size + hidden
        self.hidden = hidden
        self.weight = Tensor(
            _kaiming(rng, (k_dim, 4 * hidden), k_dim), requires_grad=True, name="lstm_w"
        )
        self.bias = Tensor(
            np.zeros(4 * hidden, dtype=np.float32), requires_grad=True, name="lstm_b"
        )

    def forward(self, x: Tensor, state: tuple) -> tuple:
        """One step; ``state`` is ``(h, c)``; returns ``(h, c)``."""
        h, c = state
        gates = concatenate([x, h], axis=1) @ self.weight + self.bias
        size = self.hidden
        i = gates[:, 0 * size : 1 * size].sigmoid()
        f = gates[:, 1 * size : 2 * size].sigmoid()
        o = gates[:, 2 * size : 3 * size].sigmoid()
        g = gates[:, 3 * size : 4 * size].tanh()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> tuple:
        """Zero (h, c) state for a batch."""
        zeros = np.zeros((batch, self.hidden), dtype=np.float32)
        return Tensor(zeros), Tensor(zeros)


class GRUCell(Module):
    """A single GRU cell (3 gates) over concatenated ``[input, hidden]``."""

    def __init__(self, input_size: int, hidden: int, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        k_dim = input_size + hidden
        self.hidden = hidden
        self.gate_weight = Tensor(
            _kaiming(rng, (k_dim, 2 * hidden), k_dim), requires_grad=True, name="gru_gates_w"
        )
        self.gate_bias = Tensor(
            np.zeros(2 * hidden, dtype=np.float32), requires_grad=True, name="gru_gates_b"
        )
        self.candidate_weight = Tensor(
            _kaiming(rng, (k_dim, hidden), k_dim), requires_grad=True, name="gru_cand_w"
        )
        self.candidate_bias = Tensor(
            np.zeros(hidden, dtype=np.float32), requires_grad=True, name="gru_cand_b"
        )

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step; returns the new hidden state."""
        size = self.hidden
        gates = concatenate([x, h], axis=1) @ self.gate_weight + self.gate_bias
        reset = gates[:, :size].sigmoid()
        update = gates[:, size:].sigmoid()
        candidate = (
            concatenate([x, reset * h], axis=1) @ self.candidate_weight
            + self.candidate_bias
        ).tanh()
        return update * h + (1.0 - update) * candidate

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden), dtype=np.float32))


class LayerNorm(Module):
    """Layer normalization over the last axis (Transformer blocks)."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(features, dtype=np.float32), requires_grad=True, name="ln_gamma")
        self.beta = Tensor(np.zeros(features, dtype=np.float32), requires_grad=True, name="ln_beta")

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        return centered * ((variance + self.eps) ** -0.5) * self.gamma + self.beta


class MaxPool2d(Module):
    """Max pooling module (square, non-overlapping windows)."""

    def __init__(self, kernel: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        return F.max_pool2d(x, self.kernel, self.stride)


class Sequential(Module):
    """Chain of modules."""

    def __init__(self, *modules):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer."""
        for module in self.modules:
            x = module(x)
        return x
