"""Miniature, genuinely trainable versions of the suite's model families.

Full-scale training of the eight TBD models is a multi-GPU-day affair the
simulator handles; these miniatures exercise the *same layer types* (conv +
BN + residual, LSTM encoder-decoder, generator/critic pair, actor-critic
heads) through the real autodiff engine, so the repository demonstrates
actual gradient descent end to end on every family.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Embedding,
    LSTMCell,
    Module,
)
from repro.tensor.tensor import Tensor, stack


class TinyResNet(Module):
    """Conv -> BN -> ReLU -> residual block -> global pool -> classifier;
    the ResNet-50 family in miniature (image classification)."""

    def __init__(self, channels: int = 8, classes: int = 10, in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, channels, 3, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(channels)
        self.block_conv1 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.block_bn1 = BatchNorm2d(channels)
        self.block_conv2 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.block_bn2 = BatchNorm2d(channels)
        self.classifier = Dense(channels, classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Run the model forward."""
        x = self.stem_bn(self.stem(x)).relu()
        residual = x
        x = self.block_bn1(self.block_conv1(x)).relu()
        x = self.block_bn2(self.block_conv2(x))
        x = (x + residual).relu()
        x = F.avg_pool2d_global(x)
        return self.classifier(x)


class TinySeq2Seq(Module):
    """Embedding -> LSTM encoder -> LSTM decoder -> vocabulary projection;
    the NMT/Sockeye family in miniature (machine translation)."""

    def __init__(self, vocab: int = 40, embed: int = 16, hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab = vocab
        self.embedding = Embedding(vocab, embed, rng=rng)
        self.encoder = LSTMCell(embed, hidden, rng=rng)
        self.decoder = LSTMCell(embed, hidden, rng=rng)
        self.projection = Dense(hidden, vocab, rng=rng)

    def forward(self, source: np.ndarray, target_in: np.ndarray) -> Tensor:
        """Teacher-forced forward; returns (batch, seq, vocab) logits."""
        batch, src_len = source.shape
        state = self.encoder.initial_state(batch)
        embedded = self.embedding(source)
        for step in range(src_len):
            state = self.encoder(embedded[:, step, :], state)
        logits = []
        embedded_target = self.embedding(target_in)
        for step in range(target_in.shape[1]):
            state = self.decoder(embedded_target[:, step, :], state)
            logits.append(self.projection(state[0]))
        return stack(logits, axis=1)

    def loss(self, source, target_in, target_out) -> Tensor:
        """Teacher-forced cross-entropy over the target sequence."""
        logits = self.forward(source, target_in)
        flat = logits.reshape(-1, self.vocab)
        return F.cross_entropy(flat, np.asarray(target_out).reshape(-1))


class TinyGenerator(Module):
    """Latent -> image generator (the WGAN family's G, in miniature)."""

    def __init__(self, latent: int = 8, image_elements: int = 64, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Dense(latent, 32, rng=rng)
        self.fc2 = Dense(32, image_elements, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        """Run the model forward."""
        return self.fc2(self.fc1(z).relu()).tanh()


class TinyCritic(Module):
    """Image -> scalar Wasserstein score (the WGAN family's critic)."""

    def __init__(self, image_elements: int = 64, seed: int = 1):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Dense(image_elements, 32, rng=rng)
        self.fc2 = Dense(32, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Run the model forward."""
        return self.fc2(self.fc1(x).relu())


class TinyTransformer(Module):
    """Embedding -> Transformer encoder blocks -> token classifier; the
    Transformer family in miniature.  Its attention runs as real batched
    matmuls — the layer-type contrast with :class:`TinySeq2Seq` that the
    paper's Observation 5 is about."""

    def __init__(
        self,
        vocab: int = 30,
        model_dim: int = 16,
        heads: int = 4,
        ffn_dim: int = 32,
        blocks: int = 2,
        seed: int = 0,
    ):
        super().__init__()
        from repro.tensor.attention import TransformerBlock
        from repro.tensor.layers import Dense, Embedding

        rng = np.random.default_rng(seed)
        self.vocab = vocab
        self.embedding = Embedding(vocab, model_dim, rng=rng)
        self.blocks = [
            TransformerBlock(model_dim, heads, ffn_dim, rng=rng)
            for _ in range(blocks)
        ]
        self.head = Dense(model_dim, vocab, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Run the model forward."""
        x = self.embedding(np.asarray(tokens))
        for block in self.blocks:
            x = block(x)
        batch, seq, dim = x.shape
        return self.head(x.reshape(-1, dim)).reshape(batch, seq, self.vocab)

    def loss(self, tokens, targets) -> Tensor:
        """Per-token cross-entropy for the sequence task."""
        logits = self.forward(tokens)
        return F.cross_entropy(
            logits.reshape(-1, self.vocab), np.asarray(targets).reshape(-1)
        )


class TinyActorCritic(Module):
    """Conv -> FC -> policy + value heads; the A3C family in miniature."""

    def __init__(self, frame_stack: int = 2, frame: int = 12, actions: int = 4, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = Conv2d(frame_stack, 8, 3, stride=2, padding=1, rng=rng)
        flat = 8 * ((frame + 1) // 2) ** 2
        self.fc = Dense(flat, 32, rng=rng)
        self.policy = Dense(32, actions, rng=rng)
        self.value = Dense(32, 1, rng=rng)

    def forward(self, frames: Tensor) -> tuple:
        """Run the model forward."""
        x = self.conv(frames).relu()
        x = x.reshape(x.shape[0], -1)
        x = self.fc(x).relu()
        return self.policy(x), self.value(x)
