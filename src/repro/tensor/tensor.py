"""The :class:`Tensor` type: numpy arrays with reverse-mode autodiff.

The design is the classic tape-free dynamic graph: every operation records
its parents and a closure that accumulates gradients into them;
``backward()`` runs the closures in reverse topological order.  Broadcasting
is fully supported — gradients are summed back over broadcast axes.
"""

from __future__ import annotations

import contextlib

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording (inference / target networks)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(gradient: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``gradient`` back down to ``shape`` (reverse of broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Sum leading axes added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum axes broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient


class Tensor:
    """A numpy-backed tensor that records operations for autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = ()
        self._backward = None
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_op(cls, data, parents, backward) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}{label})"

    def item(self) -> float:
        """The scalar value of a one-element tensor."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view with the graph cut (no gradient flows back)."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # autodiff driver
    # ------------------------------------------------------------------

    def backward(self, gradient=None) -> None:
        """Backpropagate from this tensor.

        Raises:
            RuntimeError: if called on a non-scalar without ``gradient`` or
                on a tensor that does not require grad.
        """
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on non-scalar needs a gradient")
            gradient = np.ones_like(self.data)
        self.grad = np.asarray(gradient, dtype=np.float32)

        order: list = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the closure so the graph can be collected.
                node._backward = None
                node._parents = ()

    def _accumulate(self, gradient: np.ndarray) -> None:
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float32), self.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient)
            if other.requires_grad:
                other._accumulate(gradient)

        return Tensor._from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(gradient):
            if self.requires_grad:
                self._accumulate(-gradient)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * other.data)
            if other.requires_grad:
                other._accumulate(gradient * self.data)

        return Tensor._from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient / other.data)
            if other.requires_grad:
                other._accumulate(-gradient * self.data / (other.data**2))

        return Tensor._from_op(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ gradient)

        return Tensor._from_op(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        """Differentiable reshape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient.reshape(original))

        return Tensor._from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Differentiable transpose (reversed axes by default)."""
        axes = axes or tuple(reversed(range(self.ndim)))
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient.transpose(inverse))

        return Tensor._from_op(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(gradient):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, gradient)
                self._accumulate(full)

        return Tensor._from_op(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # reductions and pointwise functions
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable sum reduction."""
        def backward(gradient):
            if not self.requires_grad:
                return
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape))

        return Tensor._from_op(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean reduction."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable max (gradient split among ties)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(gradient):
            if not self.requires_grad:
                return
            grad = np.asarray(gradient)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        return Tensor._from_op(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def relu(self) -> "Tensor":
        """Elementwise ReLU."""
        mask = (self.data > 0).astype(np.float32)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * mask)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(gradient):
            if self.requires_grad:
                self._accumulate(gradient * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    tensors = [Tensor._lift(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(gradient):
        pieces = np.split(gradient, splits, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._from_op(
        np.concatenate([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def stack(tensors, axis: int = 0) -> Tensor:
    """Differentiable stacking along a new axis."""
    tensors = [Tensor._lift(t) for t in tensors]

    def backward(gradient):
        pieces = np.split(gradient, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._from_op(
        np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )
