"""Training-loop utilities for the real autodiff engine: learning-rate
schedules, gradient clipping, a Trainer with history/early-stopping, and
parameter checkpointing.

These mirror the knobs the paper's Section 3.4.1 comparability rule talks
about (learning rate, momentum, schedules) so the real and simulated halves
of the repository share one vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.tensor.layers import Module
from repro.tensor.optim import Optimizer
from repro.tensor.tensor import Tensor


# ----------------------------------------------------------------------
# learning-rate schedules (the `lr_schedule` values of Hyperparameters)
# ----------------------------------------------------------------------


class Schedule:
    """Base learning-rate schedule: maps step -> multiplier."""

    def multiplier(self, step: int) -> float:  # pragma: no cover - abstract
        """Learning-rate multiplier at ``step``; subclasses override."""
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, base_learning_rate: float, step: int) -> float:
        """Set the optimizer's rate for ``step``; returns the applied rate."""
        rate = base_learning_rate * self.multiplier(step)
        optimizer.learning_rate = rate
        return rate


class ConstantSchedule(Schedule):
    def multiplier(self, step: int) -> float:
        """Constant multiplier of 1."""
        return 1.0


class StepDecaySchedule(Schedule):
    """Multiply by ``gamma`` every ``period`` steps (ImageNet-style)."""

    def __init__(self, period: int, gamma: float = 0.1):
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.period = period
        self.gamma = gamma

    def multiplier(self, step: int) -> float:
        """Decayed multiplier for ``step``."""
        return self.gamma ** (step // self.period)


class InverseSqrtSchedule(Schedule):
    """Transformer warm-up then inverse-sqrt decay (Vaswani et al.)."""

    def __init__(self, warmup_steps: int = 400):
        if warmup_steps <= 0:
            raise ValueError("warmup must be positive")
        self.warmup_steps = warmup_steps

    def multiplier(self, step: int) -> float:
        """Warm-up then inverse-sqrt multiplier for ``step``."""
        step = max(1, step)
        return min(
            step / (self.warmup_steps * math.sqrt(self.warmup_steps)),
            1.0 / math.sqrt(step),
        ) * math.sqrt(self.warmup_steps)


def make_schedule(name: str, **kwargs) -> Schedule:
    """Schedule factory keyed by Hyperparameters.lr_schedule values."""
    factories = {
        "constant": ConstantSchedule,
        "step": lambda: StepDecaySchedule(kwargs.pop("period", 1000), kwargs.pop("gamma", 0.1)),
        "inverse_sqrt": lambda: InverseSqrtSchedule(kwargs.pop("warmup_steps", 400)),
    }
    if name not in factories:
        raise KeyError(f"unknown schedule {name!r}; known: {sorted(factories)}")
    return factories[name]()


# ----------------------------------------------------------------------
# gradient clipping
# ----------------------------------------------------------------------


def global_gradient_norm(parameters) -> float:
    """L2 norm over all parameter gradients (zeros for missing grads)."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad**2).sum())
    return math.sqrt(total)


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale gradients so the global norm is at most ``max_norm``; returns
    the pre-clip norm (the RNN-training stabilizer every Seq2Seq
    implementation in the paper uses)."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_gradient_norm(parameters)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm


# ----------------------------------------------------------------------
# the Trainer
# ----------------------------------------------------------------------


@dataclass
class TrainingHistory:
    """Per-step records of one training run."""

    losses: list = field(default_factory=list)
    learning_rates: list = field(default_factory=list)
    gradient_norms: list = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.losses)

    def smoothed_loss(self, window: int = 10) -> float:
        """Mean loss over the trailing window."""
        if not self.losses:
            raise ValueError("no steps recorded")
        return float(np.mean(self.losses[-window:]))


class Trainer:
    """A minimal fit loop: batches from a callable, schedule, clipping,
    early stopping on loss plateau."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn,
        schedule: Schedule | None = None,
        clip_norm: float | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.schedule = schedule or ConstantSchedule()
        self.clip_norm = clip_norm
        self.base_learning_rate = optimizer.learning_rate
        self.history = TrainingHistory()

    def step(self, batch) -> float:
        """One optimization step on ``batch`` (passed to ``loss_fn`` with
        the model); returns the loss value."""
        rate = self.schedule.apply(
            self.optimizer, self.base_learning_rate, self.history.steps
        )
        loss = self.loss_fn(self.model, batch)
        if not isinstance(loss, Tensor):
            raise TypeError("loss_fn must return a Tensor")
        self.optimizer.zero_grad()
        loss.backward()
        if self.clip_norm is not None:
            norm = clip_gradients(self.optimizer.parameters, self.clip_norm)
        else:
            norm = global_gradient_norm(self.optimizer.parameters)
        self.optimizer.step()
        self.history.losses.append(loss.item())
        self.history.learning_rates.append(rate)
        self.history.gradient_norms.append(norm)
        return loss.item()

    def fit(
        self,
        batch_source,
        steps: int,
        patience: int | None = None,
        min_improvement: float = 1e-3,
    ) -> TrainingHistory:
        """Run up to ``steps`` optimization steps.

        Args:
            batch_source: callable ``(step) -> batch``.
            patience: stop early if the smoothed loss has not improved by
                ``min_improvement`` for this many steps.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        best = float("inf")
        since_best = 0
        for step in range(steps):
            self.step(batch_source(step))
            current = self.history.smoothed_loss()
            if current < best - min_improvement:
                best = current
                since_best = 0
            else:
                since_best += 1
            if patience is not None and since_best >= patience:
                break
        return self.history


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------


def state_dict(model: Module) -> dict:
    """Ordered parameter arrays keyed by index and name."""
    return {
        f"{index:04d}:{parameter.name or 'param'}": parameter.data.copy()
        for index, parameter in enumerate(model.parameters())
    }


def load_state_dict(model: Module, state: dict) -> None:
    """Restore parameters saved by :func:`state_dict`.

    Raises:
        ValueError: on count or shape mismatches.
    """
    parameters = model.parameters()
    if len(parameters) != len(state):
        raise ValueError(
            f"checkpoint has {len(state)} tensors, model has {len(parameters)}"
        )
    for (key, value), parameter in zip(sorted(state.items()), parameters):
        if value.shape != parameter.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: checkpoint {value.shape} vs "
                f"model {parameter.data.shape}"
            )
        parameter.data = value.astype(np.float32).copy()


def save_checkpoint(model: Module, path: str) -> None:
    """Serialize parameters to an ``.npz`` file."""
    np.savez(path, **state_dict(model))


def load_checkpoint(model: Module, path: str) -> None:
    """Restore parameters from :func:`save_checkpoint` output."""
    with np.load(path) as data:
        load_state_dict(model, dict(data.items()))
