"""Neural-network operations built on :class:`~repro.tensor.tensor.Tensor`.

Convolution and pooling use im2col lowering — the same lowering the
simulated cuDNN "gemm" algorithm models — so the real engine and the
performance model agree about what the computation *is*.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def _im2col(data: np.ndarray, kernel: int, stride: int, padding: int):
    """Lower NCHW input to (batch, out_h, out_w, c*k*k) patches."""
    batch, channels, height, width = data.shape
    if padding:
        data = np.pad(
            data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    strides = data.strides
    windows = np.lib.stride_tricks.as_strided(
        data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(columns), out_h, out_w


def _col2im(columns, input_shape, kernel: int, stride: int, padding: int):
    """Scatter (batch, out_h, out_w, c*k*k) patch gradients back to NCHW."""
    batch, channels, height, width = input_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=np.float32,
    )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    reshaped = columns.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for ky in range(kernel):
        for kx in range(kernel):
            padded[
                :,
                :,
                ky : ky + out_h * stride : stride,
                kx : kx + out_w * stride : stride,
            ] += reshaped[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution, NCHW layout; ``weight`` is (out_c, in_c, k, k)."""
    out_c, in_c, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_c:
        raise ValueError(
            f"input channels {x.shape[1]} do not match weight {in_c}"
        )
    columns, out_h, out_w = _im2col(x.data, kernel, stride, padding)
    flat_w = weight.data.reshape(out_c, -1)
    out_data = columns @ flat_w.T  # (b, oh, ow, out_c)
    out_data = out_data.transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(gradient):
        grad_out = gradient.transpose(0, 2, 3, 1)  # (b, oh, ow, out_c)
        if weight.requires_grad:
            grad_w = np.tensordot(grad_out, columns, axes=([0, 1, 2], [0, 1, 2]))
            weight._accumulate(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = grad_out @ flat_w  # (b, oh, ow, c*k*k)
            x._accumulate(_col2im(grad_cols, x.shape, kernel, stride, padding))
        if bias is not None and bias.requires_grad:
            bias._accumulate(gradient.sum(axis=(0, 2, 3)))

    return Tensor._from_op(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling, NCHW."""
    stride = stride or kernel
    if kernel > stride:
        raise NotImplementedError("overlapping pooling windows are not supported")
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    view = x.data[:, :, : out_h * stride, : out_w * stride]
    windows = view.reshape(batch, channels, out_h, stride, out_w, stride)[
        :, :, :, :kernel, :, :kernel
    ]
    out_data = windows.max(axis=(3, 5))

    def backward(gradient):
        if not x.requires_grad:
            return
        grad_in = np.zeros_like(x.data)
        expanded = out_data[:, :, :, None, :, None]
        mask = windows == expanded
        counts = np.maximum(mask.sum(axis=(3, 5), keepdims=True), 1)
        contribution = mask * gradient[:, :, :, None, :, None] / counts
        block = np.zeros((batch, channels, out_h, stride, out_w, stride), dtype=np.float32)
        block[:, :, :, :kernel, :, :kernel] = contribution
        grad_in[:, :, : out_h * stride, : out_w * stride] = block.reshape(
            batch, channels, out_h * stride, out_w * stride
        )
        x._accumulate(grad_in)

    return Tensor._from_op(out_data, (x,), backward)


def avg_pool2d_global(x: Tensor) -> Tensor:
    """Global average pooling to (batch, channels)."""
    return x.mean(axis=3).mean(axis=2)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    eps: float = 1e-5,
    axes=(0,),
) -> Tensor:
    """Batch normalization over ``axes`` using graph primitives (its
    backward composes automatically — and is exactly the multi-pass,
    bandwidth-bound computation the kernel model charges for)."""
    mean = x.mean(axis=axes[0], keepdims=True)
    for axis in axes[1:]:
        mean = mean.mean(axis=axis, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=axes[0], keepdims=True)
    for axis in axes[1:]:
        var = var.mean(axis=axis, keepdims=True)
    inv_std = (var + eps) ** -0.5
    return centered * inv_std * gamma + beta


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    if not training or rate == 0.0:
        return x
    mask = (rng.random(x.shape) >= rate).astype(np.float32) / (1.0 - rate)
    return x * Tensor(mask)


def embedding(table: Tensor, ids: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward."""
    ids = np.asarray(ids)

    def backward(gradient):
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, ids.reshape(-1), gradient.reshape(-1, table.shape[1]))
            table._accumulate(full)

    return Tensor._from_op(table.data[ids], (table,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax (via log-softmax)."""
    return log_softmax(x, axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy with integer targets."""
    targets = np.asarray(targets).reshape(-1)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects (batch, classes) logits")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("target count does not match batch")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def mse(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 accuracy of (batch, classes) logits."""
    predictions = logits.data.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
