"""Optimizers for the real autodiff engine.

The SGD-with-momentum implementation allocates its velocity buffers on the
first ``step()`` — i.e. *during* training iterations, exactly the behaviour
the paper's memory profiler classifies as "dynamic" for MXNet.  The
``allocation_log`` records (name, bytes, phase) so tests can validate the
five-way taxonomy against real allocations.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer: holds parameters and an allocation log."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        #: (label, bytes, phase) records; phase is "static" or "dynamic".
        self.allocation_log: list = []
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        self._step_count += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            self._update(parameter)

    def _update(self, parameter) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay (lazy state buffers)."""

    def __init__(
        self,
        parameters,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict = {}

    def _update(self, parameter) -> None:
        gradient = parameter.grad
        if self.weight_decay:
            gradient = gradient + self.weight_decay * parameter.data
        if self.momentum:
            key = id(parameter)
            if key not in self._velocity:
                self._velocity[key] = np.zeros_like(parameter.data)
                self.allocation_log.append(
                    (parameter.name or "param", parameter.data.nbytes, "dynamic")
                )
            velocity = self._velocity[key]
            velocity *= self.momentum
            velocity += gradient
            gradient = velocity
        parameter.data -= self.learning_rate * gradient


class Adam(Optimizer):
    """Adam (Kingma & Ba) with lazy moment buffers."""

    def __init__(
        self,
        parameters,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._moments: dict = {}

    def _update(self, parameter) -> None:
        key = id(parameter)
        if key not in self._moments:
            self._moments[key] = (
                np.zeros_like(parameter.data),
                np.zeros_like(parameter.data),
            )
            self.allocation_log.append(
                (parameter.name or "param", 2 * parameter.data.nbytes, "dynamic")
            )
        m, v = self._moments[key]
        gradient = parameter.grad
        m *= self.beta1
        m += (1.0 - self.beta1) * gradient
        v *= self.beta2
        v += (1.0 - self.beta2) * gradient**2
        step = self._step_count
        m_hat = m / (1.0 - self.beta1**step)
        v_hat = v / (1.0 - self.beta2**step)
        parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
