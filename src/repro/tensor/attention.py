"""Multi-head attention for the real autodiff engine.

The simulated Transformer's defining property — attention lowers to large
batched GEMMs rather than sequential cell updates — is demonstrated here
for real: the same scaled-dot-product computation, built from the engine's
matmul/softmax primitives, trains end to end in
:class:`~repro.tensor.minimodels.TinyTransformer`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor import functional as F
from repro.tensor.layers import Dense, Module
from repro.tensor.tensor import Tensor, concatenate


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> Tensor:
    """softmax(Q K^T / sqrt(d)) V over (batch, seq, dim) tensors."""
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ValueError("attention expects (batch, seq, dim) tensors")
    dim = q.shape[-1]
    scores = (q @ k.transpose(0, 2, 1)) * (1.0 / math.sqrt(dim))
    weights = F.softmax(scores, axis=-1)
    return weights @ v


class MultiHeadAttention(Module):
    """Multi-head self/cross attention with learned projections."""

    def __init__(self, model_dim: int, heads: int, rng=None):
        super().__init__()
        if model_dim % heads != 0:
            raise ValueError(f"model_dim {model_dim} not divisible by {heads} heads")
        rng = rng or np.random.default_rng(0)
        self.heads = heads
        self.head_dim = model_dim // heads
        self.q_proj = Dense(model_dim, model_dim, rng=rng)
        self.k_proj = Dense(model_dim, model_dim, rng=rng)
        self.v_proj = Dense(model_dim, model_dim, rng=rng)
        self.out_proj = Dense(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (b, s, d) -> (b*h, s, d/h)
        return (
            x.reshape(batch, seq, self.heads, self.head_dim)
            .transpose(0, 2, 1, 3)
            .reshape(batch * self.heads, seq, self.head_dim)
        )

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention by default)."""
        key = key if key is not None else query
        value = value if value is not None else key
        batch, seq_q, dim = query.shape
        seq_k = key.shape[1]
        q = self._split_heads(self.q_proj(query.reshape(-1, dim)).reshape(batch, seq_q, dim), batch, seq_q)
        k = self._split_heads(self.k_proj(key.reshape(-1, dim)).reshape(batch, seq_k, dim), batch, seq_k)
        v = self._split_heads(self.v_proj(value.reshape(-1, dim)).reshape(batch, seq_k, dim), batch, seq_k)
        context = scaled_dot_product_attention(q, k, v)
        merged = (
            context.reshape(batch, self.heads, seq_q, self.head_dim)
            .transpose(0, 2, 1, 3)
            .reshape(batch * seq_q, dim)
        )
        return self.out_proj(merged).reshape(batch, seq_q, dim)


class TransformerBlock(Module):
    """Pre-norm-free Transformer encoder block: attention + FFN with
    residuals (layer norm omitted for compactness; BN-free residuals train
    fine at this scale)."""

    def __init__(self, model_dim: int, heads: int, ffn_dim: int, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadAttention(model_dim, heads, rng=rng)
        self.ffn_in = Dense(model_dim, ffn_dim, rng=rng)
        self.ffn_out = Dense(ffn_dim, model_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Apply self-attention and the feed-forward sublayer with residuals."""
        attended = self.attention(x) + x
        batch, seq, dim = attended.shape
        flat = attended.reshape(-1, dim)
        transformed = self.ffn_out(self.ffn_in(flat).relu())
        return (transformed + flat).reshape(batch, seq, dim)
