"""A real reverse-mode automatic-differentiation engine over numpy.

This is the repository's genuine training substrate: while
:mod:`repro.training` *simulates* full-scale runs for performance analysis,
this package actually trains miniature versions of the suite's model
families end to end (tiny ResNet, tiny seq2seq, tiny GAN, tiny
actor-critic) — the tests assert real loss decrease and accuracy on the
synthetic datasets, and the memory instrumentation validates the paper's
five-way allocation taxonomy against real allocations.
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor import functional
from repro.tensor.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Embedding,
    GRUCell,
    LayerNorm,
    LSTMCell,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.tensor.optim import SGD, Adam, Optimizer
from repro.tensor.train import Trainer

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Dense",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Embedding",
    "LSTMCell",
    "GRUCell",
    "LayerNorm",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "Trainer",
    "Optimizer",
    "SGD",
    "Adam",
]
