"""Instrumented runs: telemetry context management and ``traced_run``.

:func:`telemetry` installs an enabled tracer + metrics registry for a
``with`` block (restoring the previous globals afterwards, even on error),
so any code path — a session, a pipeline, a distributed sweep — can be
observed without plumbing handles through every call:

    with telemetry() as run:
        TrainingSession("resnet-50", "mxnet").run_iteration(32)
    print(run.tracer.render_tree())
    print(run.metrics.snapshot())

:func:`traced_run` is the batteries-included entry point behind
``tbd trace``: it executes the full :class:`~repro.core.analysis.AnalysisPipeline`
under telemetry, derives the run manifest (headline metrics + provenance)
and archives everything to the local runs directory.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.observability.archive import (
    RunArchive,
    RunManifest,
    git_describe,
    utc_now_iso,
)
from repro.observability.exporters import (
    metrics_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.observability.metrics import MetricsRegistry, set_metrics
from repro.observability.tracer import Tracer, set_tracer


@dataclass
class TelemetryRun:
    """The tracer + metrics pair active inside one ``telemetry()`` block."""

    tracer: Tracer
    metrics: MetricsRegistry

    def to_jsonl(self) -> str:
        return spans_to_jsonl(self.tracer)

    def to_chrome_trace(self, process_name: str = "run") -> dict:
        return spans_to_chrome_trace(self.tracer, process_name)

    def to_prometheus(self) -> str:
        return metrics_to_prometheus(self.metrics)


@contextmanager
def telemetry(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Enable telemetry for a ``with`` block; yields a :class:`TelemetryRun`."""
    run = TelemetryRun(
        tracer=tracer if tracer is not None else Tracer(enabled=True),
        metrics=metrics if metrics is not None else MetricsRegistry(enabled=True),
    )
    previous_tracer = set_tracer(run.tracer)
    previous_metrics = set_metrics(run.metrics)
    try:
        yield run
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


@dataclass
class TraceResult:
    """Everything one instrumented pipeline run produced."""

    report: object
    manifest: RunManifest
    tracer: Tracer
    metrics: MetricsRegistry
    run_dir: str | None = None
    artifacts: dict = field(default_factory=dict)

    def to_jsonl(self) -> str:
        return spans_to_jsonl(self.tracer)

    def to_chrome_trace(self) -> dict:
        # Named after the configuration, not the run id, so two runs of the
        # same configuration produce byte-identical traces.
        manifest = self.manifest
        name = f"{manifest.model}/{manifest.framework} b{manifest.batch_size}"
        return spans_to_chrome_trace(self.tracer, process_name=name)

    def to_prometheus(self) -> str:
        return metrics_to_prometheus(self.metrics)


def headline_metrics(report) -> dict:
    """The manifest's headline metrics, keyed to match the regression
    tolerances so ``tbd runs diff`` and calibration drift read alike."""
    metrics = report.metrics
    return {
        "throughput": round(report.stable_throughput, 6),
        "gpu_utilization": round(metrics.gpu_utilization, 6),
        "fp32_utilization": round(metrics.fp32_utilization, 6),
        "cpu_utilization": round(metrics.cpu_utilization, 6),
        "iteration_time_s": round(metrics.iteration_time_s, 9),
        "memory_total_gib": round(report.memory.total_gib, 6),
    }


def traced_run(
    model: str,
    framework: str = "tensorflow",
    batch_size: int | None = None,
    gpu=None,
    seed: int = 0,
    archive: bool = True,
    archive_root: str | None = None,
) -> TraceResult:
    """Run the full analysis pipeline under telemetry and archive the run.

    Returns a :class:`TraceResult`; when ``archive`` is true the manifest,
    the JSONL event stream, the chrome trace and the Prometheus dump are
    persisted under ``archive_root`` (default: ``./runs`` or
    ``$TBD_RUNS_DIR``).
    """
    # Imported here: the pipeline's own modules import this package.
    from repro.core.analysis import AnalysisPipeline

    kwargs = {} if gpu is None else {"gpu": gpu}
    with telemetry() as run:
        with run.tracer.span(
            "run", model=model, framework=framework, seed=seed
        ) as root:
            report = AnalysisPipeline(model, framework, **kwargs).run(batch_size)
            root.set_attributes(
                batch_size=report.metrics.batch_size, device=report.metrics.device
            )

    store = RunArchive(archive_root)
    manifest = RunManifest(
        run_id=store.next_run_id(model, framework, report.metrics.batch_size),
        model=model,
        framework=framework,
        device=report.metrics.device,
        batch_size=report.metrics.batch_size,
        seed=seed,
        git=git_describe(),
        created_at=utc_now_iso(),
        metrics=headline_metrics(report),
    )
    result = TraceResult(
        report=report, manifest=manifest, tracer=run.tracer, metrics=run.metrics
    )
    if archive:
        result.run_dir = store.record(
            manifest,
            spans_jsonl=result.to_jsonl(),
            chrome_trace=result.to_chrome_trace(),
            prometheus=result.to_prometheus(),
        )
        result.artifacts = {
            "manifest": "manifest.json",
            "spans": "spans.jsonl",
            "trace": "trace.json",
            "metrics": "metrics.prom",
        }
    return result
