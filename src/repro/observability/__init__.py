"""Always-on telemetry for the simulated stack.

The paper's toolchain merges nvprof, vTune and memory-profiler views into
one picture of a training run — but only *after* the run, by recomputing
profiles per call.  This package makes the run itself observable: every
session, pipeline stage, gradient exchange and data-pipeline invocation
emits structured telemetry that can be exported, archived and diffed.

- :mod:`repro.observability.tracer` — hierarchical spans with ids, parents
  and attributes; a context-manager API; a no-op fast path when disabled.
- :mod:`repro.observability.metrics` — counters / gauges / histograms
  (kernels issued, dispatch stalls, queue-delay distribution, bytes by
  allocation class, allreduce bytes on the wire).
- :mod:`repro.observability.exporters` — deterministic JSONL event
  streams, chrome://tracing overlays (spans above kernel events), and a
  Prometheus-style text dump.
- :mod:`repro.observability.archive` — per-run manifests (model,
  framework, device, batch, seed, headline metrics, git describe) in a
  local runs directory, with baseline-style diffing.
- :mod:`repro.observability.runner` — ``traced_run``: one call that runs
  the full analysis pipeline under telemetry and archives the result.

Telemetry is **off by default** and costs a single branch per
instrumentation point when off::

    from repro.observability import telemetry

    with telemetry() as run:
        AnalysisPipeline("resnet-50", "mxnet").run(32)
    print(run.tracer.render_tree())
"""

from repro.observability.tracer import (
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    telemetry_enabled,
    trace_span,
    tracing,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.observability.exporters import (
    metrics_to_prometheus,
    parse_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_span_trace,
)
from repro.observability.archive import RunArchive, RunManifest
from repro.observability.runner import TelemetryRun, telemetry, traced_run

__all__ = [
    "Tracer",
    "trace_span",
    "tracing",
    "current_span",
    "get_tracer",
    "set_tracer",
    "telemetry_enabled",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_metrics",
    "set_metrics",
    "spans_to_jsonl",
    "parse_jsonl",
    "spans_to_chrome_trace",
    "write_span_trace",
    "metrics_to_prometheus",
    "RunArchive",
    "RunManifest",
    "TelemetryRun",
    "telemetry",
    "traced_run",
]
