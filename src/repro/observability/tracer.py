"""Hierarchical span tracer for the simulated runtime.

A *span* is one named, attributed interval of work; spans nest, and one
instrumented run produces a single coherent tree: the session span under
the pipeline-stage span under the run span, with the simulated kernel
timeline attached to the span that produced it.

Design constraints, in order:

1. **Free when off.**  Instrumentation points call :func:`trace_span`,
   which costs one attribute load and one branch before returning a shared
   no-op singleton.  The perf-guard test pins this.
2. **Re-entrant.**  The current-span stack lives in a
   :class:`contextvars.ContextVar`, so two sessions tracing concurrently
   (threads, or interleaved generators) each build their own branch of the
   tree without interleaving parents.
3. **Exception-safe.**  A span closed by an exception records
   ``status="error"`` plus the error type/message as attributes, and the
   exception propagates unchanged.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One completed (or in-flight) span."""

    name: str
    span_id: int
    parent_id: int | None
    attributes: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    #: Simulated kernel timelines attached while this span was current,
    #: interleaved with ``children`` in creation order via ``sequence``.
    timelines: list = field(default_factory=list)
    status: str = "ok"
    start_s: float = 0.0
    end_s: float | None = None
    #: Creation order across the whole tracer, used by exporters to
    #: interleave child spans and attached timelines deterministically.
    sequence: int = 0

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time inside the span (diagnostic only — exports use
        the deterministic simulated timebase instead)."""
        end = self.end_s if self.end_s is not None else self.start_s
        return max(0.0, end - self.start_s)

    def walk(self):
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str):
        """First span named ``name`` in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class Span:
    """Context-manager handle for one live span."""

    __slots__ = ("_tracer", "record", "_token")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record
        self._token = None

    @property
    def enabled(self) -> bool:
        return True

    def set_attribute(self, key: str, value) -> "Span":
        self.record.attributes[key] = value
        return self

    def set_attributes(self, **attributes) -> "Span":
        self.record.attributes.update(attributes)
        return self

    def attach_timeline(self, timeline, label: str = "kernels") -> "Span":
        """Attach a simulated kernel :class:`~repro.profiling.timeline.Timeline`
        so exporters can overlay kernel events under this span."""
        self._tracer._attach_timeline(self.record, timeline, label)
        return self

    def __enter__(self) -> "Span":
        self._token = self._tracer._push(self.record)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.record.status = "error"
            self.record.attributes.setdefault("error.type", exc_type.__name__)
            self.record.attributes.setdefault("error.message", str(exc))
        self._tracer._pop(self.record, self._token)
        return False


class _NullSpan:
    """Shared do-nothing span handle: the disabled-telemetry fast path."""

    __slots__ = ()

    enabled = False
    record = None

    def set_attribute(self, _key, _value):
        return self

    def set_attributes(self, **_attributes):
        return self

    def attach_timeline(self, _timeline, _label="kernels"):
        return self

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees for one or more concurrent instrumented runs.

    ``clock`` defaults to :func:`time.perf_counter`; tests may inject a
    deterministic clock.  Span ids are allocated from an atomic counter and
    a lock guards the shared root list, so concurrent sessions are safe.
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter):
        self.enabled = enabled
        self.clock = clock
        self.roots: list = []
        self._ids = itertools.count(1)
        self._sequence = itertools.count(1)
        self._lock = threading.Lock()
        self._stack: contextvars.ContextVar = contextvars.ContextVar(
            "repro_span_stack", default=()
        )

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a span under the current one; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack.get()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            attributes=dict(attributes),
            start_s=self.clock(),
            sequence=next(self._sequence),
        )
        return Span(self, record)

    def _push(self, record: SpanRecord):
        stack = self._stack.get()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(record)
        else:
            with self._lock:
                self.roots.append(record)
        return self._stack.set(stack + (record,))

    def _pop(self, record: SpanRecord, token) -> None:
        record.end_s = self.clock()
        if token is not None:
            self._stack.reset(token)

    def _attach_timeline(self, record: SpanRecord, timeline, label: str) -> None:
        record.timelines.append((label, timeline, next(self._sequence)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def current(self):
        """The innermost open span in this context, or the no-op span."""
        stack = self._stack.get()
        if not stack:
            return NULL_SPAN
        return Span(self, stack[-1])

    def reset(self) -> None:
        """Drop all collected spans (ids keep counting)."""
        with self._lock:
            self.roots = []

    def render_tree(self) -> str:
        """Indented text rendering of every collected span tree."""
        lines: list = []

        def visit(record: SpanRecord, depth: int) -> None:
            mark = "" if record.status == "ok" else "  [ERROR]"
            attrs = ", ".join(
                f"{key}={record.attributes[key]}" for key in sorted(record.attributes)
            )
            suffix = f" ({attrs})" if attrs else ""
            lines.append(f"{'  ' * depth}{record.name}{suffix}{mark}")
            for _label, timeline, _seq in record.timelines:
                lines.append(
                    f"{'  ' * (depth + 1)}[timeline: {len(timeline.events)} kernel "
                    f"events, {timeline.makespan_s * 1e3:.3f} ms simulated]"
                )
            for child in record.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# module-level API: the instrumentation points call these
# ----------------------------------------------------------------------

_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled by default)."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global tracer; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous


def telemetry_enabled() -> bool:
    """Cheap check for instrumentation points with non-trivial setup cost."""
    return _GLOBAL.enabled


def trace_span(name: str, **attributes):
    """Open a span on the global tracer (no-op singleton when disabled).

    This is the one call every instrumentation point makes; the lint in
    ``tools/check_instrumentation.py`` asserts it never disappears from the
    core entry points.
    """
    tracer = _GLOBAL
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def current_span():
    """The innermost open span on the global tracer (no-op when disabled)."""
    tracer = _GLOBAL
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.current()


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Install an enabled tracer for the duration of a ``with`` block.

    Yields the tracer; the previous global tracer is restored on exit even
    if the block raises.
    """
    active = tracer if tracer is not None else Tracer(enabled=True)
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
