"""The run archive: persisted provenance for every instrumented run.

Each archived run is a directory ``<root>/<run_id>/`` holding:

- ``manifest.json`` — model / framework / device / batch / seed, the
  headline metrics, the repository's ``git describe`` and a creation
  timestamp;
- ``spans.jsonl`` — the structured event stream (optional);
- ``trace.json`` — the chrome://tracing span/kernel overlay (optional);
- ``metrics.prom`` — the Prometheus-style metrics dump (optional).

Run ids are ``{model}-{framework}-b{batch}-{NNN}`` with a per-archive
monotonic sequence number, so re-running the same configuration archives a
new run rather than overwriting history.  :meth:`RunArchive.diff` compares
two manifests' headline metrics with the same tolerance discipline as
:mod:`repro.core.regression` and returns its :class:`~repro.core.regression.Drift`
records, so archive diffs and calibration drift read identically.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from dataclasses import asdict, dataclass, field

#: Environment variable overriding the default archive location.
RUNS_DIR_ENV = "TBD_RUNS_DIR"
#: Default archive directory, relative to the current working directory.
DEFAULT_RUNS_DIR = "runs"

_MANIFEST = "manifest.json"


def git_describe(cwd: str | None = None) -> str:
    """``git describe --always --dirty`` of the repository, or "unknown"."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd if cwd is not None else os.path.dirname(__file__),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one instrumented run."""

    run_id: str
    model: str
    framework: str
    device: str
    batch_size: int
    seed: int
    git: str
    created_at: str
    metrics: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        return cls(**{key: data[key] for key in cls.__dataclass_fields__})


class RunArchive:
    """A local directory of archived runs with list/load/diff queries."""

    def __init__(self, root: str | None = None):
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV, DEFAULT_RUNS_DIR)
        self.root = root

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def next_run_id(self, model: str, framework: str, batch_size: int) -> str:
        prefix = f"{model}-{framework}-b{batch_size}-"
        existing = [
            name[len(prefix):]
            for name in self.list()
            if name.startswith(prefix)
        ]
        numbers = [int(tail) for tail in existing if tail.isdigit()]
        return f"{prefix}{max(numbers, default=0) + 1:03d}"

    def record(
        self,
        manifest: RunManifest,
        spans_jsonl: str | None = None,
        chrome_trace: dict | None = None,
        prometheus: str | None = None,
    ) -> str:
        """Persist one run; returns the run directory path."""
        run_dir = os.path.join(self.root, manifest.run_id)
        os.makedirs(run_dir, exist_ok=True)
        with open(os.path.join(run_dir, _MANIFEST), "w") as handle:
            handle.write(manifest.to_json())
        if spans_jsonl is not None:
            with open(os.path.join(run_dir, "spans.jsonl"), "w") as handle:
                handle.write(spans_jsonl)
        if chrome_trace is not None:
            with open(os.path.join(run_dir, "trace.json"), "w") as handle:
                json.dump(chrome_trace, handle, sort_keys=True, separators=(",", ":"))
        if prometheus is not None:
            with open(os.path.join(run_dir, "metrics.prom"), "w") as handle:
                handle.write(prometheus)
        return run_dir

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def list(self) -> list:
        """Archived run ids, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name
            for name in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, name, _MANIFEST))
        )

    def load(self, run_id: str) -> RunManifest:
        """Load one run's manifest.

        Raises:
            FileNotFoundError: if the run is not archived.
        """
        path = os.path.join(self.root, run_id, _MANIFEST)
        with open(path) as handle:
            return RunManifest.from_dict(json.load(handle))

    def run_dir(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    def diff(
        self, baseline_id: str, candidate_id: str, tolerances: dict | None = None
    ) -> list:
        """Compare two archived runs' headline metrics.

        Returns :class:`~repro.core.regression.Drift` records for every
        metric whose relative change exceeds its tolerance (default: the
        calibration tolerances of :mod:`repro.core.regression`).
        """
        # Imported lazily: regression pulls in the whole suite, and the
        # instrumented modules import this package at module load.
        from repro.core.regression import Drift, TOLERANCES

        tolerances = tolerances if tolerances is not None else TOLERANCES
        baseline = self.load(baseline_id)
        candidate = self.load(candidate_id)
        label = f"{baseline_id}..{candidate_id}"
        drifts: list = []
        for metric in sorted(set(baseline.metrics) | set(candidate.metrics)):
            reference = baseline.metrics.get(metric)
            value = candidate.metrics.get(metric)
            if reference is None or value is None:
                drifts.append(
                    Drift(label, metric, reference or 0.0, value or 0.0)
                )
                continue
            tolerance = tolerances.get(metric, 0.0)
            if reference == 0:
                if value != 0:
                    drifts.append(Drift(label, metric, reference, value))
                continue
            if abs(value - reference) / abs(reference) > tolerance:
                drifts.append(Drift(label, metric, reference, value))
        return drifts

    def delta_table(self, baseline_id: str, candidate_id: str) -> str:
        """Human-readable per-metric delta table between two runs."""
        baseline = self.load(baseline_id)
        candidate = self.load(candidate_id)
        lines = [f"{baseline_id}  ->  {candidate_id}"]
        for metric in sorted(set(baseline.metrics) | set(candidate.metrics)):
            reference = baseline.metrics.get(metric)
            value = candidate.metrics.get(metric)
            if reference is None or value is None:
                lines.append(f"  {metric:22s} {reference} -> {value}  [missing]")
                continue
            if reference:
                change = (value - reference) / abs(reference)
                lines.append(
                    f"  {metric:22s} {reference:12.4f} -> {value:12.4f}  "
                    f"({change:+.2%})"
                )
            else:
                lines.append(f"  {metric:22s} {reference:12.4f} -> {value:12.4f}")
        return "\n".join(lines)


def utc_now_iso() -> str:
    """Timestamp helper, isolated so tests can freeze it."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )
