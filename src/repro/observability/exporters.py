"""Deterministic exporters for span trees and metrics.

Three formats:

- **JSONL** — one structured event per line (spans depth-first, each
  followed by its attached kernel events), round-trippable via
  :func:`parse_jsonl`.
- **Chrome trace** — the same tree as chrome://tracing "X" events, using
  the conventions of
  :func:`repro.profiling.export.timeline_to_chrome_trace` so span and
  kernel views overlay: spans and their kernels share ``tid=0`` (the
  viewer nests by time containment, making stage spans ancestors of
  kernel events), GPU idle gaps ride on ``tid=1``.
- **Prometheus text** — ``# TYPE`` headers plus one sample per series.

Determinism is a feature, not an accident: archived runs must diff
cleanly.  All exports therefore use a *synthetic simulated timebase* —
spans are laid out by creation order and sized by the simulated kernel
timelines they carry, never by wall-clock — with sorted JSON keys and
fixed float formatting.  Two identical runs produce byte-identical files.
"""

from __future__ import annotations

import json

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import SpanRecord, Tracer

_US = 1e6  # exported timestamps are in microseconds
#: Synthetic padding at each span boundary so a parent span strictly
#: contains its children and kernel events (trace viewers nest by time
#: containment); also the minimum visible extent of an empty span.
_SPAN_PAD_S = 5e-7


def _round_us(seconds: float) -> float:
    """Seconds -> microseconds with fixed 3-decimal (nanosecond) precision."""
    return round(seconds * _US, 3)


def _clean_value(value):
    """Coerce an attribute value to a deterministic JSON-safe form."""
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return round(value, 9)
    return str(value)


def _clean_attributes(attributes: dict) -> dict:
    return {key: _clean_value(attributes[key]) for key in sorted(attributes)}


def layout_spans(roots) -> list:
    """Assign every span a deterministic ``(start_s, end_s)`` in simulated
    time.

    Roots are laid out back to back; within a span, child spans and
    attached timelines occupy consecutive intervals in creation order, a
    timeline taking exactly its simulated makespan.  Returns a flat list of
    ``(span, start_s, end_s, [(label, timeline, timeline_start_s), ...])``
    in depth-first order.
    """
    placed: list = []

    def visit(span: SpanRecord, t0: float) -> float:
        items = [("span", child.sequence, child) for child in span.children]
        items.extend(
            ("timeline", seq, (label, timeline))
            for label, timeline, seq in span.timelines
        )
        items.sort(key=lambda item: item[1])
        entry = [span, t0, t0, []]
        placed.append(entry)
        t = t0 + _SPAN_PAD_S
        for kind, _seq, payload in items:
            if kind == "span":
                t = visit(payload, t)
            else:
                label, timeline = payload
                entry[3].append((label, timeline, t))
                t += timeline.makespan_s
        entry[2] = t + _SPAN_PAD_S
        return entry[2]

    t = 0.0
    for root in sorted(roots, key=lambda span: span.sequence):
        t = visit(root, t)
    return [tuple(entry) for entry in placed]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def spans_to_jsonl(roots_or_tracer) -> str:
    """Serialize span trees as one JSON object per line.

    Accepts a :class:`~repro.observability.tracer.Tracer` or a list of root
    :class:`SpanRecord` objects.  Span events precede their kernel events;
    kernel events carry the owning ``span_id``.
    """
    roots = _roots(roots_or_tracer)
    lines: list = []
    for span, start_s, end_s, timelines in layout_spans(roots):
        lines.append(
            json.dumps(
                {
                    "event": "span",
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    "start_us": _round_us(start_s),
                    "dur_us": _round_us(end_s - start_s),
                    "attributes": _clean_attributes(span.attributes),
                },
                sort_keys=True,
            )
        )
        for label, timeline, t0 in timelines:
            for event in timeline.events:
                lines.append(
                    json.dumps(
                        {
                            "event": "kernel",
                            "span_id": span.span_id,
                            "stream": label,
                            "name": event.name,
                            "category": event.category.value,
                            "start_us": _round_us(t0 + event.start_s),
                            "dur_us": _round_us(event.duration_s),
                            "queue_delay_us": _round_us(event.queue_delay_s),
                            "host_sync": event.host_sync,
                        },
                        sort_keys=True,
                    )
                )
            for gap in timeline.gaps:
                lines.append(
                    json.dumps(
                        {
                            "event": "gap",
                            "span_id": span.span_id,
                            "stream": label,
                            "cause": gap.cause,
                            "start_us": _round_us(t0 + gap.start_s),
                            "dur_us": _round_us(gap.duration_s),
                        },
                        sort_keys=True,
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> list:
    """Parse a JSONL event stream back into a list of event dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def bench_records_to_jsonl(records) -> str:
    """Flatten bench trajectory records to one event per line.

    Each ``BENCH_*.json`` record (see :mod:`repro.bench.store`) becomes a
    ``bench_record`` line followed by one ``bench_result`` line per A/B
    case, so log pipelines that already ingest the span JSONL can ingest
    performance trajectories with the same machinery.  Deterministic for
    the same records: sorted keys, no wall-clock fields.
    """
    lines: list = []
    for record in records:
        header = {k: v for k, v in record.items() if k != "results"}
        header["event"] = "bench_record"
        lines.append(json.dumps(header, sort_keys=True))
        for result in record.get("results", []):
            row = dict(result)
            row["event"] = "bench_result"
            row["record_key"] = record.get("key")
            lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(roots_or_tracer, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(spans_to_jsonl(roots_or_tracer))


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------


def spans_to_chrome_trace(roots_or_tracer, process_name: str = "run") -> dict:
    """Convert span trees (plus attached kernel timelines) to a
    chrome://tracing object with the same shape as
    :func:`repro.profiling.export.timeline_to_chrome_trace`."""
    roots = _roots(roots_or_tracer)
    events: list = [
        {"name": "process_name", "ph": "M", "pid": 0, "args": {"name": process_name}},
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "spans + kernels"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 1,
            "args": {"name": "GPU idle"},
        },
    ]
    for span, start_s, end_s, timelines in layout_spans(roots):
        args = _clean_attributes(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": _round_us(start_s),
                "dur": _round_us(end_s - start_s),
                "args": args,
            }
        )
        for label, timeline, t0 in timelines:
            for event in timeline.events:
                events.append(
                    {
                        "name": event.name,
                        "cat": event.category.value,
                        "ph": "X",
                        "pid": 0,
                        "tid": 0,
                        "ts": _round_us(t0 + event.start_s),
                        "dur": _round_us(event.duration_s),
                        "args": {
                            "host_sync": event.host_sync,
                            "span_id": span.span_id,
                            "stream": label,
                        },
                    }
                )
            for gap in timeline.gaps:
                events.append(
                    {
                        "name": f"idle ({gap.cause})",
                        "cat": "idle",
                        "ph": "X",
                        "pid": 0,
                        "tid": 1,
                        "ts": _round_us(t0 + gap.start_s),
                        "dur": _round_us(gap.duration_s),
                        "args": {"span_id": span.span_id},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_span_trace(roots_or_tracer, path: str, process_name: str = "run") -> None:
    """Serialize the span/kernel overlay trace as deterministic JSON."""
    trace = spans_to_chrome_trace(roots_or_tracer, process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.9g}"


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus-style text dump, one ``# TYPE`` header per metric name."""
    lines: list = []
    seen_types: set = set()
    for key, series in registry.series():
        if series.name not in seen_types:
            lines.append(f"# TYPE {series.name} {series.kind}")
            seen_types.add(series.name)
        if series.kind == "histogram":
            labels = key[len(series.name):]  # "{...}" or ""
            inner = labels[1:-1] if labels else ""
            for bound, cumulative in series.cumulative_buckets():
                le = "+Inf" if bound == "+Inf" else _format_value(bound)
                label_text = f'{inner},le="{le}"' if inner else f'le="{le}"'
                lines.append(
                    f"{series.name}_bucket{{{label_text}}} {cumulative}"
                )
            lines.append(f"{series.name}_sum{labels} {_format_value(series.total)}")
            lines.append(f"{series.name}_count{labels} {series.count}")
        else:
            lines.append(f"{key} {_format_value(series.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _roots(roots_or_tracer) -> list:
    if isinstance(roots_or_tracer, Tracer):
        return roots_or_tracer.roots
    return list(roots_or_tracer)
