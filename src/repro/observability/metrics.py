"""Metrics registry: counters, gauges and histograms for the simulator.

The instrumentation points record what the paper's merged profiles would
show — kernels issued, dispatch stalls, the queue-delay distribution,
bytes allocated per :class:`~repro.hardware.memory.AllocationTag`,
allreduce bytes on the wire — as cheap in-process metrics.  Like the
tracer, the registry is disabled by default and the disabled path costs a
single branch: ``registry.counter(...)`` returns a shared no-op metric.

Label support is deliberately simple: a metric name plus an optional
``labels`` dict resolves to one time series, stored under a deterministic
``name{k="v",...}`` key so the Prometheus text dump is stable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Default histogram buckets, in seconds — spans queue delays from
#: sub-microsecond launch jitter up to host-sync stalls.
DEFAULT_BUCKETS = (
    1e-6,
    5e-6,
    1e-5,
    5e-5,
    1e-4,
    5e-4,
    1e-3,
    5e-3,
    1e-2,
    5e-2,
    1e-1,
)


def series_key(name: str, labels: dict | None) -> str:
    """Deterministic time-series key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    kind = "counter"
    enabled = True

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value."""

    name: str
    value: float = 0.0

    kind = "gauge"
    enabled = True

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Fixed-bucket distribution with count and sum."""

    name: str
    buckets: tuple = DEFAULT_BUCKETS
    bucket_counts: list = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    kind = "histogram"
    enabled = True

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list:
        """``[(upper_bound, cumulative_count), ..., ("+Inf", count)]``."""
        out = []
        running = 0
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append(("+Inf", self.count))
        return out


class _NullMetric:
    """Shared no-op counter/gauge/histogram: the disabled fast path."""

    __slots__ = ()

    enabled = False
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, _amount: float = 1.0) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metric store; thread-safe creation, deterministic iteration."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._series: dict = {}
        self._lock = threading.Lock()

    def _get(self, factory, name: str, labels: dict | None, **kwargs):
        if not self.enabled:
            return NULL_METRIC
        key = series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, factory(name=name, **kwargs))
        return series

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, labels: dict | None = None, buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> dict:
        """``{series_key: value-or-histogram-summary}`` in sorted key order."""
        out = {}
        for key in sorted(self._series):
            series = self._series[key]
            if series.kind == "histogram":
                out[key] = {
                    "count": series.count,
                    "sum": series.total,
                    "mean": series.mean,
                }
            else:
                out[key] = series.value
        return out

    def series(self) -> list:
        """``[(series_key, metric), ...]`` in sorted key order."""
        return [(key, self._series[key]) for key in sorted(self._series)]

    def reset(self) -> None:
        with self._lock:
            self._series = {}


# ----------------------------------------------------------------------
# module-level registry, mirroring the tracer's global
# ----------------------------------------------------------------------

_GLOBAL = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-global registry (disabled by default)."""
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous
