"""nvprof-style kernel trace analysis.

The paper's toolchain runs nvprof over a sampled window of stable-phase
iterations and exports ``.nvvp`` files; the analysis then aggregates kernel
launches by name and asks the question behind Tables 5 and 6: *which
long-running kernels under-utilize the FP32 units?* — those are the top
acceleration candidates (Observation 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.roofline import KernelTiming


@dataclass
class KernelStats:
    """Aggregated statistics for one kernel name across a trace."""

    name: str
    launches: int = 0
    total_time_s: float = 0.0
    total_flops: float = 0.0
    _peak_flops: float = 0.0

    @property
    def mean_time_s(self) -> float:
        return self.total_time_s / self.launches if self.launches else 0.0

    @property
    def fp32_utilization(self) -> float:
        """Achieved fraction of peak FP32 throughput while this kernel ran."""
        if self.total_time_s <= 0 or self._peak_flops <= 0:
            return 0.0
        return self.total_flops / (self._peak_flops * self.total_time_s)


@dataclass
class TableRow:
    """One row of the Table 5/6 report."""

    duration_share: float  # fraction of total GPU busy time
    fp32_utilization: float
    kernel_name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.duration_share * 100:5.2f}%  "
            f"{self.fp32_utilization * 100:5.1f}%  {self.kernel_name}"
        )


class KernelTrace:
    """A recorded stream of kernel launches with aggregation queries."""

    def __init__(self, timings, peak_fp32_flops: float):
        if peak_fp32_flops <= 0:
            raise ValueError("peak FLOP/s must be positive")
        self.timings: list = list(timings)
        self.peak_fp32_flops = peak_fp32_flops

    @property
    def total_time_s(self) -> float:
        return sum(t.duration_s for t in self.timings)

    @property
    def total_flops(self) -> float:
        return sum(t.kernel.flops for t in self.timings)

    @property
    def launch_count(self) -> int:
        return len(self.timings)

    @property
    def average_fp32_utilization(self) -> float:
        """Trace-wide FP32 utilization (paper Eq. 2 over the busy window)."""
        if self.total_time_s <= 0:
            return 0.0
        return self.total_flops / (self.peak_fp32_flops * self.total_time_s)

    def by_name(self) -> dict:
        """Aggregate launches into per-kernel-name statistics."""
        stats: dict = {}
        for timing in self.timings:
            name = timing.kernel.name
            entry = stats.get(name)
            if entry is None:
                entry = KernelStats(name=name, _peak_flops=self.peak_fp32_flops)
                stats[name] = entry
            entry.launches += 1
            entry.total_time_s += timing.duration_s
            entry.total_flops += timing.kernel.flops
        return stats

    def by_category(self) -> dict:
        """Total busy time per kernel category."""
        totals: dict = {}
        for timing in self.timings:
            category = timing.kernel.category
            totals[category] = totals.get(category, 0.0) + timing.duration_s
        return totals

    def longest_low_utilization_kernels(self, count: int = 5) -> list:
        """The paper's Table 5/6 query: the ``count`` kernels with the
        largest share of GPU time whose FP32 utilization is *below* the
        trace average.  These are the top acceleration candidates.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        average = self.average_fp32_utilization
        total = self.total_time_s
        candidates = [
            stats
            for stats in self.by_name().values()
            if stats.fp32_utilization < average
        ]
        candidates.sort(key=lambda s: s.total_time_s, reverse=True)
        return [
            TableRow(
                duration_share=stats.total_time_s / total if total else 0.0,
                fp32_utilization=stats.fp32_utilization,
                kernel_name=stats.name,
            )
            for stats in candidates[:count]
        ]

    def memory_bound_time_fraction(self) -> float:
        """Share of busy time spent in memory-bound kernels."""
        total = self.total_time_s
        if total <= 0:
            return 0.0
        bound = sum(t.duration_s for t in self.timings if t.is_memory_bound)
        return bound / total


def trace_from_profile(profile) -> KernelTrace:
    """Build a :class:`KernelTrace` from an
    :class:`~repro.training.session.IterationProfile`."""
    return KernelTrace(profile.kernel_timings, profile.peak_fp32_flops)
