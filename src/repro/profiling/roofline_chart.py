"""ASCII roofline chart: place a trace's kernels on the device roofline.

The roofline (Williams et al.) plots achieved FLOP/s against arithmetic
intensity; a kernel under the sloped (bandwidth) segment is memory-bound,
one under the flat (compute) segment is compute-bound, and its vertical
distance to the roof is the optimization headroom.  The paper's per-kernel
analysis (Tables 5/6, Observation 8) is exactly a roofline question —
this renderer makes it visual in a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.devices import GPUSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel aggregate placed on the roofline."""

    name: str
    arithmetic_intensity: float
    achieved_flops: float
    time_share: float

    @property
    def is_memory_bound_region(self) -> bool:
        return False  # resolved against a device by the chart


def points_from_trace(trace, top: int = 12) -> list:
    """Aggregate a :class:`~repro.profiling.kernel_trace.KernelTrace` into
    its ``top`` kernels by time, as roofline points."""
    if top <= 0:
        raise ValueError("top must be positive")
    total = trace.total_time_s
    stats = sorted(
        trace.by_name().values(), key=lambda s: s.total_time_s, reverse=True
    )[:top]
    points = []
    for entry in stats:
        if entry.total_time_s <= 0:
            continue
        flops_rate = entry.total_flops / entry.total_time_s
        # Recover aggregate intensity from the member kernels via trace.
        points.append(
            RooflinePoint(
                name=entry.name,
                arithmetic_intensity=_intensity_of(trace, entry.name),
                achieved_flops=flops_rate,
                time_share=entry.total_time_s / total if total else 0.0,
            )
        )
    return points


def _intensity_of(trace, name: str) -> float:
    flops = 0.0
    traffic = 0.0
    for timing in trace.timings:
        if timing.kernel.name == name:
            flops += timing.kernel.flops
            traffic += timing.kernel.bytes_accessed
    if traffic <= 0:
        return float("inf")
    return flops / traffic


def render_roofline(
    points, device: GPUSpec, width: int = 66, height: int = 18
) -> str:
    """Draw the roofline and the points as an ASCII chart (log-log axes)."""
    if width < 30 or height < 8:
        raise ValueError("chart too small to be legible")
    peak = device.peak_fp32_flops
    bandwidth = device.memory_bandwidth_bytes
    finite = [p for p in points if math.isfinite(p.arithmetic_intensity)]
    x_min, x_max = 0.01, 1000.0  # FLOP/byte
    y_min, y_max = peak / 1e4, peak * 2.0

    def x_of(intensity: float) -> int:
        fraction = (math.log10(intensity) - math.log10(x_min)) / (
            math.log10(x_max) - math.log10(x_min)
        )
        return max(0, min(width - 1, int(fraction * (width - 1))))

    def y_of(flops: float) -> int:
        flops = max(y_min, min(y_max, flops))
        fraction = (math.log10(flops) - math.log10(y_min)) / (
            math.log10(y_max) - math.log10(y_min)
        )
        return max(0, min(height - 1, int((1.0 - fraction) * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    # The roof: min(peak, intensity * bandwidth) across the x range.
    for column in range(width):
        fraction = column / (width - 1)
        intensity = 10 ** (
            math.log10(x_min)
            + fraction * (math.log10(x_max) - math.log10(x_min))
        )
        roof = min(peak, intensity * bandwidth)
        grid[y_of(roof)][column] = "-" if roof >= peak else "/"
    # The points, labelled a, b, c, ...
    labels = []
    for index, point in enumerate(finite):
        marker = chr(ord("a") + index)
        grid[y_of(point.achieved_flops)][x_of(point.arithmetic_intensity)] = marker
        labels.append(
            f"  {marker}: {point.name.split('<')[0][:46]:46s} "
            f"AI={point.arithmetic_intensity:8.2f}  "
            f"{point.achieved_flops / 1e9:8.1f} GFLOP/s  "
            f"{point.time_share * 100:4.1f}% of time"
        )
    header = (
        f"roofline: {device.name}  (peak {peak / 1e12:.2f} TFLOP/s, "
        f"{bandwidth / 1e9:.0f} GB/s; log-log, x: FLOP/byte {x_min}-{x_max})"
    )
    body = "\n".join("|" + "".join(row) for row in grid)
    return "\n".join([header, body, "+" + "-" * width] + labels)


def roofline_for(session, batch_size: int | None = None, top: int = 10) -> str:
    """Convenience: trace one session iteration and render its roofline."""
    from repro.profiling.kernel_trace import trace_from_profile

    profile = session.run_iteration(batch_size)
    trace = trace_from_profile(profile)
    return render_roofline(points_from_trace(trace, top), session.gpu)
