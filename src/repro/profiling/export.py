"""Trace export: chrome://tracing JSON and CSV summaries.

The paper's pipeline exports ``.nvvp`` files from nvprof and merges them
offline; the modern equivalent is the Chrome trace-event format, which
every trace viewer (chrome://tracing, Perfetto, Speedscope) reads.  This
module serializes simulated timelines and kernel traces so runs can be
inspected visually, and writes the CSV summaries the analysis scripts
consume.
"""

from __future__ import annotations

import csv
import json
import io

from repro.profiling.timeline import Timeline

_US = 1e6  # trace events are in microseconds


def _round_us(seconds: float) -> float:
    """Seconds -> microseconds with fixed nanosecond precision, so exported
    traces are byte-stable and diff cleanly across runs."""
    return round(seconds * _US, 3)


def timeline_to_chrome_trace(timeline: Timeline, process_name: str = "GPU") -> dict:
    """Convert a :class:`Timeline` to a chrome://tracing object."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for event in timeline.events:
        events.append(
            {
                "name": event.name,
                "cat": event.category.value,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": _round_us(event.start_s),
                "dur": _round_us(event.duration_s),
                "args": {"host_sync": event.host_sync},
            }
        )
    for index, gap in enumerate(timeline.gaps):
        events.append(
            {
                "name": f"idle ({gap.cause})",
                "cat": "idle",
                "ph": "X",
                "pid": 0,
                "tid": 1,
                "ts": _round_us(gap.start_s),
                "dur": _round_us(gap.duration_s),
                "args": {"index": index},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str, process_name: str = "GPU") -> None:
    """Serialize a timeline to deterministic chrome-trace JSON (sorted keys,
    fixed float precision)."""
    trace = timeline_to_chrome_trace(timeline, process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle, sort_keys=True, separators=(",", ":"))


def kernel_stats_to_csv(trace, path_or_buffer=None) -> str:
    """Write a :class:`~repro.profiling.kernel_trace.KernelTrace`'s
    aggregated per-kernel statistics as CSV; returns the CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["kernel", "launches", "total_time_s", "mean_time_s", "fp32_utilization"]
    )
    stats = sorted(
        trace.by_name().values(), key=lambda s: s.total_time_s, reverse=True
    )
    for entry in stats:
        writer.writerow(
            [
                entry.name,
                entry.launches,
                f"{entry.total_time_s:.9f}",
                f"{entry.mean_time_s:.9f}",
                f"{entry.fp32_utilization:.4f}",
            ]
        )
    text = buffer.getvalue()
    if path_or_buffer is not None:
        if hasattr(path_or_buffer, "write"):
            path_or_buffer.write(text)
        else:
            with open(path_or_buffer, "w") as handle:
                handle.write(text)
    return text


def metrics_to_csv(metrics_list, path_or_buffer=None) -> str:
    """Write a list of :class:`~repro.core.metrics.IterationMetrics` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "model",
            "framework",
            "device",
            "batch_size",
            "throughput",
            "throughput_unit",
            "gpu_utilization",
            "fp32_utilization",
            "cpu_utilization",
            "iteration_time_s",
        ]
    )
    for metrics in metrics_list:
        writer.writerow(
            [
                metrics.model,
                metrics.framework,
                metrics.device,
                metrics.batch_size,
                f"{metrics.throughput:.3f}",
                metrics.throughput_unit,
                f"{metrics.gpu_utilization:.4f}",
                f"{metrics.fp32_utilization:.4f}",
                f"{metrics.cpu_utilization:.4f}",
                f"{metrics.iteration_time_s:.6f}",
            ]
        )
    text = buffer.getvalue()
    if path_or_buffer is not None:
        if hasattr(path_or_buffer, "write"):
            path_or_buffer.write(text)
        else:
            with open(path_or_buffer, "w") as handle:
                handle.write(text)
    return text
