"""Measurement statistics for sampled training runs.

The paper (a Sigmetrics-community submission) samples 50-1000 stable-phase
iterations and reports point estimates; this module supplies the rigor
around those estimates: summary statistics, normal-theory and bootstrap
confidence intervals for mean throughput, and a two-sample comparison test
for "is framework A really faster than framework B" questions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Summary of one sampled measurement series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.mean:
            return self.std / self.mean
        # A zero mean with zero spread is a perfectly precise measurement
        # of zero, not an infinitely noisy one.
        return 0.0 if self.std == 0.0 else float("inf")

    @property
    def ci_half_width_fraction(self) -> float:
        """CI half-width relative to the mean (reporting precision).

        Zero-variance (or single-sample) series have a zero-width interval
        and report 0.0; a nonzero-width interval around a zero mean has no
        finite relative precision and reports ``inf``.
        """
        half_width = (self.ci_high - self.ci_low) / 2.0
        if self.mean:
            return half_width / self.mean
        return 0.0 if half_width == 0.0 else float("inf")


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile for common confidence levels."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if confidence not in table:
        raise ValueError(f"supported confidence levels: {sorted(table)}")
    return table[confidence]


def summarize(samples, confidence: float = 0.95) -> SampleSummary:
    """Normal-theory summary of a sample series.

    A single sample is a defined (degenerate) series: zero spread and a
    zero-width confidence interval at the observed value.

    Raises:
        ValueError: for an empty series.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 1:
        raise ValueError("need at least 1 sample")
    _z_value(confidence)  # validate even on the degenerate path
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    half = _z_value(confidence) * std / math.sqrt(data.size)
    return SampleSummary(
        count=int(data.size),
        mean=mean,
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def bootstrap_ci(
    samples, confidence: float = 0.95, resamples: int = 2000, seed: int = 0
) -> tuple:
    """Percentile-bootstrap confidence interval for the mean — robust to
    the skew that warm-up leakage introduces into iteration-time samples.

    Degenerate inputs stay defined: a single sample, or a series with zero
    variance, resamples to itself on every draw, so the interval collapses
    to the zero-width ``(mean, mean)`` without running the resampler.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 1:
        raise ValueError("need at least 1 sample")
    if resamples <= 0:
        raise ValueError("resamples must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if data.size == 1 or float(data.std()) == 0.0:
        mean = float(data.mean())
        return (mean, mean)
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(resamples, data.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def required_sample_count(
    pilot_samples, relative_precision: float = 0.02, confidence: float = 0.95
) -> int:
    """How many iterations must be sampled for the mean's CI half-width to
    reach ``relative_precision`` of the mean — the principled answer to the
    paper's 50-1000-iteration rule of thumb."""
    if relative_precision <= 0:
        raise ValueError("precision must be positive")
    summary = summarize(pilot_samples, confidence)
    z = _z_value(confidence)
    needed = (z * summary.coefficient_of_variation / relative_precision) ** 2
    return max(2, int(math.ceil(needed)))


def _normal_sf(z: float) -> float:
    """Standard-normal survival function P(Z >= z)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def welch_statistic(samples_a, samples_b) -> float:
    """Welch's z statistic ``(mean_a - mean_b) / se`` for two series.

    A zero pooled standard error (both sides variance-free) yields 0.0
    when the means agree and ±inf when they differ — the comparison is
    then exact, not statistical.
    """
    a = np.asarray(list(samples_a), dtype=float)
    b = np.asarray(list(samples_b), dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least 2 samples per side")
    difference = float(a.mean() - b.mean())
    se = math.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
    if se == 0.0:
        if difference == 0.0:
            return 0.0
        return math.copysign(float("inf"), difference)
    return difference / se


def welch_p_value(samples_a, samples_b, alternative: str = "two-sided") -> float:
    """Welch (normal-approximation) p-value for a difference in means.

    ``alternative`` picks the hypothesis being tested against the null of
    equal means: ``"two-sided"`` (means differ), ``"greater"`` (mean of
    ``samples_a`` is larger), or ``"less"`` (it is smaller).
    """
    z = welch_statistic(samples_a, samples_b)
    if alternative == "two-sided":
        return min(1.0, 2.0 * _normal_sf(abs(z)))
    if alternative == "greater":
        return _normal_sf(z)
    if alternative == "less":
        return _normal_sf(-z)
    raise ValueError("alternative must be 'two-sided', 'greater' or 'less'")


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample mean comparison (Welch)."""

    mean_difference: float
    ci_low: float
    ci_high: float
    significant: bool
    faster: str
    #: Two-sided Welch p-value under the null of equal means.
    p_value: float = 1.0


def compare(
    samples_a, samples_b, labels=("A", "B"), confidence: float = 0.95
) -> ComparisonResult:
    """Is one measurement series reliably larger than the other?

    Uses Welch's normal-approximation interval on the difference of means;
    "significant" means the interval excludes zero.  ``p_value`` carries
    the matching two-sided test so callers can gate on an explicit alpha
    instead of the interval.
    """
    a = np.asarray(list(samples_a), dtype=float)
    b = np.asarray(list(samples_b), dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least 2 samples per side")
    difference = float(a.mean() - b.mean())
    half = _z_value(confidence) * math.sqrt(
        a.var(ddof=1) / a.size + b.var(ddof=1) / b.size
    )
    low, high = difference - half, difference + half
    significant = low > 0 or high < 0
    if not significant:
        faster = "indistinguishable"
    else:
        faster = labels[0] if difference > 0 else labels[1]
    return ComparisonResult(
        mean_difference=difference,
        ci_low=low,
        ci_high=high,
        significant=significant,
        faster=faster,
        p_value=welch_p_value(a, b, "two-sided"),
    )
