"""The TBD analysis toolchain (paper Section 3.4 and Fig. 3).

Piecewise profiling with purpose-built tools, merged using domain knowledge
of DNN training:

- :mod:`repro.profiling.kernel_trace` — an nvprof-style kernel profiler:
  per-kernel durations, FP32 utilizations, aggregation by kernel name, and
  the "longest kernels below average utilization" query behind Tables 5/6.
- :mod:`repro.profiling.cpu_sampler` — a vTune-style host profiler: CPU
  core-seconds by component (dispatch, pipeline, frontend, model-specific
  host stages) and hotspot ranking.
- :mod:`repro.profiling.memory_profiler` — the paper's memory profiler:
  the five-way breakdown (weights / weight gradients / feature maps /
  workspace / dynamic) per framework (the first such tool, per the paper).
- :mod:`repro.profiling.sampling` — warm-up / auto-tuning detection and
  stable-phase sampling (Section 3.4.2).
"""

from repro.profiling.kernel_trace import KernelTrace, KernelStats
from repro.profiling.cpu_sampler import CPUSample, CPUSampler
from repro.profiling.memory_profiler import MemoryProfile, MemoryProfiler
from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.profiling.timeline import Timeline, build_timeline, timeline_for
from repro.profiling.statistics import bootstrap_ci, compare, summarize
from repro.profiling.export import (
    kernel_stats_to_csv,
    metrics_to_csv,
    timeline_to_chrome_trace,
    write_chrome_trace,
)
from repro.profiling.comparison import ABReport, ab_compare
from repro.profiling.roofline_chart import render_roofline, roofline_for

__all__ = [
    "KernelTrace",
    "KernelStats",
    "CPUSampler",
    "CPUSample",
    "MemoryProfiler",
    "MemoryProfile",
    "StablePhaseSampler",
    "IterationTimeline",
    "Timeline",
    "build_timeline",
    "timeline_for",
    "summarize",
    "bootstrap_ci",
    "compare",
    "timeline_to_chrome_trace",
    "write_chrome_trace",
    "kernel_stats_to_csv",
    "metrics_to_csv",
    "ab_compare",
    "ABReport",
    "render_roofline",
    "roofline_for",
]
