"""The paper's memory profiler (Section 3.4.3, Fig. 9).

    "Unfortunately, there are no open-source tools currently available for
    existing frameworks that can provide this analysis.  Hence we build our
    own memory profilers for three main frameworks."

This module is that tool for the simulated runtime: it intercepts every
allocation a training setup performs, classifies it into the five data-
structure classes, and reports the *maximum* amount ever allocated per
class — exactly the quantity Fig. 9 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory import AllocationTag, MemorySnapshot
from repro.training.session import TrainingSession

_GIB = 1024.0**3

#: Fig. 9 stacking order.
BREAKDOWN_ORDER = (
    AllocationTag.FEATURE_MAPS,
    AllocationTag.WEIGHTS,
    AllocationTag.WEIGHT_GRADIENTS,
    AllocationTag.DYNAMIC,
    AllocationTag.WORKSPACE,
)


@dataclass(frozen=True)
class MemoryProfile:
    """One (model, framework, batch) memory breakdown."""

    model: str
    framework: str
    batch_size: int
    snapshot: MemorySnapshot

    def gib(self, tag: AllocationTag) -> float:
        """Peak GiB for one class."""
        return self.snapshot.peak_by_tag.get(tag, 0.0) / _GIB

    @property
    def total_gib(self) -> float:
        return sum(self.snapshot.peak_by_tag.values()) / _GIB

    @property
    def feature_map_fraction(self) -> float:
        """Share of the footprint held by feature maps (Obs. 11: 62-89%)."""
        return self.snapshot.feature_map_fraction

    def breakdown(self) -> dict:
        """Class name -> GiB, in Fig. 9 stacking order."""
        return {tag.value: self.gib(tag) for tag in BREAKDOWN_ORDER}

    def format_row(self) -> str:
        """One printable row of a Fig. 9-style table."""
        cells = "  ".join(
            f"{tag.value}={self.gib(tag):5.2f}" for tag in BREAKDOWN_ORDER
        )
        return (
            f"{self.model:14s} {self.framework:11s} b={self.batch_size:<5d} "
            f"total={self.total_gib:5.2f} GiB  {cells}"
        )


class MemoryProfiler:
    """Profiles memory for models across frameworks and batch sizes."""

    def __init__(self, gpu=None):
        self.gpu = gpu

    def profile(self, model: str, framework: str, batch_size: int) -> MemoryProfile:
        """Profile one configuration.

        Raises:
            OutOfMemoryError: if the configuration does not fit on the GPU.
        """
        kwargs = {} if self.gpu is None else {"gpu": self.gpu}
        session = TrainingSession(model, framework, **kwargs)
        snapshot = session.profile_memory(batch_size)
        return MemoryProfile(
            model=session.spec.display_name,
            framework=session.framework.name,
            batch_size=batch_size,
            snapshot=snapshot,
        )

    def sweep(self, model: str, framework: str, batch_sizes) -> list:
        """Profile several batch sizes, skipping configurations that OOM."""
        from repro.hardware.memory import OutOfMemoryError

        profiles = []
        for batch in batch_sizes:
            try:
                profiles.append(self.profile(model, framework, batch))
            except OutOfMemoryError:
                break
        return profiles
