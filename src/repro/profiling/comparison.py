"""Statistically sound A/B comparison of benchmark configurations.

"Is MXNet really faster than TensorFlow on ResNet-50, or is that noise?"
The paper answers with single sampled numbers; this harness answers with
measurement statistics: it synthesizes per-iteration throughput samples
for each side (the simulated stable-phase iteration time plus the observed
~2% stable-phase jitter, via :class:`IterationTimeline`), then runs the
Welch comparison from :mod:`repro.profiling.statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.profiling.statistics import (
    ComparisonResult,
    compare,
    required_sample_count,
    summarize,
)
from repro.training.session import TrainingSession

#: Pilot window used to estimate the variance before auto-sizing.
_PILOT_SAMPLES = 50
#: Target CI half-width (relative to the mean) for the auto-sized run.
_DEFAULT_PRECISION = 0.005


@dataclass(frozen=True)
class ABReport:
    """Outcome of one A/B throughput comparison."""

    label_a: str
    label_b: str
    mean_a: float
    mean_b: float
    ci_a: tuple
    ci_b: tuple
    result: ComparisonResult
    #: Iterations actually sampled per side (auto-sized unless overridden).
    samples: int = 0

    @property
    def verdict(self) -> str:
        """Human-readable outcome."""
        if not self.result.significant:
            return (
                f"{self.label_a} and {self.label_b} are statistically "
                "indistinguishable at this sample size"
            )
        return (
            f"{self.result.faster} is faster "
            f"(difference {abs(self.result.mean_difference):.1f}, 95% CI "
            f"[{self.result.ci_low:.1f}, {self.result.ci_high:.1f}])"
        )


def _throughput_samples(
    model: str, framework: str, batch: int, iterations: int, seed: int
):
    session = TrainingSession(model, framework)
    profile = session.run_iteration(batch)
    timeline = IterationTimeline(
        stable_iteration_s=profile.iteration_time_s, jitter=0.02, seed=seed
    )
    durations = timeline.durations(max(600, iterations * 3))
    sampler = StablePhaseSampler()
    window = sampler.choose_window(durations, iterations)
    stable = durations[window.start_iteration : window.end_iteration]
    return profile.effective_samples / stable


def _auto_sample_count(
    model: str,
    framework_a: str,
    framework_b: str,
    batch: int,
    relative_precision: float,
) -> int:
    """Sample count sized to the *observed* variance: draw a short pilot
    window per side, ask :func:`required_sample_count` what each needs for
    the target precision, and take the worse of the two (clamped to the
    paper's 50-1000 sampling range)."""
    needed = max(
        required_sample_count(
            _throughput_samples(model, framework_a, batch, _PILOT_SAMPLES, seed=1),
            relative_precision=relative_precision,
        ),
        required_sample_count(
            _throughput_samples(model, framework_b, batch, _PILOT_SAMPLES, seed=2),
            relative_precision=relative_precision,
        ),
    )
    return max(50, min(1000, needed))


def ab_compare(
    model: str,
    framework_a: str,
    framework_b: str,
    batch: int,
    samples: int | None = None,
    iterations: int | None = None,
    relative_precision: float = _DEFAULT_PRECISION,
) -> ABReport:
    """Compare two frameworks on one model with sampled iterations.

    By default the sample count adapts to the observed variance: a pilot
    window per side feeds :func:`required_sample_count` at
    ``relative_precision``, so noisy configurations sample more and quiet
    ones stop early.  Pass an explicit ``samples=`` (or the legacy
    ``iterations=`` alias) to pin the caller-fixed count instead.
    """
    if samples is not None and iterations is not None:
        raise ValueError("pass samples= or the legacy iterations= alias, not both")
    if samples is None:
        samples = iterations
    if samples is None:
        samples = _auto_sample_count(
            model, framework_a, framework_b, batch, relative_precision
        )
    samples_a = _throughput_samples(model, framework_a, batch, samples, seed=1)
    samples_b = _throughput_samples(model, framework_b, batch, samples, seed=2)
    summary_a = summarize(samples_a)
    summary_b = summarize(samples_b)
    result = compare(samples_a, samples_b, (framework_a, framework_b))
    return ABReport(
        label_a=framework_a,
        label_b=framework_b,
        mean_a=summary_a.mean,
        mean_b=summary_b.mean,
        ci_a=(summary_a.ci_low, summary_a.ci_high),
        ci_b=(summary_b.ci_low, summary_b.ci_high),
        result=result,
        samples=int(samples),
    )
