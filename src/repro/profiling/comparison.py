"""Statistically sound A/B comparison of benchmark configurations.

"Is MXNet really faster than TensorFlow on ResNet-50, or is that noise?"
The paper answers with single sampled numbers; this harness answers with
measurement statistics: it synthesizes per-iteration throughput samples
for each side (the simulated stable-phase iteration time plus the observed
~2% stable-phase jitter, via :class:`IterationTimeline`), then runs the
Welch comparison from :mod:`repro.profiling.statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.profiling.statistics import ComparisonResult, compare, summarize
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class ABReport:
    """Outcome of one A/B throughput comparison."""

    label_a: str
    label_b: str
    mean_a: float
    mean_b: float
    ci_a: tuple
    ci_b: tuple
    result: ComparisonResult

    @property
    def verdict(self) -> str:
        """Human-readable outcome."""
        if not self.result.significant:
            return (
                f"{self.label_a} and {self.label_b} are statistically "
                "indistinguishable at this sample size"
            )
        return (
            f"{self.result.faster} is faster "
            f"(difference {abs(self.result.mean_difference):.1f}, 95% CI "
            f"[{self.result.ci_low:.1f}, {self.result.ci_high:.1f}])"
        )


def _throughput_samples(
    model: str, framework: str, batch: int, iterations: int, seed: int
):
    session = TrainingSession(model, framework)
    profile = session.run_iteration(batch)
    timeline = IterationTimeline(
        stable_iteration_s=profile.iteration_time_s, jitter=0.02, seed=seed
    )
    durations = timeline.durations(max(600, iterations * 3))
    sampler = StablePhaseSampler()
    window = sampler.choose_window(durations, iterations)
    stable = durations[window.start_iteration : window.end_iteration]
    return profile.effective_samples / stable


def ab_compare(
    model: str,
    framework_a: str,
    framework_b: str,
    batch: int,
    iterations: int = 200,
) -> ABReport:
    """Compare two frameworks on one model with sampled iterations."""
    samples_a = _throughput_samples(model, framework_a, batch, iterations, seed=1)
    samples_b = _throughput_samples(model, framework_b, batch, iterations, seed=2)
    summary_a = summarize(samples_a)
    summary_b = summarize(samples_b)
    result = compare(samples_a, samples_b, (framework_a, framework_b))
    return ABReport(
        label_a=framework_a,
        label_b=framework_b,
        mean_a=summary_a.mean,
        mean_b=summary_b.mean,
        ci_a=(summary_a.ci_low, summary_a.ci_high),
        ci_b=(summary_b.ci_low, summary_b.ci_high),
        result=result,
    )
