"""vTune-style host-side profiling.

The paper uses Intel VTune to measure the cumulative active time of every
core (Eq. 3) and to identify hotspots.  Our simulated equivalent decomposes
a training iteration's CPU core-seconds into the components the simulator
accounts — kernel dispatch, control-flow syncs, the input pipeline, the
framework frontend, model-specific host stages (Faster R-CNN proposals),
and environment simulation (A3C) — and reports them hotspot-style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.pipeline import DataPipelineModel
from repro.data.registry import get_dataset
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class CPUSample:
    """One iteration's host-CPU decomposition (core-seconds)."""

    dispatch_s: float
    sync_s: float
    frontend_s: float
    pipeline_s: float
    host_stage_s: float
    environment_s: float
    iteration_time_s: float
    core_count: int

    @property
    def total_core_seconds(self) -> float:
        return (
            self.dispatch_s
            + self.sync_s
            + self.frontend_s
            + self.pipeline_s
            + self.host_stage_s
            + self.environment_s
        )

    @property
    def utilization(self) -> float:
        """Paper Eq. 3: mean utilization across all cores."""
        return min(
            1.0, self.total_core_seconds / (self.core_count * self.iteration_time_s)
        )

    def hotspots(self) -> list:
        """Components ranked by core-seconds, vTune hotspot style."""
        named = [
            ("kernel dispatch", self.dispatch_s),
            ("control-flow syncs", self.sync_s),
            ("framework frontend", self.frontend_s),
            ("input pipeline", self.pipeline_s),
            ("host-side model stages", self.host_stage_s),
            ("environment simulation", self.environment_s),
        ]
        return sorted(named, key=lambda item: item[1], reverse=True)


class CPUSampler:
    """Produces :class:`CPUSample` records for a training session."""

    def __init__(self, session: TrainingSession):
        self.session = session

    def sample(self, batch_size: int | None = None) -> CPUSample:
        """Decompose one stable-phase iteration's CPU time."""
        session = self.session
        batch = batch_size if batch_size is not None else session.spec.reference_batch
        profile = session.run_iteration(batch)

        framework = session.framework
        kernels = session.compile(batch).kernels
        sync_count = sum(1 for k in kernels if k.host_sync)
        dispatch = framework.dispatch_cost_s * len(kernels)
        sync = framework.sync_latency_s * sync_count

        pipeline_samples = max(1, int(batch * session.spec.pipeline_cost_scale))
        pipeline = DataPipelineModel(get_dataset(session.spec.dataset)).cost(
            pipeline_samples, framework
        )
        host_stage = session.spec.host_cpu_cost(framework.key)
        environment = session.spec.env_cpu_core_seconds_per_sample * batch
        return CPUSample(
            dispatch_s=dispatch,
            sync_s=sync,
            frontend_s=framework.frontend_cost_s,
            pipeline_s=pipeline.cpu_core_seconds,
            host_stage_s=host_stage,
            environment_s=environment,
            iteration_time_s=profile.iteration_time_s,
            core_count=session.cpu.core_count,
        )
