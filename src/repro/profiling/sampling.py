"""Stable-phase sampling (paper Section 3.4.2).

Profiling a full multi-day training run is impractical; because training is
iterative and iterations repeat the same computation, accurate results come
from sampling a short window — *provided* the window starts after the
warm-up (graph construction, memory allocation, data loading) and
auto-tuning (algorithm selection, workspace sizing) phases end.

:class:`IterationTimeline` synthesizes a realistic per-iteration throughput
series with those phases, and :class:`StablePhaseSampler` detects where
throughput stabilizes and selects the sampling window — the same procedure
the paper applies before attaching nvprof/vTune.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IterationTimeline:
    """A synthetic per-iteration duration series for one training run.

    The shape follows the paper's description: a slow warm-up iteration or
    two (allocation, first data batch), a stretch of erratic auto-tuning
    iterations (cuDNN algorithm search runs candidate kernels), then the
    stable phase with small jitter.
    """

    stable_iteration_s: float
    warmup_iterations: int = 3
    warmup_factor: float = 12.0
    autotune_iterations: int = 200
    autotune_factor: float = 1.8
    jitter: float = 0.02
    seed: int = 0

    def durations(self, count: int) -> np.ndarray:
        """Per-iteration durations (seconds) for the first ``count``
        iterations of the run."""
        if count <= 0:
            raise ValueError("iteration count must be positive")
        rng = np.random.default_rng(self.seed)
        out = np.empty(count)
        for index in range(count):
            base = self.stable_iteration_s
            if index < self.warmup_iterations:
                scale = self.warmup_factor
            elif index < self.warmup_iterations + self.autotune_iterations:
                # Auto-tuning decays toward stability as algorithms lock in.
                progress = (index - self.warmup_iterations) / max(
                    1, self.autotune_iterations
                )
                scale = 1.0 + (self.autotune_factor - 1.0) * math.exp(-4.0 * progress)
            else:
                scale = 1.0
            noise = 1.0 + rng.normal(0.0, self.jitter)
            out[index] = base * scale * max(0.1, noise)
        return out

    def throughputs(self, count: int, samples_per_iteration: float) -> np.ndarray:
        """Per-iteration throughput series."""
        return samples_per_iteration / self.durations(count)


@dataclass(frozen=True)
class SampleWindow:
    """A chosen stable sampling window."""

    start_iteration: int
    end_iteration: int

    @property
    def length(self) -> int:
        return self.end_iteration - self.start_iteration

    def __post_init__(self) -> None:
        if self.start_iteration < 0 or self.end_iteration <= self.start_iteration:
            raise ValueError("invalid sample window")


class StablePhaseSampler:
    """Detects the stable phase of a throughput series and samples it.

    Strategy (matching the paper's methodology): slide a window over the
    series; the training has stabilized once the window's coefficient of
    variation drops below a threshold *and* its mean is within tolerance of
    the tail mean.  Samples of 50-1000 iterations are then drawn from the
    stable region.
    """

    def __init__(
        self,
        window: int = 50,
        cv_threshold: float = 0.05,
        tail_tolerance: float = 0.05,
    ):
        if window <= 1:
            raise ValueError("window must be at least 2 iterations")
        if cv_threshold <= 0 or tail_tolerance <= 0:
            raise ValueError("thresholds must be positive")
        self.window = window
        self.cv_threshold = cv_threshold
        self.tail_tolerance = tail_tolerance

    def detect_stable_start(self, durations) -> int:
        """Index of the first iteration of the stable phase.

        Raises:
            ValueError: if the series never stabilizes.
        """
        series = np.asarray(durations, dtype=float)
        if series.ndim != 1 or len(series) < 2 * self.window:
            raise ValueError(
                f"need at least {2 * self.window} iterations to detect stability"
            )
        tail_mean = float(series[-self.window :].mean())
        for start in range(0, len(series) - self.window + 1):
            chunk = series[start : start + self.window]
            mean = float(chunk.mean())
            cv = float(chunk.std() / mean) if mean > 0 else float("inf")
            if cv < self.cv_threshold and abs(mean - tail_mean) <= (
                self.tail_tolerance * tail_mean
            ):
                return start
        raise ValueError("training never reached a stable phase")

    def choose_window(self, durations, sample_iterations: int = 200) -> SampleWindow:
        """Select a stable sampling window of ``sample_iterations``
        (clamped to the paper's 50-1000 range and to the available data)."""
        sample_iterations = max(50, min(1000, sample_iterations))
        series = np.asarray(durations, dtype=float)
        start = self.detect_stable_start(series)
        end = min(len(series), start + sample_iterations)
        if end - start < 2:
            raise ValueError("stable phase too short to sample")
        return SampleWindow(start_iteration=start, end_iteration=end)

    def stable_throughput(
        self, durations, samples_per_iteration: float, sample_iterations: int = 200
    ) -> float:
        """Mean stable-phase throughput over the chosen window."""
        window = self.choose_window(durations, sample_iterations)
        series = np.asarray(durations, dtype=float)
        chunk = series[window.start_iteration : window.end_iteration]
        return samples_per_iteration / float(chunk.mean())
