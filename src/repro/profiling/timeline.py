"""Execution timelines: per-kernel start/end events and gap analysis.

The paper's toolchain merges nvprof timelines ("a timeline of both CPU and
GPU activities at the function/kernel level") with vTune data to find where
iterations lose time.  The vocabulary of that view — :class:`TimelineEvent`
per kernel (queue time, start, end), idle :class:`Gap` records, and the
:class:`Timeline` analysis queries (where are the gaps, what causes them,
how much time each kernel category occupies) — lives with the single
replay implementation in :mod:`repro.plan.executor` and is re-exported
here.  Compiled plans carry their timelines; :func:`build_timeline` and
:func:`timeline_for` are facades over that one implementation.
"""

from __future__ import annotations

from repro.frameworks.base import Framework
from repro.plan.executor import Gap, Timeline, TimelineEvent, replay

__all__ = ["Gap", "Timeline", "TimelineEvent", "build_timeline", "timeline_for"]


def build_timeline(timings, framework: Framework) -> Timeline:
    """Replay the dispatch/execute loop and record events and gaps.

    Thin facade over the single replay implementation in
    :func:`repro.plan.executor.replay`.
    """
    return replay(timings, framework).timeline


def timeline_for(session, batch_size: int | None = None) -> Timeline:
    """The timeline of one of a session's iterations, straight from its
    cached compiled plan — no re-simulation."""
    return session.compile(batch_size).timeline
