"""Execution timelines: per-kernel start/end events and gap analysis.

The paper's toolchain merges nvprof timelines ("a timeline of both CPU and
GPU activities at the function/kernel level") with vTune data to find where
iterations lose time.  This module reconstructs that view for the simulated
runtime: it replays the CPU-dispatch / GPU-execute loop, records a
:class:`TimelineEvent` per kernel (queue time, start, end), and answers the
diagnostic questions the paper asks of its timelines — where are the gaps,
what causes them (dispatch starvation vs. host syncs), and how much time
each kernel category occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frameworks.base import Framework
from repro.kernels.base import KernelCategory


@dataclass(frozen=True)
class TimelineEvent:
    """One kernel execution on the GPU timeline."""

    name: str
    category: KernelCategory
    issued_s: float  # when the CPU finished issuing it
    start_s: float  # when the GPU started executing it
    end_s: float
    host_sync: bool

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def queue_delay_s(self) -> float:
        """Time between issue and execution start (GPU was busy)."""
        return max(0.0, self.start_s - self.issued_s)


@dataclass(frozen=True)
class Gap:
    """One idle interval on the GPU timeline."""

    start_s: float
    end_s: float
    cause: str  # "dispatch" | "host sync" | "frontend"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """A reconstructed iteration timeline with analysis queries."""

    events: list = field(default_factory=list)
    gaps: list = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def busy_s(self) -> float:
        return sum(event.duration_s for event in self.events)

    @property
    def idle_s(self) -> float:
        return sum(gap.duration_s for gap in self.gaps)

    @property
    def gpu_utilization(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.makespan_s)

    def idle_by_cause(self) -> dict:
        """Total idle seconds per cause — the 'where do iterations lose
        time' question."""
        totals: dict = {}
        for gap in self.gaps:
            totals[gap.cause] = totals.get(gap.cause, 0.0) + gap.duration_s
        return totals

    def busy_by_category(self) -> dict:
        """GPU-busy seconds per kernel category."""
        totals: dict = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0.0) + event.duration_s
        return totals

    def longest_gaps(self, count: int = 5) -> list:
        """The largest idle intervals, the merge-analysis headline."""
        if count <= 0:
            raise ValueError("count must be positive")
        return sorted(self.gaps, key=lambda g: g.duration_s, reverse=True)[:count]


def build_timeline(timings, framework: Framework) -> Timeline:
    """Replay the dispatch/execute loop and record events and gaps.

    Mirrors :meth:`repro.training.session.TrainingSession._execute_timeline`
    exactly (asserted by tests), but keeps the full event record.
    """
    dispatch = framework.dispatch_cost_s
    sync = framework.sync_latency_s
    cpu_ready = framework.frontend_cost_s
    gpu_free = 0.0
    events: list = []
    gaps: list = []
    pending_cause = "frontend"
    for timing in timings:
        cpu_ready += dispatch
        start = max(gpu_free, cpu_ready)
        if start > gpu_free:
            gaps.append(Gap(start_s=gpu_free, end_s=start, cause=pending_cause))
        end = start + timing.duration_s
        events.append(
            TimelineEvent(
                name=timing.kernel.name,
                category=timing.kernel.category,
                issued_s=cpu_ready,
                start_s=start,
                end_s=end,
                host_sync=timing.kernel.host_sync,
            )
        )
        gpu_free = end
        if timing.kernel.host_sync:
            cpu_ready = gpu_free + sync
            pending_cause = "host sync"
        else:
            pending_cause = "dispatch"
    return Timeline(events=events, gaps=gaps, makespan_s=max(gpu_free, cpu_ready))


def timeline_for(session, batch_size: int | None = None) -> Timeline:
    """Build the timeline of one of a session's iterations."""
    spec = session.spec
    batch = batch_size if batch_size is not None else spec.reference_batch
    graph = spec.build(batch)
    kernels = session._iteration_kernels(graph)
    timings = session._roofline.time_kernels(kernels)
    return build_timeline(timings, session.framework)
