"""The :class:`Framework` personality record and its execution hooks."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.kernels.base import Kernel, KernelCategory


class MomentumAllocation(enum.Enum):
    """When a framework allocates optimizer state.

    The paper's memory profiler observes that MXNet allocates momentum
    buffers *during* training iterations (classified as "dynamic"), whereas
    TensorFlow and CNTK allocate them statically before training starts.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class Framework:
    """One deep-learning framework's execution personality.

    Attributes:
        name: display name (``TensorFlow``…); ``version`` is the paper's.
        dispatch_cost_s: CPU time to issue one GPU kernel (session runtime,
            op scheduling, cuLaunchKernel).  This is the knob that makes
            small-kernel workloads (RNNs, small batches) framework-bound.
        frontend_cost_s: fixed per-iteration CPU time (feed/fetch, Python
            frontend, graph bookkeeping).
        pool_overhead: memory-allocator slack factor; requests are charged
            ``bytes * pool_overhead`` against GPU capacity.
        workspace_factor: scales cuDNN workspace requests (greedy
            auto-tuning asks for bigger, faster algorithms' scratch).
        momentum_allocation: see :class:`MomentumAllocation`.
        kernel_efficiency: per-:class:`KernelCategory` multipliers applied to
            kernels' efficiency ceilings — encodes library/kernel selection
            quality differences between frameworks.
        elementwise_kernel_name: the name this framework's generated
            elementwise kernels carry in traces (Tables 5/6 show
            ``Eigen::internal::EigenMetaKernel`` for TensorFlow vs.
            ``mxnet_op::mxnet_generic_kernel`` for MXNet).
        data_pipeline_efficiency: fraction of input-pipeline work the
            framework successfully overlaps with GPU compute.
    """

    name: str
    version: str
    dispatch_cost_s: float
    frontend_cost_s: float
    pool_overhead: float
    workspace_factor: float
    momentum_allocation: MomentumAllocation
    kernel_efficiency: dict = field(default_factory=dict)
    elementwise_kernel_name: str = "elementwise_kernel"
    data_pipeline_efficiency: float = 0.9
    #: Multiplier on the dataset's per-sample decode cost: how much CPU this
    #: framework's input pipeline burns relative to a plain decoder.  CNTK's
    #: pre-packed readers spend almost nothing (the paper measures 0.05-0.08%
    #: CPU utilization for CNTK image models).
    pipeline_cost_factor: float = 1.0
    #: CPU time to observe a kernel result and re-enter the issue loop at a
    #: ``host_sync`` boundary (control-flow ops of a ``tf.while_loop`` step,
    #: Python-side recurrence in imperative frameworks).
    sync_latency_s: float = 200e-6

    def __post_init__(self) -> None:
        if self.dispatch_cost_s <= 0 or self.frontend_cost_s < 0:
            raise ValueError(f"{self.name}: bad CPU cost parameters")
        if self.pool_overhead < 1.0:
            raise ValueError(f"{self.name}: pool_overhead must be >= 1.0")
        if self.workspace_factor <= 0:
            raise ValueError(f"{self.name}: workspace_factor must be positive")
        if not 0.0 < self.data_pipeline_efficiency <= 1.0:
            raise ValueError(f"{self.name}: pipeline efficiency must be in (0, 1]")
        if self.pipeline_cost_factor < 0:
            raise ValueError(f"{self.name}: pipeline_cost_factor cannot be negative")

    @property
    def key(self) -> str:
        """Canonical lowercase lookup key."""
        return self.name.lower()

    def specialize_kernel(self, kernel: Kernel) -> Kernel:
        """Apply this framework's library/kernel selection to one kernel:
        rename generated elementwise kernels and scale efficiency ceilings."""
        factor = self.kernel_efficiency.get(kernel.category, 1.0)
        name = kernel.name
        if kernel.category == KernelCategory.ELEMENTWISE and name.startswith(
            ("elementwise", "residual", "bias", "dropout")
        ):
            name = f"{self.elementwise_kernel_name}<{kernel.name}>"
        if factor == 1.0 and name == kernel.name:
            return kernel
        return replace(
            kernel,
            name=name,
            max_compute_efficiency=min(1.0, kernel.max_compute_efficiency * factor),
            max_memory_efficiency=min(1.0, kernel.max_memory_efficiency * factor),
        )

    def specialize_kernels(self, kernels) -> list:
        """Vectorised :meth:`specialize_kernel`."""
        return [self.specialize_kernel(k) for k in kernels]
