"""Framework execution personalities.

The paper runs every model on up to three frameworks — TensorFlow v1.3,
MXNet v0.11.0, CNTK v2.0 — and finds that framework-specific design choices
(kernel dispatch cost, memory allocator slack, workspace policy, when
optimizer state is allocated, which library kernels get picked) change both
throughput and memory footprint.  :class:`~repro.frameworks.base.Framework`
encodes exactly those choices; the three concrete personalities are
calibrated to reproduce the paper's cross-framework ordering.
"""

from repro.frameworks.base import Framework, MomentumAllocation
from repro.frameworks.registry import (
    CNTK,
    MXNET,
    TENSORFLOW,
    framework_catalog,
    get_framework,
)

__all__ = [
    "Framework",
    "MomentumAllocation",
    "TENSORFLOW",
    "MXNET",
    "CNTK",
    "get_framework",
    "framework_catalog",
]
