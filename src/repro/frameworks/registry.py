"""The three concrete framework personalities and their registry.

Calibration targets (all from the paper's evaluation):

- MXNet beats TensorFlow on image classification (Obs. 3) — its imperative
  engine dispatches kernels more cheaply and its conv kernel selection is
  slightly better tuned.
- TensorFlow beats MXNet (Sockeye) on Seq2Seq (Obs. 3) — better RNN-step
  fusion (fewer stalls) and a tighter allocator: TF trains NMT at
  mini-batch 128 on 8 GB where MXNet tops out at 64.
- CNTK's CNN throughput sits between the two on ResNet-50/Inception-v3.
- MXNet allocates momentum buffers *during* iterations ("dynamic" class in
  Fig. 9); TF/CNTK allocate optimizer state statically.
"""

from __future__ import annotations

from repro.frameworks.base import Framework, MomentumAllocation
from repro.kernels.base import KernelCategory

TENSORFLOW = Framework(
    name="TensorFlow",
    version="1.3",
    dispatch_cost_s=11e-6,
    frontend_cost_s=4.0e-3,  # session.run feed/fetch + executor setup
    pool_overhead=1.06,  # BFC allocator: tight packing
    workspace_factor=1.0,
    momentum_allocation=MomentumAllocation.STATIC,
    kernel_efficiency={
        KernelCategory.CONV: 0.80,  # NHWC transposes + missed conv fusion
        KernelCategory.GEMM: 1.0,
        KernelCategory.RNN_POINTWISE: 1.10,  # partially fused RNN steps
        KernelCategory.ELEMENTWISE: 0.95,  # Eigen meta-kernels
    },
    sync_latency_s=260e-6,  # tf.while_loop control-flow ops per RNN step
    elementwise_kernel_name="Eigen::internal::EigenMetaKernel",
    data_pipeline_efficiency=0.95,
    pipeline_cost_factor=1.3,  # tf.data pipelines burn extra CPU on transforms
)

MXNET = Framework(
    name="MXNet",
    version="0.11.0",
    dispatch_cost_s=8e-6,  # imperative engine, cheap pushes
    frontend_cost_s=2.5e-3,  # imperative frontend + dependency engine
    pool_overhead=1.22,  # pooled allocator rounds up aggressively
    workspace_factor=1.1,
    momentum_allocation=MomentumAllocation.DYNAMIC,
    kernel_efficiency={
        KernelCategory.CONV: 1.0,
        KernelCategory.GEMM: 1.0,
        KernelCategory.RNN_POINTWISE: 0.90,  # unfused per-step cells
        KernelCategory.ELEMENTWISE: 0.90,
    },
    sync_latency_s=330e-6,  # Python-side recurrence in the Sockeye loop
    elementwise_kernel_name="mxnet::op::mxnet_generic_kernel",
    data_pipeline_efficiency=0.95,
    pipeline_cost_factor=1.0,
)

CNTK = Framework(
    name="CNTK",
    version="2.0",
    dispatch_cost_s=10e-6,
    frontend_cost_s=1.5e-3,  # C++ core, thin frontend
    pool_overhead=1.12,
    workspace_factor=0.9,
    momentum_allocation=MomentumAllocation.STATIC,
    kernel_efficiency={
        KernelCategory.CONV: 0.90,
        KernelCategory.GEMM: 1.0,
        KernelCategory.ELEMENTWISE: 0.92,
    },
    sync_latency_s=200e-6,
    elementwise_kernel_name="Microsoft::MSR::CNTK::_launchUnaryOpKernel",
    data_pipeline_efficiency=0.90,
    pipeline_cost_factor=0.02,  # pre-packed CTF/ImageReader input, near-zero CPU
)

_CATALOG = {
    "tensorflow": TENSORFLOW,
    "tf": TENSORFLOW,
    "mxnet": MXNET,
    "cntk": CNTK,
}


def framework_catalog() -> dict:
    """Known frameworks keyed by display name."""
    return {fw.name: fw for fw in (TENSORFLOW, MXNET, CNTK)}


def get_framework(name) -> Framework:
    """Look up a framework by (case-insensitive) name or pass one through."""
    if isinstance(name, Framework):
        return name
    key = str(name).strip().lower()
    if key not in _CATALOG:
        known = ", ".join(sorted(set(fw.name for fw in _CATALOG.values())))
        raise KeyError(f"unknown framework {name!r}; known: {known}")
    return _CATALOG[key]
