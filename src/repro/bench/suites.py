"""Named benchmark suites: the comparisons CI tracks over time.

A suite is a fixed list of A/B cases — (model, framework, batch,
treatment) — run under one noise seed and recorded as one trajectory
point.  Three ship by default, plus one built on demand:

- ``fused-rnn``: the repo's flagship optimization (cuDNN-style fused RNN
  cells) against the baseline plan on the three RNN models.  This is the
  suite CI gates: the transform must stay a statistically significant
  improvement, never regress.
- ``noop``: baseline vs an independently-built second baseline on three
  architecture families.  Every case must come back
  ``indistinguishable``; this is the gate's false-positive control.
- ``slowdown5``: baseline vs a deterministic 5% kernel-time slowdown.
  Every case must come back ``regression``; this is the power control —
  proof the gate actually fires when the code gets slower.
- ``tune``: the autotuner's winning pipeline vs baseline on the three
  RNN workloads.  The cases are *derived* — the cost-model search runs
  when the suite is requested, so the trajectory records whatever
  ``tbd tune`` currently picks — and every winner must come back
  ``improvement``: a tuned config the A/B runner cannot confirm is a
  tuner bug worth failing CI over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.noise import NoiseModel
from repro.bench.runner import InterleavedRunner
from repro.bench.subjects import subject_for
from repro.observability.tracer import trace_span


@dataclass(frozen=True)
class BenchCase:
    """One A/B comparison inside a suite."""

    model: str
    framework: str
    batch_size: int
    treatment: str
    baseline: str = "baseline"

    @property
    def name(self) -> str:
        return f"{self.model}/{self.framework}/b{self.batch_size}:{self.treatment}"


@dataclass(frozen=True)
class BenchSuite:
    """A named, ordered list of cases plus the expectation the gate and
    the suite's own controls assert (``None`` = no uniform expectation)."""

    name: str
    description: str
    cases: tuple = field(default_factory=tuple)
    #: Expected verdict for every case, or None when the suite only
    #: gates against regressions (the fused-rnn trajectory suite).
    expect: str | None = None


_RNN_POINTS = (
    ("nmt", "tensorflow", 64),
    ("sockeye", "mxnet", 64),
    ("deep-speech-2", "mxnet", 16),
)

_CONTROL_POINTS = (
    ("resnet-50", "tensorflow", 32),
    ("nmt", "tensorflow", 64),
    ("sockeye", "mxnet", 64),
)

_SUITES = {
    "fused-rnn": BenchSuite(
        name="fused-rnn",
        description=(
            "Fused-RNN plan transform vs baseline on the three RNN models "
            "(the CI-gated trajectory suite)"
        ),
        cases=tuple(
            BenchCase(model, framework, batch, "fused-rnn")
            for model, framework, batch in _RNN_POINTS
        ),
    ),
    "noop": BenchSuite(
        name="noop",
        description=(
            "Baseline vs an independent second baseline — the gate's "
            "false-positive control; every verdict must be "
            "'indistinguishable'"
        ),
        cases=tuple(
            BenchCase(model, framework, batch, "baseline")
            for model, framework, batch in _CONTROL_POINTS
        ),
        expect="indistinguishable",
    ),
    "slowdown5": BenchSuite(
        name="slowdown5",
        description=(
            "Baseline vs a deterministic 5% kernel-time slowdown — the "
            "gate's power control; every verdict must be 'regression'"
        ),
        cases=tuple(
            BenchCase(model, framework, batch, "slowdown:5")
            for model, framework, batch in _CONTROL_POINTS
        ),
        expect="regression",
    ),
}


def _build_tune_suite() -> BenchSuite:
    """The derived ``tune`` suite: one case per RNN workload, measuring
    the autotuner's current cost-model winner against the baseline.
    Built on demand (the search compiles candidate pipelines), so the
    static :func:`suite_catalog` stays cheap to list."""
    from repro.tune.search import Autotuner

    cases = []
    for model, framework, batch in _RNN_POINTS:
        result = Autotuner(model, framework, batch_size=batch).rank()
        if result.winner is None:
            continue  # nothing beat the baseline; nothing to measure
        cases.append(
            BenchCase(model, framework, batch, f"pipeline:{result.winner.spec}")
        )
    return BenchSuite(
        name="tune",
        description=(
            "Autotuner winners (tbd tune) vs baseline on the three RNN "
            "workloads; every winner must verify as an improvement"
        ),
        cases=tuple(cases),
        expect="improvement",
    )


def get_suite(name: str) -> BenchSuite:
    if name == "tune":
        return _build_tune_suite()
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted([*_SUITES, "tune"]))
        raise ValueError(f"unknown bench suite {name!r}; known: {known}") from None


def suite_catalog() -> list:
    """All registered suites, sorted by name."""
    return [_SUITES[name] for name in sorted(_SUITES)]


def run_suite(
    suite,
    noise: NoiseModel | None = None,
    samples: int | None = None,
    alpha: float = 0.05,
    min_effect: float = 0.01,
    max_samples: int = 300,
) -> list:
    """Run every case of ``suite`` (a name or a :class:`BenchSuite`) and
    return the :class:`~repro.bench.runner.BenchResult` list, in case
    order.

    Both sides of every case are built independently — even a "noop" case
    constructs two separate baseline subjects — so the runner's
    distinct-subject contract holds and the A/B really exercises two
    measurement streams.
    """
    if isinstance(suite, str):
        suite = get_suite(suite)
    noise = noise if noise is not None else NoiseModel()
    runner = InterleavedRunner(
        noise=noise, alpha=alpha, min_effect=min_effect, max_samples=max_samples
    )
    results = []
    with trace_span(
        "bench.suite", suite=suite.name, cases=len(suite.cases), seed=noise.seed
    ):
        for case in suite.cases:
            baseline = subject_for(
                case.baseline, case.model, case.framework, case.batch_size
            )
            treatment = subject_for(
                case.treatment, case.model, case.framework, case.batch_size
            )
            results.append(
                runner.run(baseline, treatment, name=case.name, samples=samples)
            )
    return results
