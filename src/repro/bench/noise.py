"""The seeded machine-noise model.

Real benchmark numbers wobble: kernel durations vary with clocks and
cache state, dispatch gaps vary with host scheduling, interconnect
latency varies with fabric contention.  The simulator is bit-deterministic
by design, which is perfect for caching and conformance but useless for
exercising *measurement statistics* — a comparison harness tested only on
noiseless data never meets the problem it exists to solve.

:class:`NoiseModel` injects that missing variance deterministically.
Every jitter factor is drawn from a lognormal distribution with median
1.0, so noise is always positive, multiplicative, and — the property the
conformance invariant pins — the *median* of noisy results converges to
the noiseless closed form.  Factors come from a per-run
:class:`NoiseStream` whose RNG is seeded by ``(model seed, run index)``:
the same seed reproduces the same sample series bit-for-bit, while
consecutive runs are independent draws.

``kernel_bias`` exists for the harness's own negative controls: a bias of
1.05 is a known injected 5% kernel-time slowdown that the regression gate
must catch (and does — ``tests/test_bench.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Seeded jitter magnitudes for the three noisy channels.

    The defaults follow the paper's observed ~2% stable-phase iteration
    jitter: 2% lognormal sigma on kernel durations, a looser 10% on the
    (tiny, scheduler-bound) dispatch gaps, and 5% on interconnect latency.
    """

    kernel_jitter: float = 0.02
    dispatch_jitter: float = 0.10
    interconnect_jitter: float = 0.05
    #: Correlated per-run component: one factor drawn per stream and
    #: applied to every kernel in that run.  Real machine noise is mostly
    #: *this* (clock throttling, thermal state move all kernels together);
    #: independent per-kernel jitter alone would average out over the
    #: thousands of kernels in an iteration and leave the makespan
    #: implausibly quiet.
    run_jitter: float = 0.01
    #: Deterministic multiplicative bias on kernel durations — 1.0 means
    #: honest measurement; 1.05 is the canonical injected-slowdown probe.
    kernel_bias: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kernel_jitter", "dispatch_jitter", "interconnect_jitter", "run_jitter"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.kernel_bias <= 0.0:
            raise ValueError("kernel_bias must be positive")

    def stream(self, run_index: int) -> "NoiseStream":
        """The noise stream of one run: an independent, reproducible draw
        sequence seeded by ``(seed, run_index)``."""
        if run_index < 0:
            raise ValueError("run_index must be non-negative")
        return NoiseStream(self, np.random.default_rng((self.seed, run_index)))

    def with_bias(self, kernel_bias: float) -> "NoiseModel":
        """This model with a different deterministic kernel-time bias."""
        return replace(self, kernel_bias=kernel_bias)

    def with_seed(self, seed: int) -> "NoiseModel":
        return replace(self, seed=seed)

    def to_doc(self) -> dict:
        """Canonical-JSON-ready description (for ``BENCH_*.json`` records)."""
        return {
            "kernel_jitter": self.kernel_jitter,
            "dispatch_jitter": self.dispatch_jitter,
            "interconnect_jitter": self.interconnect_jitter,
            "run_jitter": self.run_jitter,
            "kernel_bias": self.kernel_bias,
            "seed": self.seed,
        }


class NoiseStream:
    """One run's jitter factors, drawn lazily per channel.

    The executor pulls whole factor arrays (``kernel_factors(n)``,
    ``dispatch_factors(n)``) so the per-kernel cost of noise is one numpy
    draw per replay, not one RNG call per kernel.  Draw order is part of
    the contract: kernels first, then dispatch, then interconnect —
    :func:`repro.plan.executor.replay` and
    :func:`repro.plan.executor.makespan_under_noise` both follow it, which
    is what keeps their results identical under the same stream.
    """

    __slots__ = ("model", "_rng", "run_factor")

    def __init__(self, model: NoiseModel, rng):
        self.model = model
        self._rng = rng
        # Drawn eagerly (first draw of every stream) so the draw-order
        # contract holds no matter which channel a consumer pulls first.
        self.run_factor = float(self._lognormal(model.run_jitter, 1)[0])

    def _lognormal(self, sigma: float, count: int):
        if sigma == 0.0:
            return np.ones(count)
        return np.exp(self._rng.normal(0.0, sigma, size=count))

    def kernel_factors(self, count: int):
        """Multiplicative factors for ``count`` kernel durations (includes
        the correlated run factor and the model's deterministic bias)."""
        return (
            self._lognormal(self.model.kernel_jitter, count)
            * self.run_factor
            * self.model.kernel_bias
        )

    def dispatch_factors(self, count: int):
        """Multiplicative factors for ``count`` dispatch gaps."""
        return self._lognormal(self.model.dispatch_jitter, count)

    def interconnect_factor(self) -> float:
        """One multiplicative factor for a run's communication time."""
        return float(self._lognormal(self.model.interconnect_jitter, 1)[0])


def median_convergence_tolerance(model: NoiseModel, samples: int) -> float:
    """How far the median of ``samples`` noisy makespans may sit from the
    noiseless closed form.

    The makespan is (to first order) a sum over many kernels of
    independently jittered durations, so its relative spread is far below
    the per-kernel sigma; the bound below is deliberately loose — three
    combined sigmas plus the sampling error of a median over ``samples``
    draws — because the conformance invariant wants *convergence*, not a
    distributional sharpness claim.
    """
    sigma = (
        model.kernel_jitter
        + model.dispatch_jitter
        + model.interconnect_jitter
        + model.run_jitter
    )
    return 3.0 * sigma / math.sqrt(max(1, samples)) + 0.005
